//! The API server: routing, authorization, persistence, audit and exploit
//! accounting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

use k8s_model::{K8sObject, ResourceKind, Verb};
use k8s_rbac::{AccessReview, AuditEvent, AuditLog, RbacPolicySet};
use kf_yaml::Value;

use crate::health::{AdmissionGate, DegradePolicy, HealthReport};
use crate::persist::{DurabilityState, Persistence};
use crate::request::{ApiRequest, ApiResponse, ResponseBody, ResponseStatus};
use crate::store::{BaselineStore, ObjectStore, StoreBackend};
use crate::vuln::VulnerabilityOracle;

/// Anything that can serve API requests. The KubeFence proxy implements this
/// trait as well, so clients (operators, the attack executor, the benchmark
/// drivers) are oblivious to whether a proxy sits in front of the server —
/// exactly the complete-mediation deployment the paper describes.
pub trait RequestHandler {
    /// Handle one request and produce a response.
    fn handle(&self, request: &ApiRequest) -> ApiResponse;
}

/// A successful exploitation: an accepted request exercised the vulnerable
/// code of a CVE.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExploitEvent {
    /// CVE identifier.
    pub cve_id: String,
    /// User whose request triggered it.
    pub user: String,
    /// Resource kind of the triggering request.
    pub kind: ResourceKind,
    /// Name of the triggering object.
    pub object_name: String,
    /// The accepted specification that exercised the vulnerable code —
    /// shared with the admitted object (and thus the store and audit trail);
    /// recording an exploit never copies the document.
    pub spec: Arc<Value>,
}

/// The simulated Kubernetes API server.
///
/// Users named in [`ApiServer::with_admin`] (default: `admin`) bypass RBAC,
/// mirroring cluster-admin credentials; everyone else is subject to the
/// configured [`RbacPolicySet`]. When no policy set is configured at all the
/// server behaves like the paper's baseline cluster before hardening: every
/// authenticated request is authorized.
///
/// The server is generic over its persistence plane: the default
/// [`ObjectStore`] shares one `Arc<Value>` per object from admission through
/// storage, audit and reads, while [`ApiServer::baseline`] runs the same
/// request logic over the pre-refactor deep-cloning [`BaselineStore`] so the
/// `server_throughput` benchmark can measure the difference.
#[derive(Debug)]
pub struct ApiServer<S: StoreBackend = ObjectStore> {
    store: S,
    /// Read-mostly: every request takes a read lock, policy installation a
    /// write lock.
    rbac: RwLock<Option<RbacPolicySet>>,
    /// Sharded audit buffers: events are stamped by `audit_seq` and spread
    /// over independently locked shards so concurrent requests do not
    /// serialize on one audit mutex; `audit_log()` merges them back into
    /// chronological order.
    audit: Vec<Mutex<Vec<AuditEvent>>>,
    audit_seq: AtomicU64,
    oracle: VulnerabilityOracle,
    exploits: Mutex<Vec<ExploitEvent>>,
    admins: Vec<String>,
    /// Queue bound handed to [`StoreBackend::subscribe`] for push watches
    /// attached through [`WatchHub::subscribe_push`].
    watch_queue_capacity: usize,
    /// What the serving path does with mutating requests while the store's
    /// durability is degraded (see `docs/robustness.md`).
    degrade: DegradePolicy,
    /// Optional bounded-admission gate; `None` admits everything.
    gate: Option<AdmissionGate>,
    /// Mutating requests rejected with `503` under
    /// [`DegradePolicy::FailClosed`].
    rejected_writes: AtomicU64,
}

/// Number of audit shards (matches the store's write-parallelism scale).
const AUDIT_SHARDS: usize = 8;

impl Default for ApiServer {
    fn default() -> Self {
        ApiServer::new()
    }
}

impl ApiServer {
    /// A server with an empty store, no RBAC policy and the default `admin`
    /// superuser.
    pub fn new() -> Self {
        Self::with_store(ObjectStore::new())
    }

    /// The recovery path: open (or create) a persistence directory, rebuild
    /// the store from its snapshot + WAL suffix (truncating a torn tail),
    /// and serve from the recovered state — objects byte-identical to the
    /// pre-crash trees at the last durable revision, watch journals sealed
    /// at the recovered horizon, and every subsequent write appended to the
    /// WAL. Returns the server, the [`Persistence`] handle that checkpoints
    /// it, and what recovery found.
    ///
    /// # Errors
    ///
    /// Filesystem errors, or [`std::io::ErrorKind::InvalidData`] for a
    /// corrupt snapshot (see [`Persistence::open`]).
    pub fn durable(
        config: crate::persist::PersistConfig,
    ) -> std::io::Result<(Self, Persistence, crate::persist::RecoveryReport)> {
        let (store, persistence, report) = Persistence::open(config)?;
        Ok((Self::with_store(store), persistence, report))
    }
}

impl ApiServer<BaselineStore> {
    /// A server over the pre-refactor deep-cloning [`BaselineStore`]: the
    /// measurement baseline for the zero-copy persistence plane. Request
    /// handling is the identical code path — only the store's copy
    /// discipline differs.
    pub fn baseline() -> Self {
        Self::with_store(BaselineStore::new())
    }
}

impl<S: StoreBackend> ApiServer<S> {
    /// A server over an explicit persistence plane.
    pub fn with_store(store: S) -> Self {
        ApiServer {
            store,
            rbac: RwLock::new(None),
            audit: (0..AUDIT_SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            audit_seq: AtomicU64::new(0),
            oracle: VulnerabilityOracle::new(),
            exploits: Mutex::new(Vec::new()),
            admins: vec!["admin".to_owned()],
            watch_queue_capacity: crate::DEFAULT_SUBSCRIBER_QUEUE_CAPACITY,
            degrade: DegradePolicy::default(),
            gate: None,
            rejected_writes: AtomicU64::new(0),
        }
    }

    /// Choose what happens to mutating requests while the store's
    /// durability is degraded: [`DegradePolicy::FailOpen`] (the default)
    /// keeps serving from memory, [`DegradePolicy::FailClosed`] rejects
    /// them with `503` while reads and watches keep serving.
    pub fn with_degrade_policy(mut self, policy: DegradePolicy) -> Self {
        self.degrade = policy;
        self
    }

    /// Bound request admission: at most `max_in_flight` requests execute
    /// concurrently, each willing to wait up to `deadline` for a slot
    /// before being shed with `429`.
    pub fn with_admission_limit(
        mut self,
        max_in_flight: usize,
        deadline: std::time::Duration,
    ) -> Self {
        self.gate = Some(AdmissionGate::new(max_in_flight, deadline));
        self
    }

    /// The configured degradation policy.
    pub fn degrade_policy(&self) -> DegradePolicy {
        self.degrade
    }

    /// A point-in-time health summary: the store's durability status, the
    /// degradation policy reacting to it, and the admission gate's load
    /// counters — the surface operators (and the chaos workload) observe
    /// every transition through.
    pub fn health_report(&self) -> HealthReport {
        let durability = self.store.durability();
        let (admitted_total, shed_total, in_flight, waiting, peak, max) = match &self.gate {
            Some(gate) => (
                gate.admitted_total(),
                gate.shed_total(),
                gate.in_flight(),
                gate.waiting(),
                gate.peak_in_flight(),
                Some(gate.max_in_flight()),
            ),
            None => (0, 0, 0, 0, 0, None),
        };
        let fsync_batches = durability.fsync_batches;
        let avg_group_size = durability.avg_group_size();
        HealthReport {
            durability,
            policy: self.degrade,
            rejected_writes: self.rejected_writes.load(Ordering::Relaxed),
            admitted_total,
            shed_total,
            in_flight,
            waiting,
            peak_in_flight: peak,
            max_in_flight: max,
            fsync_batches,
            avg_group_size,
            checkpoint_dirty_shards: self.store.checkpoint_dirty_shards(),
        }
    }

    /// Add an additional superuser that bypasses RBAC.
    pub fn with_admin(mut self, user: &str) -> Self {
        self.admins.push(user.to_owned());
        self
    }

    /// Bound the delivery queues of push watches attached through
    /// [`WatchHub::subscribe_push`] (default:
    /// [`crate::DEFAULT_SUBSCRIBER_QUEUE_CAPACITY`]; tests use tiny bounds
    /// to force slow-consumer eviction).
    pub fn with_watch_queue_capacity(mut self, capacity: usize) -> Self {
        self.watch_queue_capacity = capacity.max(1);
        self
    }

    /// Install (or replace) the RBAC policy enforced for non-admin users.
    pub fn set_rbac_policy(&self, policy: Option<RbacPolicySet>) {
        *self.rbac.write() = policy;
    }

    /// The object store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Snapshot of the audit log, merged across shards in admission order.
    pub fn audit_log(&self) -> AuditLog {
        let mut events: Vec<AuditEvent> = self
            .audit
            .iter()
            .flat_map(|shard| shard.lock().clone())
            .collect();
        events.sort_unstable_by_key(|event| event.sequence);
        AuditLog::from_events(events)
    }

    /// Clear the audit log (between experiment phases).
    pub fn clear_audit_log(&self) {
        for shard in &self.audit {
            shard.lock().clear();
        }
    }

    /// The CVE oracle used by this server.
    pub fn oracle(&self) -> &VulnerabilityOracle {
        &self.oracle
    }

    /// The exploitation events recorded so far.
    pub fn exploits(&self) -> Vec<ExploitEvent> {
        self.exploits.lock().clone()
    }

    /// Clear recorded exploitation events.
    pub fn clear_exploits(&self) {
        self.exploits.lock().clear();
    }

    fn authorize(&self, request: &ApiRequest) -> Result<(), String> {
        if self.admins.iter().any(|a| a == &request.user) {
            return Ok(());
        }
        let rbac = self.rbac.read();
        match rbac.as_ref() {
            None => Ok(()),
            Some(policy) => {
                let review = AccessReview::new(
                    &request.user,
                    request.verb,
                    request.kind,
                    &request.namespace,
                    &request.name,
                );
                let decision = policy.authorize(&review);
                if decision.is_allowed() {
                    Ok(())
                } else {
                    Err(match decision {
                        k8s_rbac::AccessDecision::Deny { reason } => reason,
                        k8s_rbac::AccessDecision::Allow { .. } => unreachable!(),
                    })
                }
            }
        }
    }

    fn record_audit(&self, request: &ApiRequest, allowed: bool, body: Option<Arc<Value>>) {
        // Build the event — the body is an `Arc` handle, not a deep clone —
        // before taking any lock, then push it into one of the shards.
        let sequence = self.audit_seq.fetch_add(1, Ordering::Relaxed);
        let event = AuditEvent {
            sequence,
            user: request.user.clone(),
            verb: request.verb,
            kind: request.kind,
            namespace: request.namespace.clone(),
            name: request.name.clone(),
            allowed,
            request_body: body,
        };
        self.audit[(sequence as usize) % AUDIT_SHARDS]
            .lock()
            .push(event);
    }

    fn admit_object(
        &self,
        request: &ApiRequest,
        materialized: &Result<Option<Arc<Value>>, String>,
    ) -> Result<K8sObject, ApiResponse> {
        let body = match materialized {
            Err(message) => {
                return Err(ApiResponse::error(
                    ResponseStatus::BadRequest,
                    format!("invalid request body: {message}"),
                ))
            }
            Ok(None) => {
                return Err(ApiResponse::error(
                    ResponseStatus::BadRequest,
                    "mutating request without a body",
                ))
            }
            Ok(Some(body)) => body,
        };
        // The store decides the materialization discipline: the zero-copy
        // plane shares the request's tree, the baseline deep-clones it.
        let mut object = self.store.ingest(body).map_err(|e| {
            ApiResponse::error(ResponseStatus::BadRequest, format!("invalid object: {e}"))
        })?;
        if object.kind() != request.kind {
            return Err(ApiResponse::error(
                ResponseStatus::BadRequest,
                format!(
                    "object kind {} does not match endpoint {}",
                    object.kind(),
                    request.kind
                ),
            ));
        }
        // Namespace defaulting, as the admission chain would do.
        if object.kind().is_namespaced() && object.namespace().is_empty() {
            let namespace = if request.namespace.is_empty() {
                "default"
            } else {
                &request.namespace
            };
            object
                .set_field(
                    &kf_yaml::Path::parse("metadata.namespace").expect("static path"),
                    kf_yaml::Value::from(namespace),
                )
                .map_err(|e| {
                    ApiResponse::error(
                        ResponseStatus::BadRequest,
                        format!("admission failure: {e}"),
                    )
                })?;
        }
        Ok(object)
    }

    /// Serve a `watch` request from the store's revision-indexed journal.
    ///
    /// * `resourceVersion` **absent** — initial-list-then-stream: the
    ///   response synthesizes one `Added` event per stored object (each at
    ///   the object's own resource version, sharing its stored tree) and a
    ///   cursor to resume from. The cursor is the kind's journal revision
    ///   read *before* the scan, so no concurrent write can fall between
    ///   the listing and the stream; writes racing the scan may appear both
    ///   in the listing and in the first delta batch, which cache upserts
    ///   absorb.
    /// * `resourceVersion` **present** — resume-from-revision: exactly the
    ///   events published after that revision, in order, or `410 Gone` when
    ///   the journal has compacted past the cursor (the client re-lists).
    ///
    /// Every batch ends with a bookmark event carrying the batch cursor, so
    /// idle watchers advance without object payloads.
    fn handle_watch(&self, request: &ApiRequest) -> ApiResponse {
        let batch_kind = format!("{}WatchBatch", request.kind);
        match request.resource_version {
            Some(revision) => {
                match self
                    .store
                    .events_since(request.kind, &request.namespace, revision)
                {
                    Ok(delta) => {
                        // The bookmark carries the journal head, not the last
                        // matching event: a quiet-namespace watcher on a busy
                        // kind advances past foreign churn instead of falling
                        // behind the compaction horizon.
                        let crate::WatchDelta { mut events, resume } = delta;
                        events.push(crate::WatchEvent::bookmark(resume));
                        ApiResponse::ok("ok").with_body(ResponseBody::WatchBatch {
                            kind: batch_kind,
                            events,
                            cursor: resume,
                        })
                    }
                    Err(error) => ApiResponse::error(ResponseStatus::Gone, error.to_string()),
                }
            }
            None => {
                let cursor = self.store.watch_revision(request.kind);
                let mut events: Vec<crate::WatchEvent> = self
                    .store
                    .list(request.kind, &request.namespace)
                    .into_iter()
                    .map(|stored| crate::WatchEvent {
                        kind: crate::WatchEventKind::Added,
                        revision: stored.resource_version,
                        namespace: stored.object.namespace().to_owned(),
                        name: stored.object.name().to_owned(),
                        object: Some(Arc::clone(stored.object.shared_body())),
                    })
                    .collect();
                events.push(crate::WatchEvent::bookmark(cursor));
                ApiResponse::ok("ok").with_body(ResponseBody::WatchBatch {
                    kind: batch_kind,
                    events,
                    cursor,
                })
            }
        }
    }

    fn record_exploits(&self, request: &ApiRequest, object: &K8sObject) {
        let triggered = self.oracle.triggered_by(object);
        if triggered.is_empty() {
            return;
        }
        let mut exploits = self.exploits.lock();
        for record in triggered {
            exploits.push(ExploitEvent {
                cve_id: record.id.clone(),
                user: request.user.clone(),
                kind: object.kind(),
                object_name: object.name().to_owned(),
                // A handle to the admitted spec — forensics sees the exact
                // tree the store persisted, at zero copy cost.
                spec: Arc::clone(object.shared_body()),
            });
        }
    }
}

impl<S: StoreBackend> RequestHandler for ApiServer<S> {
    fn handle(&self, request: &ApiRequest) -> ApiResponse {
        // 0. Overload protection: seat the request inside the bounded
        //    in-flight window or shed it with `429` — before any per-request
        //    work is spent on a request the server cannot serve in time.
        let _permit = match &self.gate {
            Some(gate) => match gate.admit() {
                Ok(permit) => Some(permit),
                Err(shed) => {
                    return ApiResponse::error(ResponseStatus::TooManyRequests, shed.to_string());
                }
            },
            None => None,
        };
        self.handle_admitted(request)
    }
}

impl<S: StoreBackend> ApiServer<S> {
    /// Whether `verb` mutates the store (the verbs the fail-closed policy
    /// rejects while durability is degraded).
    fn is_mutating(verb: Verb) -> bool {
        matches!(
            verb,
            Verb::Create | Verb::Update | Verb::Patch | Verb::Delete | Verb::DeleteCollection
        )
    }

    fn handle_admitted(&self, request: &ApiRequest) -> ApiResponse {
        // 1. Authorization (RBAC) — decided on the resource path alone, so
        //    unauthorized traffic never pays for body parsing: its audit
        //    event records the body only when a parsed tree is already in
        //    hand (the legacy path's cheap `Arc` handle).
        if let Err(reason) = self.authorize(request) {
            self.record_audit(request, false, request.body.tree().cloned());
            return ApiResponse::error(ResponseStatus::Forbidden, reason);
        }

        // 1a. Fail-closed degradation: while durability is not proven, the
        //     policy may refuse to accept writes the disk cannot hold yet.
        //     Reads, lists and watches come from memory and keep serving in
        //     every durability state. The state probe is lock-free, so the
        //     hot path never queues behind the WAL mutex.
        if Self::is_mutating(request.verb)
            && self.degrade == DegradePolicy::FailClosed
            && self.store.durability_state() != DurabilityState::Healthy
        {
            self.rejected_writes.fetch_add(1, Ordering::Relaxed);
            self.record_audit(request, false, request.body.tree().cloned());
            let status = self.store.durability();
            let detail = match &status.latched {
                Some(latched) => format!(" ({latched})"),
                None => String::new(),
            };
            return ApiResponse::error(
                ResponseStatus::ServiceUnavailable,
                format!(
                    "durability {} with gap {}: writes rejected by fail-closed policy{detail}",
                    status.state, status.gap
                ),
            );
        }

        // 1b. Materialize the payload once per request, under the
        //     negotiated wire format: tree bodies are a cheap `Arc` clone,
        //     raw bodies parse exactly here (behind the proxy, only
        //     already-validated bytes reach this point).
        let materialized = request.materialize_body();
        let audit_body = materialized.as_ref().ok().cloned().flatten();

        // 2. Admission + persistence per verb.
        let response = match request.verb {
            Verb::Create | Verb::Update | Verb::Patch => {
                match self.admit_object(request, &materialized) {
                    Ok(object) => {
                        // The vulnerable code runs while the API server (and
                        // downstream components) process the accepted spec.
                        self.record_exploits(request, &object);
                        match request.verb {
                            // `kubectl apply` semantics: create, falling back to
                            // update on conflict — one upsert, no second
                            // admission round trip.
                            Verb::Create => match self.store.upsert(object) {
                                (version, true) => ApiResponse::created(format!(
                                    "created (resourceVersion {version})"
                                )),
                                (version, false) => ApiResponse::ok(format!(
                                    "configured (resourceVersion {version})"
                                )),
                            },
                            _ => match self.store.update(object) {
                                Some(version) => ApiResponse::ok(format!(
                                    "configured (resourceVersion {version})"
                                )),
                                None => ApiResponse::error(
                                    ResponseStatus::NotFound,
                                    format!("{} \"{}\" not found", request.kind, request.name),
                                ),
                            },
                        }
                    }
                    Err(response) => response,
                }
            }
            Verb::Get => match self
                .store
                .get(request.kind, &request.namespace, &request.name)
            {
                // A shared handle to the stored tree — the read path copies
                // nothing.
                Some(stored) => {
                    ApiResponse::ok("ok").with_body(Arc::clone(stored.object.shared_body()))
                }
                None => ApiResponse::error(
                    ResponseStatus::NotFound,
                    format!("{} \"{}\" not found", request.kind, request.name),
                ),
            },
            Verb::List => {
                let items: Vec<Arc<Value>> = self
                    .store
                    .list(request.kind, &request.namespace)
                    .into_iter()
                    .map(|stored| Arc::clone(stored.object.shared_body()))
                    .collect();
                ApiResponse::ok("ok").with_body(ResponseBody::List {
                    kind: format!("{}List", request.kind),
                    items,
                })
            }
            Verb::Watch => self.handle_watch(request),
            Verb::Delete => {
                match self
                    .store
                    .delete(request.kind, &request.namespace, &request.name)
                {
                    Some(_) => ApiResponse::ok("deleted"),
                    None => ApiResponse::error(
                        ResponseStatus::NotFound,
                        format!("{} \"{}\" not found", request.kind, request.name),
                    ),
                }
            }
            Verb::DeleteCollection => {
                // Collection semantics, not single-object: remove every
                // object of the kind in the namespace, one revision bump and
                // one `Deleted` watch event per object.
                let deleted = self
                    .store
                    .delete_collection(request.kind, &request.namespace);
                ApiResponse::ok(format!("deleted {deleted} objects"))
            }
        };

        // 3. Audit.
        self.record_audit(request, response.is_success(), audit_body);
        response
    }
}

/// A push-mode watch attachment: the initial listing (empty when resuming
/// from a cursor) plus the live subscription the store will fan events into.
#[derive(Debug)]
pub struct PushWatch {
    /// Synthesized `Added` events for the objects stored at attach time
    /// (initial-list mode only), each sharing its stored tree.
    pub initial: Vec<crate::WatchEvent>,
    /// The bounded-queue subscription, attached at the cursor the initial
    /// listing (or the request's `resourceVersion`) establishes.
    pub subscriber: crate::WatchSubscriber,
}

/// A request handler that can also attach **push-mode** watches: instead of
/// answering a watch request with a delta batch (pull), it returns a
/// [`PushWatch`] whose subscriber receives every later event without the
/// client ever polling. The same authorization and audit pipeline as
/// [`RequestHandler::handle`] applies — a push watch is a watch request in
/// every respect except delivery.
pub trait WatchHub: RequestHandler {
    /// Attach a push watch for `request` (a `Verb::Watch` request).
    ///
    /// * `resourceVersion` **absent** — initial-list-then-push: the result
    ///   carries one `Added` event per stored object and a subscription
    ///   attached at the pre-scan journal revision, so no write can fall
    ///   between the listing and the stream (writes racing the scan may
    ///   appear in both, which cache upserts absorb — the same contract as
    ///   the pull path).
    /// * `resourceVersion` **present** — resume-from-revision: the
    ///   subscription backfills everything after the cursor.
    ///
    /// # Errors
    ///
    /// The same [`ApiResponse`] failures the pull path produces: `Forbidden`
    /// on RBAC denial (audited), `BadRequest` for non-watch verbs, and
    /// `410 Gone` when the cursor predates the compaction horizon (the
    /// caller re-lists).
    fn subscribe_push(&self, request: &ApiRequest) -> Result<PushWatch, ApiResponse>;
}

impl<S: StoreBackend> WatchHub for ApiServer<S> {
    fn subscribe_push(&self, request: &ApiRequest) -> Result<PushWatch, ApiResponse> {
        if request.verb != Verb::Watch {
            return Err(ApiResponse::error(
                ResponseStatus::BadRequest,
                format!("subscribe_push serves watch requests, not {}", request.verb),
            ));
        }
        if let Err(reason) = self.authorize(request) {
            self.record_audit(request, false, None);
            return Err(ApiResponse::error(ResponseStatus::Forbidden, reason));
        }
        let (cursor, initial) = match request.resource_version {
            Some(revision) => (revision, Vec::new()),
            None => {
                // Journal revision read before the scan: the subscription's
                // backfill covers everything the listing could have missed.
                let cursor = self.store.watch_revision(request.kind);
                let initial = self
                    .store
                    .list(request.kind, &request.namespace)
                    .into_iter()
                    .map(|stored| crate::WatchEvent {
                        kind: crate::WatchEventKind::Added,
                        revision: stored.resource_version,
                        namespace: stored.object.namespace().to_owned(),
                        name: stored.object.name().to_owned(),
                        object: Some(Arc::clone(stored.object.shared_body())),
                    })
                    .collect();
                (cursor, initial)
            }
        };
        let subscriber = self
            .store
            .subscribe(
                request.kind,
                &request.namespace,
                cursor,
                self.watch_queue_capacity,
            )
            .map_err(|error| ApiResponse::error(ResponseStatus::Gone, error.to_string()))?;
        self.record_audit(request, true, None);
        Ok(PushWatch {
            initial,
            subscriber,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use k8s_rbac::{audit2rbac, Audit2RbacOptions};

    fn pod_yaml(name: &str, extra: &str) -> String {
        format!(
            "apiVersion: v1\nkind: Pod\nmetadata:\n  name: {name}\nspec:\n  containers:\n    - name: c\n      image: nginx\n{extra}"
        )
    }

    fn pod(name: &str) -> K8sObject {
        K8sObject::from_yaml(&pod_yaml(name, "")).unwrap()
    }

    #[test]
    fn admin_can_create_get_and_delete() {
        let server = ApiServer::new();
        assert!(server
            .handle(&ApiRequest::create("admin", &pod("a")))
            .is_success());
        let get = server.handle(&ApiRequest::get("admin", ResourceKind::Pod, "default", "a"));
        assert!(get.is_success());
        assert!(get.body.is_some());
        assert!(server
            .handle(&ApiRequest::delete(
                "admin",
                ResourceKind::Pod,
                "default",
                "a"
            ))
            .is_success());
        assert_eq!(server.store().len(), 0);
    }

    #[test]
    fn create_on_existing_object_behaves_like_apply() {
        let server = ApiServer::new();
        assert!(server
            .handle(&ApiRequest::create("admin", &pod("a")))
            .is_success());
        let second = server.handle(&ApiRequest::create("admin", &pod("a")));
        assert!(second.is_success());
        assert_eq!(server.store().len(), 1);
    }

    #[test]
    fn rbac_denies_users_without_grants() {
        let server = ApiServer::new();
        server.set_rbac_policy(Some(RbacPolicySet::new()));
        let response = server.handle(&ApiRequest::create("mallory", &pod("x")));
        assert!(response.is_denied());
        assert_eq!(server.store().len(), 0);
        // The denial shows up in the audit log.
        assert_eq!(server.audit_log().denied().len(), 1);
    }

    #[test]
    fn audit_driven_policy_admits_the_recorded_workload() {
        let server = ApiServer::new().with_admin("operator-learning");
        // Learning phase: the operator deploys with permissive access.
        let deployment = K8sObject::from_yaml(
            "apiVersion: apps/v1\nkind: Deployment\nmetadata:\n  name: web\nspec:\n  replicas: 1\n  template:\n    spec:\n      containers:\n        - name: c\n          image: nginx\n",
        )
        .unwrap();
        server.handle(&ApiRequest::create("operator-learning", &deployment));
        let log = server.audit_log();
        let policy = audit2rbac(
            log.events(),
            "operator-learning",
            &Audit2RbacOptions::default(),
        );

        // Enforcement phase: a fresh server with the inferred policy; the same
        // user (now subject to RBAC) can repeat the workload.
        let enforced = ApiServer::new();
        enforced.set_rbac_policy(Some(policy));
        let response = enforced.handle(&ApiRequest::create("operator-learning", &deployment));
        assert!(response.is_success());
        // …but cannot touch kinds it never used.
        let secret = K8sObject::minimal(ResourceKind::Secret, "s", "default");
        assert!(enforced
            .handle(&ApiRequest::create("operator-learning", &secret))
            .is_denied());
    }

    #[test]
    fn accepted_malicious_specs_record_exploits() {
        let server = ApiServer::new();
        let evil = K8sObject::from_yaml(&pod_yaml("evil", "  hostNetwork: true\n")).unwrap();
        assert!(server
            .handle(&ApiRequest::create("admin", &evil))
            .is_success());
        let exploits = server.exploits();
        assert!(exploits.iter().any(|e| e.cve_id == "CVE-2020-15257"));
        assert_eq!(exploits[0].user, "admin");
    }

    #[test]
    fn rejected_requests_do_not_record_exploits() {
        let server = ApiServer::new();
        server.set_rbac_policy(Some(RbacPolicySet::new()));
        let evil = K8sObject::from_yaml(&pod_yaml("evil", "  hostNetwork: true\n")).unwrap();
        assert!(server
            .handle(&ApiRequest::create("mallory", &evil))
            .is_denied());
        assert!(server.exploits().is_empty());
    }

    #[test]
    fn malformed_bodies_are_bad_requests() {
        let server = ApiServer::new();
        let request = ApiRequest {
            user: "admin".into(),
            verb: Verb::Create,
            kind: ResourceKind::Pod,
            namespace: "default".into(),
            name: "x".into(),
            content_type: None,
            resource_version: None,
            body: kf_yaml::parse("replicas: 3\n").unwrap().into(),
        };
        let response = server.handle(&request);
        assert_eq!(response.status, ResponseStatus::BadRequest);
    }

    #[test]
    fn kind_mismatch_between_body_and_endpoint_is_rejected() {
        let server = ApiServer::new();
        let request = ApiRequest {
            user: "admin".into(),
            verb: Verb::Create,
            kind: ResourceKind::Service,
            namespace: "default".into(),
            name: "x".into(),
            content_type: None,
            resource_version: None,
            body: pod("x").into_body().into(),
        };
        let response = server.handle(&request);
        assert_eq!(response.status, ResponseStatus::BadRequest);
    }

    #[test]
    fn namespace_is_defaulted_at_admission() {
        let server = ApiServer::new();
        let mut request = ApiRequest::create("admin", &pod("a"));
        request.namespace = "prod".into();
        // The body has no namespace; the endpoint namespace wins.
        assert!(server.handle(&request).is_success());
        assert!(server.store().get(ResourceKind::Pod, "prod", "a").is_some());
    }

    #[test]
    fn list_returns_all_objects_of_the_kind() {
        let server = ApiServer::new();
        server.handle(&ApiRequest::create("admin", &pod("a")));
        server.handle(&ApiRequest::create("admin", &pod("b")));
        let response = server.handle(&ApiRequest::list("admin", ResourceKind::Pod, "default"));
        let body = response.body.unwrap();
        assert_eq!(body.items().unwrap().len(), 2);
        // The streaming serializer renders the wire shape straight from the
        // item handles.
        let rendered = kf_yaml::parse(&body.to_wire(kf_yaml::BodyFormat::Yaml)).unwrap();
        assert_eq!(rendered.get("items").unwrap().as_seq().unwrap().len(), 2);
        assert_eq!(rendered.get("kind").unwrap().as_str(), Some("PodList"));
    }

    #[test]
    fn watch_without_cursor_lists_then_streams() {
        let server = ApiServer::new();
        server.handle(&ApiRequest::create("admin", &pod("a")));
        server.handle(&ApiRequest::create("admin", &pod("b")));
        // Initial watch: one Added per stored object plus a bookmark cursor.
        let initial = server.handle(&ApiRequest::watch(
            "admin",
            ResourceKind::Pod,
            "default",
            None,
        ));
        assert!(initial.is_success());
        let (events, cursor) = initial.body.as_ref().unwrap().watch_events().unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, crate::WatchEventKind::Added);
        assert_eq!(events[2].kind, crate::WatchEventKind::Bookmark);
        assert_eq!(cursor, 2);
        // The synthesized events share the stored trees.
        let stored = server
            .store()
            .get(ResourceKind::Pod, "default", "a")
            .unwrap();
        assert!(events
            .iter()
            .filter_map(|e| e.object.as_ref())
            .any(|tree| Arc::ptr_eq(tree, stored.object.shared_body())));

        // Nothing happened: resuming from the cursor delivers only a
        // bookmark, holding the cursor steady.
        let idle = server.handle(&ApiRequest::watch(
            "admin",
            ResourceKind::Pod,
            "default",
            Some(cursor),
        ));
        let (events, idle_cursor) = idle.body.as_ref().unwrap().watch_events().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, crate::WatchEventKind::Bookmark);
        assert_eq!(idle_cursor, cursor);

        // A write after the cursor streams as exactly one delta.
        server.handle(&ApiRequest::create("admin", &pod("c")));
        server.handle(&ApiRequest::delete(
            "admin",
            ResourceKind::Pod,
            "default",
            "a",
        ));
        let delta = server.handle(&ApiRequest::watch(
            "admin",
            ResourceKind::Pod,
            "default",
            Some(cursor),
        ));
        let (events, next) = delta.body.as_ref().unwrap().watch_events().unwrap();
        assert_eq!(events.len(), 3, "added + deleted + bookmark");
        assert_eq!(events[0].kind, crate::WatchEventKind::Added);
        assert_eq!(events[0].name, "c");
        assert_eq!(events[1].kind, crate::WatchEventKind::Deleted);
        assert_eq!(events[1].name, "a");
        assert!(next > cursor);
    }

    #[test]
    fn watch_on_a_compacted_journal_is_gone() {
        let server = ApiServer::with_store(crate::ObjectStore::with_journal_capacity(2));
        for name in ["a", "b", "c", "d"] {
            server.handle(&ApiRequest::create("admin", &pod(name)));
        }
        let stale = server.handle(&ApiRequest::watch(
            "admin",
            ResourceKind::Pod,
            "default",
            Some(0),
        ));
        assert_eq!(stale.status, ResponseStatus::Gone);
        assert_eq!(ResponseStatus::Gone.code(), 410);
        // Recovery: an initial watch re-lists and hands out a live cursor.
        let relist = server.handle(&ApiRequest::watch(
            "admin",
            ResourceKind::Pod,
            "default",
            None,
        ));
        let (events, cursor) = relist.body.as_ref().unwrap().watch_events().unwrap();
        assert_eq!(events.len(), 5, "four objects + bookmark");
        let resumed = server.handle(&ApiRequest::watch(
            "admin",
            ResourceKind::Pod,
            "default",
            Some(cursor),
        ));
        assert!(resumed.is_success());
    }

    #[test]
    fn delete_collection_deletes_the_whole_namespace_of_the_kind() {
        let server = ApiServer::new();
        for name in ["a", "b", "c"] {
            server.handle(&ApiRequest::create("admin", &pod(name)));
        }
        let watch_cursor = server.store().watch_revision(ResourceKind::Pod);
        let response = server.handle(&ApiRequest::delete_collection(
            "admin",
            ResourceKind::Pod,
            "default",
        ));
        assert!(response.is_success());
        assert_eq!(response.message, "deleted 3 objects");
        assert_eq!(server.store().len(), 0);
        // One Deleted event per removed object.
        let events = server
            .store()
            .events_since(ResourceKind::Pod, "default", watch_cursor)
            .unwrap()
            .events;
        assert_eq!(events.len(), 3);
        assert!(events
            .iter()
            .all(|e| e.kind == crate::WatchEventKind::Deleted));
        // An empty collection deletes zero objects, successfully.
        let again = server.handle(&ApiRequest::delete_collection(
            "admin",
            ResourceKind::Pod,
            "default",
        ));
        assert!(again.is_success());
        assert_eq!(again.message, "deleted 0 objects");
    }

    #[test]
    fn update_of_missing_object_is_not_found() {
        let server = ApiServer::new();
        let response = server.handle(&ApiRequest::update("admin", &pod("ghost")));
        assert_eq!(response.status, ResponseStatus::NotFound);
    }

    #[test]
    fn accepted_requests_share_one_tree_from_admission_to_reads() {
        let server = ApiServer::new();
        // The manifest carries its namespace, so admission has nothing to
        // default and the stored body is the request's tree itself.
        let pod = K8sObject::from_yaml(
            "apiVersion: v1\nkind: Pod\nmetadata:\n  name: web\n  namespace: default\nspec:\n  containers:\n    - name: c\n      image: nginx\n",
        )
        .unwrap();
        let request = ApiRequest::create("admin", &pod);
        let tree = Arc::clone(request.body.tree().unwrap());
        assert!(server.handle(&request).is_success());
        let stored = server
            .store()
            .get(ResourceKind::Pod, "default", "web")
            .unwrap();
        assert!(
            Arc::ptr_eq(stored.object.shared_body(), &tree),
            "the stored body must be the request's parsed tree"
        );
        // Reads hand the same tree back.
        let get = server.handle(&ApiRequest::get(
            "admin",
            ResourceKind::Pod,
            "default",
            "web",
        ));
        assert!(Arc::ptr_eq(get.body.unwrap().object().unwrap(), &tree));
        // The create's audit event shares it too (the later get carries no
        // body).
        let log = server.audit_log();
        let event = log.events().first().unwrap();
        assert!(Arc::ptr_eq(event.request_body.as_ref().unwrap(), &tree));
    }

    #[test]
    fn baseline_server_reaches_identical_responses_with_detached_trees() {
        let zero_copy = ApiServer::new();
        let baseline = ApiServer::baseline();
        let pod = K8sObject::from_yaml(
            "apiVersion: v1\nkind: Pod\nmetadata:\n  name: web\n  namespace: default\nspec:\n  containers:\n    - name: c\n      image: nginx\n",
        )
        .unwrap();
        let create = ApiRequest::create("admin", &pod);
        let tree = Arc::clone(create.body.tree().unwrap());
        assert_eq!(
            zero_copy.handle(&create).status,
            baseline.handle(&create).status
        );
        for request in [
            ApiRequest::get("admin", ResourceKind::Pod, "default", "web"),
            ApiRequest::list("admin", ResourceKind::Pod, "default"),
            ApiRequest::update("admin", &pod),
            ApiRequest::delete("admin", ResourceKind::Pod, "default", "web"),
        ] {
            let a = zero_copy.handle(&request);
            let b = baseline.handle(&request);
            assert_eq!(a.status, b.status, "diverged on {}", request.path());
            assert_eq!(a.body, b.body, "bodies diverged on {}", request.path());
        }
        // …but the baseline's stored tree is a detached copy, per the old
        // materialization discipline.
        assert!(baseline.handle(&create).is_success());
        let stored = baseline
            .store()
            .get(ResourceKind::Pod, "default", "web")
            .unwrap();
        assert!(!Arc::ptr_eq(stored.object.shared_body(), &tree));
    }
}
