//! The request-latency model used to report deployment round-trip times.
//!
//! The paper measures wall-clock RTT of `kubectl apply` against a real two-VM
//! testbed (Table IV). Our substrate is an in-process simulator, so absolute
//! network and API-server processing times are *modelled*: each request pays a
//! base API-server cost, a per-kilobyte serialization/transfer cost and a
//! client↔server network round trip. The KubeFence proxy adds one additional
//! network hop plus its (actually measured) validation time. The constants
//! below are calibrated so that a full operator deployment lands in the same
//! range the paper reports (≈170–390 ms per `kubectl apply`), which keeps the
//! *relative* overhead — the quantity the paper argues about — meaningful.

use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The latency constants of the model, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyProfile {
    /// Fixed API-server processing cost per request.
    pub apiserver_base_us: u64,
    /// Additional processing/transfer cost per KiB of payload.
    pub per_kib_us: u64,
    /// One client↔server network round trip.
    pub network_rtt_us: u64,
    /// Extra network hop introduced by a man-in-the-middle proxy
    /// (client→proxy→server instead of client→server).
    pub proxy_hop_us: u64,
    /// TLS interception overhead per request at the proxy (certificate
    /// handling, re-encryption).
    pub proxy_tls_us: u64,
    /// Relative jitter applied to every sample (0.05 = ±5%).
    pub jitter: f64,
}

impl Default for LatencyProfile {
    fn default() -> Self {
        // Calibrated against the paper's testbed numbers: a typical operator
        // deployment issues a few dozen requests and completes in 170–390 ms
        // without the proxy, 210–470 ms with it.
        LatencyProfile {
            apiserver_base_us: 9_000,
            per_kib_us: 500,
            network_rtt_us: 2_600,
            proxy_hop_us: 1_800,
            proxy_tls_us: 900,
            jitter: 0.08,
        }
    }
}

/// A deterministic (seeded) latency model.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    profile: LatencyProfile,
    rng: SmallRng,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::new(LatencyProfile::default(), 0x5eed)
    }
}

impl LatencyModel {
    /// Build a model from a profile and RNG seed.
    pub fn new(profile: LatencyProfile, seed: u64) -> Self {
        LatencyModel {
            profile,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The profile in use.
    pub fn profile(&self) -> &LatencyProfile {
        &self.profile
    }

    fn jittered(&mut self, base_us: u64) -> Duration {
        let jitter = self.profile.jitter;
        let factor = if jitter > 0.0 {
            1.0 + self.rng.gen_range(-jitter..jitter)
        } else {
            1.0
        };
        Duration::from_micros(((base_us as f64) * factor).max(0.0) as u64)
    }

    /// Modelled latency for a direct (no proxy) request with the given payload
    /// size.
    pub fn direct_request(&mut self, payload_bytes: usize) -> Duration {
        let kib = payload_bytes.div_ceil(1024) as u64;
        let base = self.profile.apiserver_base_us
            + self.profile.per_kib_us * kib
            + self.profile.network_rtt_us;
        self.jittered(base)
    }

    /// Modelled *additional* latency a man-in-the-middle proxy adds to one
    /// request, excluding the proxy's own validation time (which callers
    /// measure for real and add on top).
    pub fn proxy_overhead(&mut self, payload_bytes: usize) -> Duration {
        let kib = payload_bytes.div_ceil(1024) as u64;
        let base = self.profile.proxy_hop_us
            + self.profile.proxy_tls_us
            + (self.profile.per_kib_us / 2) * kib;
        self.jittered(base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_latency_grows_with_payload() {
        let mut model = LatencyModel::new(
            LatencyProfile {
                jitter: 0.0,
                ..LatencyProfile::default()
            },
            1,
        );
        let small = model.direct_request(256);
        let large = model.direct_request(64 * 1024);
        assert!(large > small);
    }

    #[test]
    fn proxy_overhead_is_a_fraction_of_direct_latency() {
        let mut model = LatencyModel::new(
            LatencyProfile {
                jitter: 0.0,
                ..LatencyProfile::default()
            },
            1,
        );
        let direct = model.direct_request(2048);
        let overhead = model.proxy_overhead(2048);
        let ratio = overhead.as_secs_f64() / direct.as_secs_f64();
        assert!(
            (0.05..0.60).contains(&ratio),
            "proxy overhead ratio {ratio} outside the expected band"
        );
    }

    #[test]
    fn jitter_keeps_samples_near_the_mean() {
        let mut model = LatencyModel::default();
        let samples: Vec<f64> = (0..200)
            .map(|_| model.direct_request(1024).as_secs_f64())
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        for s in samples {
            assert!((s - mean).abs() / mean < 0.25);
        }
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let mut a = LatencyModel::new(LatencyProfile::default(), 42);
        let mut b = LatencyModel::new(LatencyProfile::default(), 42);
        for payload in [128usize, 1024, 8192] {
            assert_eq!(a.direct_request(payload), b.direct_request(payload));
        }
    }

    #[test]
    fn deployment_scale_matches_paper_magnitude() {
        // ~25 requests of ~2 KiB ≈ a Table IV deployment; the modelled RTT
        // should land in the hundreds of milliseconds, not seconds.
        let mut model = LatencyModel::default();
        let total: Duration = (0..25).map(|_| model.direct_request(2048)).sum();
        assert!(total > Duration::from_millis(80), "total = {total:?}");
        assert!(total < Duration::from_millis(800), "total = {total:?}");
    }
}
