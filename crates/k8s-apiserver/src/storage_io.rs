//! The storage I/O seam under the persistence plane, plus deterministic
//! fault injection.
//!
//! Every byte the WAL and snapshot code moves to or from disk goes through
//! a [`StorageIo`] — a small trait covering exactly the operations
//! `crate::persist` performs (append-mode writes, whole-file reads, atomic
//! tmp-then-rename publication, truncation, directory syncs). Production
//! uses [`RealIo`] (a thin veneer over `std::fs`); tests, benches and the
//! chaos workload wrap it in a [`FaultyIo`] that injects failures from a
//! deterministic, seedable [`FaultSchedule`]:
//!
//! * **transient / permanent fsync failure** — the classic "fsyncgate"
//!   shapes: an `fsync` that fails once and then heals, or a device that
//!   never accepts a flush again;
//! * **ENOSPC** — writes rejected with a no-space error for a bounded run;
//! * **short write** — a prefix of the buffer lands, then the write errors;
//! * **torn write** — a prefix lands and the device *crashes*: every
//!   subsequent operation fails (models power loss mid-`write`, the case
//!   the WAL's frame CRCs exist for);
//! * **injected latency** — the op succeeds after a deterministic stall.
//!
//! A schedule addresses operations by **type and global index** (`write@7`,
//! `fsync@3`), so a given seed reproduces the identical failure at the
//! identical moment on every run — the property the chaos sweep's
//! invariants are stated against. Schedules parse from a compact spec
//! string (see [`FaultSchedule::parse`]) and render back to it
//! ([`FaultSchedule::spec`]), so a failing seed can be quoted in a bug
//! report and replayed verbatim. See `docs/robustness.md`.

use std::fmt::Write as _;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// An open append-mode file handle, as the WAL uses one.
pub trait StorageFile: Send + std::fmt::Debug {
    /// Append the whole buffer (one WAL frame batch).
    ///
    /// # Errors
    ///
    /// The underlying write error — possibly after a prefix of the buffer
    /// already landed (a short or torn write); callers must treat the file
    /// tail as unknown after a failure.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;

    /// Force written data to stable storage (`fdatasync`).
    ///
    /// # Errors
    ///
    /// The underlying fsync error. Per the fsyncgate lesson, a failed fsync
    /// says nothing about *which* pages reached the platter — callers must
    /// not advance durability cursors on failure.
    fn sync_data(&mut self) -> io::Result<()>;
}

/// The filesystem surface the persistence plane runs on. One
/// implementation talks to the real filesystem ([`RealIo`]); [`FaultyIo`]
/// decorates any implementation with injected failures.
pub trait StorageIo: Send + Sync + std::fmt::Debug {
    /// Create a directory and its parents (persistence-dir bootstrap).
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Read a whole file (snapshot load, WAL replay, compaction scan).
    ///
    /// # Errors
    ///
    /// Filesystem errors, including `NotFound` (callers map it to "empty").
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// The file's current length in bytes.
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    fn file_len(&self, path: &Path) -> io::Result<u64>;

    /// Open (creating if needed) a file for appending.
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;

    /// Create (truncating) a file, write `bytes`, and fsync it — the
    /// tmp-file half of atomic publication. Counts as one write plus one
    /// fsync toward fault schedules.
    ///
    /// # Errors
    ///
    /// Filesystem errors; on failure the file contents are unspecified
    /// (callers publish via rename precisely so a torn tmp is invisible).
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Atomically rename `from` onto `to` (snapshot/compaction publication,
    /// corrupt-snapshot quarantine).
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Truncate the file to `len` bytes and sync the truncation — the
    /// torn-tail repair used at recovery and before a degraded WAL rewrites
    /// its pending frames.
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;

    /// Best-effort fsync of the path's parent directory (makes a rename
    /// durable on filesystems that need it); errors are swallowed because
    /// some platforms cannot open directories at all.
    fn sync_parent_dir(&self, path: &Path);
}

/// The production [`StorageIo`]: `std::fs`, nothing else.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

#[derive(Debug)]
struct RealFile(File);

impl StorageFile for RealFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
}

impl StorageIo for RealIo {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        Ok(fs::metadata(path)?.len())
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Box::new(RealFile(file)))
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut file = File::create(path)?;
        file.write_all(bytes)?;
        file.sync_data()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(len)?;
        file.sync_data()
    }

    fn sync_parent_dir(&self, path: &Path) {
        if let Some(parent) = path.parent() {
            if let Ok(dir) = File::open(parent) {
                let _ = dir.sync_all();
            }
        }
    }
}

/// Which operation class a planned fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// Data-moving writes (`write_all` on an append handle, `write_file`).
    Write,
    /// Flushes (`sync_data` on a handle, the fsync inside `write_file`).
    Fsync,
}

impl FaultOp {
    fn spec_name(self) -> &'static str {
        match self {
            FaultOp::Write => "write",
            FaultOp::Fsync => "fsync",
        }
    }
}

/// What happens when a planned fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail this operation and the next `n - 1` of the same class, then
    /// heal — the transient-fsync-failure shape.
    Transient(u32),
    /// Fail this and every later operation of the same class.
    Permanent,
    /// Reject `n` consecutive writes with a no-space error (the disk fills,
    /// then an operator frees space).
    Enospc(u32),
    /// Write a prefix of the buffer, then fail once (interrupted write).
    ShortWrite,
    /// Write a prefix of the buffer, then **crash the device**: every
    /// subsequent operation on this I/O fails. Models power loss
    /// mid-write — the torn frame stays on disk for recovery to truncate,
    /// and nothing after it can become durable.
    TornWrite,
    /// Succeed after stalling for this many microseconds (a saturated or
    /// failing-slowly device).
    Latency(u32),
}

impl FaultKind {
    /// How many consecutive operations of the class this fault covers.
    fn span(self) -> u64 {
        match self {
            FaultKind::Transient(n) | FaultKind::Enospc(n) => u64::from(n.max(1)),
            FaultKind::Permanent | FaultKind::TornWrite => u64::MAX,
            FaultKind::ShortWrite | FaultKind::Latency(_) => 1,
        }
    }

    fn spec_fragment(self) -> String {
        match self {
            FaultKind::Transient(n) => format!("transient*{n}"),
            FaultKind::Permanent => "permanent".to_owned(),
            FaultKind::Enospc(n) => format!("enospc*{n}"),
            FaultKind::ShortWrite => "short".to_owned(),
            FaultKind::TornWrite => "torn".to_owned(),
            FaultKind::Latency(us) => format!("latency*{us}"),
        }
    }

    fn parse_fragment(text: &str) -> Option<FaultKind> {
        if let Some(n) = text.strip_prefix("transient*") {
            return Some(FaultKind::Transient(n.parse().ok()?));
        }
        if let Some(n) = text.strip_prefix("enospc*") {
            return Some(FaultKind::Enospc(n.parse().ok()?));
        }
        if let Some(us) = text.strip_prefix("latency*") {
            return Some(FaultKind::Latency(us.parse().ok()?));
        }
        match text {
            "permanent" => Some(FaultKind::Permanent),
            "short" => Some(FaultKind::ShortWrite),
            "torn" => Some(FaultKind::TornWrite),
            _ => None,
        }
    }
}

/// One planned fault: operation class, zero-based operation index at which
/// it fires, and what it does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedFault {
    /// The operation class counted against.
    pub op: FaultOp,
    /// The zero-based index (per class) of the first affected operation.
    pub at: u64,
    /// What the fault does when it fires.
    pub kind: FaultKind,
}

/// A deterministic set of [`PlannedFault`]s.
///
/// The same schedule produces the same failures at the same operation
/// indices on every run — seeds are reproduction handles, not randomness.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    /// The planned faults (order is irrelevant; indices address operations).
    pub faults: Vec<PlannedFault>,
}

/// The xorshift64 step used to derive schedules from seeds (self-contained:
/// the plane takes no RNG dependency).
fn xorshift64(state: &mut u64) -> u64 {
    let mut x = state.wrapping_add(0x9E37_79B9_7F4A_7C15).max(1);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

impl FaultSchedule {
    /// A schedule with no faults (the [`FaultyIo`] becomes a pass-through
    /// with operation counters — useful for op-budget accounting in tests).
    pub fn none() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// Derive a schedule deterministically from a seed: one to three faults
    /// with operation indices in `2..=25` (index 0 is the WAL's open-time
    /// fsync; keeping faults past boot lets every run start serving). The
    /// same seed always yields the same schedule.
    pub fn from_seed(seed: u64) -> FaultSchedule {
        let mut state = seed;
        let count = 1 + (xorshift64(&mut state) % 3);
        let mut faults = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let op = if xorshift64(&mut state).is_multiple_of(2) {
                FaultOp::Write
            } else {
                FaultOp::Fsync
            };
            let at = 2 + (xorshift64(&mut state) % 24);
            let kind = match (op, xorshift64(&mut state) % 6) {
                (_, 0) => FaultKind::Transient(1 + (xorshift64(&mut state) % 3) as u32),
                (_, 1) => FaultKind::Permanent,
                (FaultOp::Write, 2) => FaultKind::Enospc(1 + (xorshift64(&mut state) % 4) as u32),
                (FaultOp::Write, 3) => FaultKind::ShortWrite,
                (FaultOp::Write, 4) => FaultKind::TornWrite,
                (FaultOp::Fsync, 2..=4) => {
                    FaultKind::Transient(1 + (xorshift64(&mut state) % 4) as u32)
                }
                _ => FaultKind::Latency(50 + (xorshift64(&mut state) % 500) as u32),
            };
            faults.push(PlannedFault { op, at, kind });
        }
        FaultSchedule { faults }
    }

    /// Parse the compact spec format: comma-separated `op@index:kind`
    /// entries where `op` is `write` or `fsync`, `index` is the zero-based
    /// operation index, and `kind` is one of `transient*N`, `permanent`,
    /// `enospc*N`, `short`, `torn`, `latency*MICROS`. Example:
    /// `fsync@5:transient*2,write@9:torn`. The empty string is the empty
    /// schedule.
    pub fn parse(spec: &str) -> Option<FaultSchedule> {
        let mut faults = Vec::new();
        for entry in spec.split(',').filter(|e| !e.trim().is_empty()) {
            let entry = entry.trim();
            let (target, kind) = entry.split_once(':')?;
            let (op, at) = target.split_once('@')?;
            let op = match op {
                "write" => FaultOp::Write,
                "fsync" => FaultOp::Fsync,
                _ => return None,
            };
            faults.push(PlannedFault {
                op,
                at: at.parse().ok()?,
                kind: FaultKind::parse_fragment(kind)?,
            });
        }
        Some(FaultSchedule { faults })
    }

    /// Render the schedule in the format [`FaultSchedule::parse`] accepts —
    /// the string to quote when reporting a failing seed.
    pub fn spec(&self) -> String {
        let mut out = String::new();
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}@{}:{}",
                fault.op.spec_name(),
                fault.at,
                fault.kind.spec_fragment()
            );
        }
        out
    }

    /// The fault (if any) covering operation `index` of class `op`.
    fn fault_for(&self, op: FaultOp, index: u64) -> Option<&PlannedFault> {
        self.faults
            .iter()
            .filter(|f| f.op == op && index >= f.at)
            .find(|f| index - f.at < f.kind.span())
    }
}

#[derive(Debug)]
struct FaultState {
    schedule: FaultSchedule,
    writes: AtomicU64,
    fsyncs: AtomicU64,
    crashed: AtomicBool,
    injected: AtomicU64,
}

impl FaultState {
    fn crash_error(&self) -> io::Error {
        io::Error::other("injected device crash: all I/O failing")
    }

    /// Account one operation and apply its scheduled fault, if any.
    /// `partial` receives the prefix to land before a short/torn failure.
    fn check(&self, op: FaultOp, mut partial: impl FnMut(f32) -> io::Result<()>) -> io::Result<()> {
        let counter = match op {
            FaultOp::Write => &self.writes,
            FaultOp::Fsync => &self.fsyncs,
        };
        let index = counter.fetch_add(1, Ordering::SeqCst);
        if self.crashed.load(Ordering::SeqCst) {
            return Err(self.crash_error());
        }
        let Some(fault) = self.schedule.fault_for(op, index) else {
            return Ok(());
        };
        match fault.kind {
            FaultKind::Latency(micros) => {
                std::thread::sleep(Duration::from_micros(u64::from(micros)));
                Ok(())
            }
            FaultKind::Transient(_) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                Err(io::Error::other(format!(
                    "injected transient {} failure at op {index}",
                    fault.op.spec_name()
                )))
            }
            FaultKind::Permanent => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                Err(io::Error::other(format!(
                    "injected permanent {} failure at op {index}",
                    fault.op.spec_name()
                )))
            }
            FaultKind::Enospc(_) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                Err(io::Error::other(format!(
                    "no space left on device (injected at op {index})"
                )))
            }
            FaultKind::ShortWrite => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                // Half the buffer lands; the rest never reaches the file.
                let _ = partial(0.5);
                Err(io::Error::other(format!(
                    "injected short write at op {index}"
                )))
            }
            FaultKind::TornWrite => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                let _ = partial(0.5);
                self.crashed.store(true, Ordering::SeqCst);
                Err(io::Error::other(format!(
                    "injected torn write at op {index}: device crashed"
                )))
            }
        }
    }
}

/// A [`StorageIo`] decorator injecting failures from a [`FaultSchedule`].
///
/// Operation counters are shared across every file the I/O opens (the WAL,
/// snapshot tmp files, compaction rewrites), so a schedule addresses the
/// persistence plane's global operation stream — which is what makes a
/// seed's failure moment reproducible regardless of which file it lands
/// on. Reads, renames and truncations pass through unless the device has
/// crashed (a fired [`FaultKind::TornWrite`]).
#[derive(Debug)]
pub struct FaultyIo {
    inner: Arc<dyn StorageIo>,
    state: Arc<FaultState>,
}

impl FaultyIo {
    /// Wrap `inner` with `schedule`.
    pub fn new(inner: Arc<dyn StorageIo>, schedule: FaultSchedule) -> FaultyIo {
        FaultyIo {
            inner,
            state: Arc::new(FaultState {
                schedule,
                writes: AtomicU64::new(0),
                fsyncs: AtomicU64::new(0),
                crashed: AtomicBool::new(false),
                injected: AtomicU64::new(0),
            }),
        }
    }

    /// A faulty I/O over the real filesystem.
    pub fn over_real(schedule: FaultSchedule) -> FaultyIo {
        FaultyIo::new(Arc::new(RealIo), schedule)
    }

    /// The schedule this I/O injects.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.state.schedule
    }

    /// Write operations observed so far (across all files).
    pub fn writes(&self) -> u64 {
        self.state.writes.load(Ordering::SeqCst)
    }

    /// Fsync operations observed so far (across all files).
    pub fn fsyncs(&self) -> u64 {
        self.state.fsyncs.load(Ordering::SeqCst)
    }

    /// Faults injected so far (latency stalls are not counted — they
    /// succeed).
    pub fn injected(&self) -> u64 {
        self.state.injected.load(Ordering::Relaxed)
    }

    /// Whether a torn write has crashed the device.
    pub fn crashed(&self) -> bool {
        self.state.crashed.load(Ordering::SeqCst)
    }

    fn guard(&self) -> io::Result<()> {
        if self.state.crashed.load(Ordering::SeqCst) {
            Err(self.state.crash_error())
        } else {
            Ok(())
        }
    }
}

#[derive(Debug)]
struct FaultyFile {
    inner: Box<dyn StorageFile>,
    state: Arc<FaultState>,
}

impl StorageFile for FaultyFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let inner = &mut self.inner;
        self.state.check(FaultOp::Write, |fraction| {
            let cut = ((buf.len() as f32) * fraction) as usize;
            inner.write_all(&buf[..cut.min(buf.len())])
        })?;
        inner.write_all(buf)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.state.check(FaultOp::Fsync, |_| Ok(()))?;
        self.inner.sync_data()
    }
}

impl StorageIo for FaultyIo {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.guard()?;
        self.inner.create_dir_all(path)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        // Reads survive a crashed device in this model (the page cache);
        // only mutations fail. Recovery correctness never depends on this.
        self.inner.read(path)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        self.inner.file_len(path)
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        self.guard()?;
        let inner = self.inner.open_append(path)?;
        Ok(Box::new(FaultyFile {
            inner,
            state: Arc::clone(&self.state),
        }))
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let inner = &*self.inner;
        self.state.check(FaultOp::Write, |fraction| {
            let cut = ((bytes.len() as f32) * fraction) as usize;
            inner.write_file(path, &bytes[..cut.min(bytes.len())])
        })?;
        self.state.check(FaultOp::Fsync, |_| Ok(()))?;
        self.inner.write_file(path, bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.guard()?;
        self.inner.rename(from, to)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        self.guard()?;
        self.inner.truncate(path, len)
    }

    fn sync_parent_dir(&self, path: &Path) {
        if self.state.crashed.load(Ordering::SeqCst) {
            return;
        }
        self.inner.sync_parent_dir(path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_round_trip_through_the_spec_format() {
        let schedule = FaultSchedule {
            faults: vec![
                PlannedFault {
                    op: FaultOp::Fsync,
                    at: 5,
                    kind: FaultKind::Transient(2),
                },
                PlannedFault {
                    op: FaultOp::Write,
                    at: 9,
                    kind: FaultKind::TornWrite,
                },
                PlannedFault {
                    op: FaultOp::Write,
                    at: 3,
                    kind: FaultKind::Enospc(4),
                },
                PlannedFault {
                    op: FaultOp::Write,
                    at: 7,
                    kind: FaultKind::Latency(250),
                },
            ],
        };
        let spec = schedule.spec();
        assert_eq!(
            spec,
            "fsync@5:transient*2,write@9:torn,write@3:enospc*4,write@7:latency*250"
        );
        assert_eq!(FaultSchedule::parse(&spec), Some(schedule));
        assert_eq!(FaultSchedule::parse(""), Some(FaultSchedule::none()));
        assert_eq!(FaultSchedule::parse("write@x:torn"), None);
        assert_eq!(FaultSchedule::parse("read@1:torn"), None);
        assert_eq!(FaultSchedule::parse("write@1:melt"), None);
    }

    #[test]
    fn seeded_schedules_are_deterministic_and_distinct() {
        for seed in 0..64u64 {
            let a = FaultSchedule::from_seed(seed);
            let b = FaultSchedule::from_seed(seed);
            assert_eq!(a, b, "seed {seed} must reproduce");
            assert!(!a.faults.is_empty(), "seed {seed} plans at least one fault");
            assert!(
                a.faults.iter().all(|f| f.at >= 2),
                "seed {seed} keeps faults past boot"
            );
        }
        let distinct: std::collections::HashSet<String> = (0..64u64)
            .map(|s| FaultSchedule::from_seed(s).spec())
            .collect();
        assert!(distinct.len() > 32, "seeds spread over the schedule space");
    }

    #[test]
    fn transient_faults_cover_their_span_then_heal() {
        let schedule = FaultSchedule::parse("fsync@2:transient*2").expect("spec");
        assert!(schedule.fault_for(FaultOp::Fsync, 1).is_none());
        assert!(schedule.fault_for(FaultOp::Fsync, 2).is_some());
        assert!(schedule.fault_for(FaultOp::Fsync, 3).is_some());
        assert!(schedule.fault_for(FaultOp::Fsync, 4).is_none());
        assert!(
            schedule.fault_for(FaultOp::Write, 2).is_none(),
            "class-scoped"
        );
        let permanent = FaultSchedule::parse("write@3:permanent").expect("spec");
        assert!(permanent.fault_for(FaultOp::Write, 2).is_none());
        assert!(permanent.fault_for(FaultOp::Write, 1_000_000).is_some());
    }

    #[test]
    fn torn_write_lands_a_prefix_and_crashes_the_device() {
        let dir = std::env::temp_dir().join(format!("kf-io-torn-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("x.log");
        let io = FaultyIo::over_real(FaultSchedule::parse("write@1:torn").expect("spec"));
        let mut file = io.open_append(&path).expect("open");
        file.write_all(b"aaaa").expect("first write clean");
        let err = file.write_all(b"bbbbbbbb").expect_err("torn write fails");
        assert!(err.to_string().contains("torn"), "{err}");
        assert!(io.crashed());
        assert!(file.write_all(b"cc").is_err(), "device stays dead");
        assert!(file.sync_data().is_err(), "fsync dead too");
        assert!(io.truncate(&path, 0).is_err(), "truncate dead too");
        let bytes = fs::read(&path).expect("read survives");
        assert_eq!(bytes, b"aaaabbbb", "exactly the prefix landed");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn short_write_heals_after_one_failure() {
        let dir = std::env::temp_dir().join(format!("kf-io-short-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("x.log");
        let io = FaultyIo::over_real(FaultSchedule::parse("write@0:short").expect("spec"));
        let mut file = io.open_append(&path).expect("open");
        assert!(file.write_all(b"xxxxxxxx").is_err(), "first write is short");
        assert_eq!(fs::read(&path).expect("read").len(), 4, "half landed");
        file.write_all(b"yy").expect("second write clean");
        assert_eq!(io.injected(), 1);
        fs::remove_dir_all(&dir).ok();
    }
}
