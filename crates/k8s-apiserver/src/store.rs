//! The etcd-like versioned object store backing the simulated API server.

use std::collections::BTreeMap;

use parking_lot::RwLock;

use k8s_model::{K8sObject, ResourceKind};

/// A stored object together with its resource version.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredObject {
    /// The object as last written.
    pub object: K8sObject,
    /// Monotonic resource version assigned at the last write.
    pub resource_version: u64,
}

/// Key identifying an object: kind + namespace + name.
type Key = (ResourceKind, String, String);

/// An in-memory, versioned object store with etcd-like semantics: every write
/// bumps a global revision, `create` fails on existing keys, `update` and
/// `delete` fail on missing keys.
#[derive(Debug, Default)]
pub struct ObjectStore {
    inner: RwLock<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    objects: BTreeMap<Key, StoredObject>,
    revision: u64,
}

impl ObjectStore {
    /// An empty store.
    pub fn new() -> Self {
        ObjectStore::default()
    }

    fn key(object: &K8sObject) -> Key {
        (
            object.kind(),
            object.namespace().to_owned(),
            object.name().to_owned(),
        )
    }

    /// The current global revision (number of writes so far).
    pub fn revision(&self) -> u64 {
        self.inner.read().revision
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.inner.read().objects.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().objects.is_empty()
    }

    /// Create an object. Returns the assigned resource version, or `None` if
    /// an object with the same kind/namespace/name already exists.
    pub fn create(&self, object: K8sObject) -> Option<u64> {
        let mut inner = self.inner.write();
        let key = Self::key(&object);
        if inner.objects.contains_key(&key) {
            return None;
        }
        inner.revision += 1;
        let version = inner.revision;
        inner.objects.insert(
            key,
            StoredObject {
                object,
                resource_version: version,
            },
        );
        Some(version)
    }

    /// Update an existing object. Returns the new resource version, or `None`
    /// if the object does not exist.
    pub fn update(&self, object: K8sObject) -> Option<u64> {
        let mut inner = self.inner.write();
        let key = Self::key(&object);
        if !inner.objects.contains_key(&key) {
            return None;
        }
        inner.revision += 1;
        let version = inner.revision;
        inner.objects.insert(
            key,
            StoredObject {
                object,
                resource_version: version,
            },
        );
        Some(version)
    }

    /// Create the object if absent, update it otherwise (the `kubectl apply`
    /// behaviour). Returns the new resource version.
    pub fn apply(&self, object: K8sObject) -> u64 {
        let mut inner = self.inner.write();
        let key = Self::key(&object);
        inner.revision += 1;
        let version = inner.revision;
        inner.objects.insert(
            key,
            StoredObject {
                object,
                resource_version: version,
            },
        );
        version
    }

    /// Fetch an object by kind, namespace and name.
    pub fn get(&self, kind: ResourceKind, namespace: &str, name: &str) -> Option<StoredObject> {
        self.inner
            .read()
            .objects
            .get(&(kind, namespace.to_owned(), name.to_owned()))
            .cloned()
    }

    /// Delete an object; returns it if it existed.
    pub fn delete(&self, kind: ResourceKind, namespace: &str, name: &str) -> Option<StoredObject> {
        let mut inner = self.inner.write();
        let removed = inner
            .objects
            .remove(&(kind, namespace.to_owned(), name.to_owned()));
        if removed.is_some() {
            inner.revision += 1;
        }
        removed
    }

    /// List objects of a kind in a namespace (all namespaces when `namespace`
    /// is empty).
    pub fn list(&self, kind: ResourceKind, namespace: &str) -> Vec<StoredObject> {
        self.inner
            .read()
            .objects
            .iter()
            .filter(|((k, ns, _), _)| *k == kind && (namespace.is_empty() || ns == namespace))
            .map(|(_, stored)| stored.clone())
            .collect()
    }

    /// Count the stored objects per kind.
    pub fn count_by_kind(&self) -> BTreeMap<ResourceKind, usize> {
        let mut out = BTreeMap::new();
        for ((kind, _, _), _) in self.inner.read().objects.iter() {
            *out.entry(*kind).or_insert(0) += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn object(kind: ResourceKind, name: &str, namespace: &str) -> K8sObject {
        K8sObject::minimal(kind, name, namespace)
    }

    #[test]
    fn create_then_get_roundtrips() {
        let store = ObjectStore::new();
        let version = store
            .create(object(ResourceKind::Service, "svc", "prod"))
            .unwrap();
        assert_eq!(version, 1);
        let stored = store.get(ResourceKind::Service, "prod", "svc").unwrap();
        assert_eq!(stored.resource_version, 1);
        assert_eq!(stored.object.name(), "svc");
    }

    #[test]
    fn create_conflicts_on_existing_objects() {
        let store = ObjectStore::new();
        assert!(store.create(object(ResourceKind::Pod, "a", "ns")).is_some());
        assert!(store.create(object(ResourceKind::Pod, "a", "ns")).is_none());
        // Same name in a different namespace or kind is fine.
        assert!(store.create(object(ResourceKind::Pod, "a", "other")).is_some());
        assert!(store.create(object(ResourceKind::ConfigMap, "a", "ns")).is_some());
    }

    #[test]
    fn update_requires_an_existing_object() {
        let store = ObjectStore::new();
        assert!(store.update(object(ResourceKind::Pod, "a", "ns")).is_none());
        store.create(object(ResourceKind::Pod, "a", "ns")).unwrap();
        let v2 = store.update(object(ResourceKind::Pod, "a", "ns")).unwrap();
        assert_eq!(v2, 2);
    }

    #[test]
    fn apply_upserts_and_bumps_revision() {
        let store = ObjectStore::new();
        assert_eq!(store.apply(object(ResourceKind::Secret, "s", "ns")), 1);
        assert_eq!(store.apply(object(ResourceKind::Secret, "s", "ns")), 2);
        assert_eq!(store.len(), 1);
        assert_eq!(store.revision(), 2);
    }

    #[test]
    fn delete_removes_and_reports() {
        let store = ObjectStore::new();
        store.create(object(ResourceKind::Pod, "a", "ns")).unwrap();
        assert!(store.delete(ResourceKind::Pod, "ns", "a").is_some());
        assert!(store.delete(ResourceKind::Pod, "ns", "a").is_none());
        assert!(store.is_empty());
    }

    #[test]
    fn list_filters_by_kind_and_namespace() {
        let store = ObjectStore::new();
        store.create(object(ResourceKind::Pod, "a", "ns1")).unwrap();
        store.create(object(ResourceKind::Pod, "b", "ns1")).unwrap();
        store.create(object(ResourceKind::Pod, "c", "ns2")).unwrap();
        store.create(object(ResourceKind::Service, "s", "ns1")).unwrap();
        assert_eq!(store.list(ResourceKind::Pod, "ns1").len(), 2);
        assert_eq!(store.list(ResourceKind::Pod, "").len(), 3);
        assert_eq!(store.list(ResourceKind::Service, "ns1").len(), 1);
        let counts = store.count_by_kind();
        assert_eq!(counts[&ResourceKind::Pod], 3);
    }
}
