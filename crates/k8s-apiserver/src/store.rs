//! The etcd-like versioned object store backing the simulated API server.
//!
//! The store is sharded by key hash: objects are spread over [`SHARDS`]
//! independently locked maps so concurrent writers to different objects do
//! not serialize on one global lock, while the resource-version counter is a
//! single atomic — still globally monotonic, never a lock. Reads take one
//! shard's read lock; whole-store scans (`list`, `count_by_kind`) visit the
//! shards in order.

use std::collections::BTreeMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use k8s_model::{K8sObject, ResourceKind};

/// A stored object together with its resource version.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredObject {
    /// The object as last written.
    pub object: K8sObject,
    /// Monotonic resource version assigned at the last write.
    pub resource_version: u64,
}

/// Key identifying an object: kind + namespace + name.
type Key = (ResourceKind, String, String);

/// Number of hash shards. A small power of two: enough to spread the five
/// operator workloads' writes, cheap to scan for list operations.
const SHARDS: usize = 16;

/// An in-memory, versioned object store with etcd-like semantics: every write
/// bumps a global revision, `create` fails on existing keys, `update` and
/// `delete` fail on missing keys.
#[derive(Debug)]
pub struct ObjectStore {
    shards: Vec<RwLock<BTreeMap<Key, StoredObject>>>,
    /// Global revision counter (number of writes so far). Incremented while
    /// holding the affected shard's write lock, so versions of one object
    /// are strictly increasing and globally unique.
    revision: AtomicU64,
}

impl Default for ObjectStore {
    fn default() -> Self {
        ObjectStore {
            shards: (0..SHARDS).map(|_| RwLock::new(BTreeMap::new())).collect(),
            revision: AtomicU64::new(0),
        }
    }
}

impl ObjectStore {
    /// An empty store.
    pub fn new() -> Self {
        ObjectStore::default()
    }

    fn key(object: &K8sObject) -> Key {
        (
            object.kind(),
            object.namespace().to_owned(),
            object.name().to_owned(),
        )
    }

    fn shard_index(key: &Key) -> usize {
        let mut hasher = DefaultHasher::new();
        key.0.index().hash(&mut hasher);
        key.1.hash(&mut hasher);
        key.2.hash(&mut hasher);
        (hasher.finish() as usize) % SHARDS
    }

    fn shard(&self, key: &Key) -> &RwLock<BTreeMap<Key, StoredObject>> {
        &self.shards[Self::shard_index(key)]
    }

    fn next_revision(&self) -> u64 {
        self.revision.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The current global revision (number of writes so far).
    pub fn revision(&self) -> u64 {
        self.revision.load(Ordering::Relaxed)
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|shard| shard.read().len()).sum()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|shard| shard.read().is_empty())
    }

    /// Create an object. Returns the assigned resource version, or `None` if
    /// an object with the same kind/namespace/name already exists.
    pub fn create(&self, object: K8sObject) -> Option<u64> {
        let key = Self::key(&object);
        let mut shard = self.shard(&key).write();
        if shard.contains_key(&key) {
            return None;
        }
        let version = self.next_revision();
        shard.insert(
            key,
            StoredObject {
                object,
                resource_version: version,
            },
        );
        Some(version)
    }

    /// Update an existing object. Returns the new resource version, or `None`
    /// if the object does not exist.
    pub fn update(&self, object: K8sObject) -> Option<u64> {
        let key = Self::key(&object);
        let mut shard = self.shard(&key).write();
        if !shard.contains_key(&key) {
            return None;
        }
        let version = self.next_revision();
        shard.insert(
            key,
            StoredObject {
                object,
                resource_version: version,
            },
        );
        Some(version)
    }

    /// Create the object if absent, update it otherwise (the `kubectl apply`
    /// behaviour). Returns the new resource version.
    pub fn apply(&self, object: K8sObject) -> u64 {
        self.upsert(object).0
    }

    /// [`ObjectStore::apply`], additionally reporting whether the object was
    /// created (`true`) or replaced (`false`) — one shard lock, no
    /// re-admission round trip for the create-on-conflict path.
    pub fn upsert(&self, object: K8sObject) -> (u64, bool) {
        let key = Self::key(&object);
        let mut shard = self.shard(&key).write();
        let version = self.next_revision();
        let replaced = shard.insert(
            key,
            StoredObject {
                object,
                resource_version: version,
            },
        );
        (version, replaced.is_none())
    }

    /// Fetch an object by kind, namespace and name.
    pub fn get(&self, kind: ResourceKind, namespace: &str, name: &str) -> Option<StoredObject> {
        let key = (kind, namespace.to_owned(), name.to_owned());
        self.shard(&key).read().get(&key).cloned()
    }

    /// Delete an object; returns it if it existed.
    pub fn delete(&self, kind: ResourceKind, namespace: &str, name: &str) -> Option<StoredObject> {
        let key = (kind, namespace.to_owned(), name.to_owned());
        let mut shard = self.shard(&key).write();
        let removed = shard.remove(&key);
        if removed.is_some() {
            self.next_revision();
        }
        removed
    }

    /// List objects of a kind in a namespace (all namespaces when `namespace`
    /// is empty). Objects come back in key order, as the unsharded store
    /// returned them.
    pub fn list(&self, kind: ResourceKind, namespace: &str) -> Vec<StoredObject> {
        let mut out: Vec<(Key, StoredObject)> = Vec::new();
        for shard in &self.shards {
            let guard = shard.read();
            out.extend(
                guard
                    .iter()
                    .filter(|((k, ns, _), _)| {
                        *k == kind && (namespace.is_empty() || ns == namespace)
                    })
                    .map(|(key, stored)| (key.clone(), stored.clone())),
            );
        }
        out.sort_by(|(a, _), (b, _)| a.cmp(b));
        out.into_iter().map(|(_, stored)| stored).collect()
    }

    /// Count the stored objects per kind.
    pub fn count_by_kind(&self) -> BTreeMap<ResourceKind, usize> {
        let mut out = BTreeMap::new();
        for shard in &self.shards {
            for ((kind, _, _), _) in shard.read().iter() {
                *out.entry(*kind).or_insert(0) += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn object(kind: ResourceKind, name: &str, namespace: &str) -> K8sObject {
        K8sObject::minimal(kind, name, namespace)
    }

    #[test]
    fn create_then_get_roundtrips() {
        let store = ObjectStore::new();
        let version = store
            .create(object(ResourceKind::Service, "svc", "prod"))
            .unwrap();
        assert_eq!(version, 1);
        let stored = store.get(ResourceKind::Service, "prod", "svc").unwrap();
        assert_eq!(stored.resource_version, 1);
        assert_eq!(stored.object.name(), "svc");
    }

    #[test]
    fn create_conflicts_on_existing_objects() {
        let store = ObjectStore::new();
        assert!(store.create(object(ResourceKind::Pod, "a", "ns")).is_some());
        assert!(store.create(object(ResourceKind::Pod, "a", "ns")).is_none());
        // Same name in a different namespace or kind is fine.
        assert!(store
            .create(object(ResourceKind::Pod, "a", "other"))
            .is_some());
        assert!(store
            .create(object(ResourceKind::ConfigMap, "a", "ns"))
            .is_some());
    }

    #[test]
    fn update_requires_an_existing_object() {
        let store = ObjectStore::new();
        assert!(store.update(object(ResourceKind::Pod, "a", "ns")).is_none());
        store.create(object(ResourceKind::Pod, "a", "ns")).unwrap();
        let v2 = store.update(object(ResourceKind::Pod, "a", "ns")).unwrap();
        assert_eq!(v2, 2);
    }

    #[test]
    fn apply_upserts_and_bumps_revision() {
        let store = ObjectStore::new();
        assert_eq!(store.apply(object(ResourceKind::Secret, "s", "ns")), 1);
        assert_eq!(store.apply(object(ResourceKind::Secret, "s", "ns")), 2);
        assert_eq!(store.len(), 1);
        assert_eq!(store.revision(), 2);
    }

    #[test]
    fn delete_removes_and_reports() {
        let store = ObjectStore::new();
        store.create(object(ResourceKind::Pod, "a", "ns")).unwrap();
        assert!(store.delete(ResourceKind::Pod, "ns", "a").is_some());
        assert!(store.delete(ResourceKind::Pod, "ns", "a").is_none());
        assert!(store.is_empty());
    }

    #[test]
    fn list_filters_by_kind_and_namespace() {
        let store = ObjectStore::new();
        store.create(object(ResourceKind::Pod, "a", "ns1")).unwrap();
        store.create(object(ResourceKind::Pod, "b", "ns1")).unwrap();
        store.create(object(ResourceKind::Pod, "c", "ns2")).unwrap();
        store
            .create(object(ResourceKind::Service, "s", "ns1"))
            .unwrap();
        assert_eq!(store.list(ResourceKind::Pod, "ns1").len(), 2);
        assert_eq!(store.list(ResourceKind::Pod, "").len(), 3);
        assert_eq!(store.list(ResourceKind::Service, "ns1").len(), 1);
        let counts = store.count_by_kind();
        assert_eq!(counts[&ResourceKind::Pod], 3);
    }

    #[test]
    fn list_returns_objects_in_key_order_across_shards() {
        let store = ObjectStore::new();
        // Enough names to land in several different shards.
        for name in ["zeta", "alpha", "mike", "kilo", "echo", "yankee", "bravo"] {
            store.create(object(ResourceKind::Pod, name, "ns")).unwrap();
        }
        let names: Vec<String> = store
            .list(ResourceKind::Pod, "ns")
            .into_iter()
            .map(|stored| stored.object.name().to_owned())
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn concurrent_writers_keep_unique_monotonic_versions() {
        let store = ObjectStore::new();
        let versions: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|t| {
                    let store = &store;
                    scope.spawn(move || {
                        let mut mine = Vec::new();
                        for i in 0..50 {
                            let name = format!("obj-{t}-{i}");
                            mine.push(
                                store
                                    .create(object(ResourceKind::Pod, &name, "ns"))
                                    .unwrap(),
                            );
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(versions.len(), 400);
        assert_eq!(store.len(), 400);
        assert_eq!(store.revision(), 400);
        let mut sorted = versions.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 400, "versions must be globally unique");
    }
}
