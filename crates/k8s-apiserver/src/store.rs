//! The etcd-like versioned object store backing the simulated API server.
//!
//! The store is sharded by key hash: objects are spread over [`SHARDS`]
//! independently locked maps so concurrent writers to different objects do
//! not serialize on one global lock, while the resource-version counter is a
//! single atomic — still globally monotonic, never a lock. Reads take one
//! shard's read lock; whole-store scans (`list`, `count_by_kind`) visit the
//! shards in order.
//!
//! Since the zero-copy refactor the shards hold **`Arc<StoredObject>`
//! handles**: a write moves the admitted object (whose body is already an
//! `Arc<Value>` shared with the request that carried it) behind one `Arc`,
//! and every read — `get`, `list`, `delete` — hands that handle back instead
//! of cloning the document tree. `list` filters and orders purely by key
//! (a range scan from the first matching key) and clones only handles, so a
//! large store pays for the objects it returns, never for the ones it skips.
//! The pre-refactor copy-everything behaviour is preserved verbatim as
//! [`BaselineStore`] for the `server_throughput` measurement baseline.
//!
//! Since the watch-plane refactor every write also **publishes a
//! [`WatchEvent`]** into a bounded per-kind journal (`crate::watch`), keyed
//! by the same global revision counter; [`StoreBackend::events_since`] turns
//! the store into an incremental event source so watchers replay exactly the
//! writes they missed instead of re-listing. Published events share the
//! stored object's `Arc<Value>` — the journal costs handles, not trees. The
//! baseline keeps the journal mechanics but deep-clones every delivered
//! event, the per-subscriber copy the zero-copy plane eliminates.
//!
//! Since the write-path scale-out the journals are **namespace-sharded**
//! (`DEFAULT_JOURNAL_SHARDS` sub-shards per kind, see `crate::watch`), so
//! same-kind writers in different namespaces no longer serialize on one
//! journal lock — and multi-write operations ([`ObjectStore::apply_batch`],
//! [`ObjectStore::delete_collection`]) **stage** their events up front and
//! publish each store shard's batch through one journal critical-section
//! entry per touched sub-shard, amortizing the remaining lock traffic.

use std::collections::BTreeMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::ops::Bound;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use k8s_model::{K8sObject, ResourceKind};
use kf_yaml::Value;

use crate::persist::{DurabilityState, DurabilityStatus, GroupTicket, Wal, WalRecord};
use crate::watch::{
    KindJournals, StagedEvent, WatchDelta, WatchError, WatchEventKind, WatchSubscriber,
    DEFAULT_JOURNAL_CAPACITY, DEFAULT_JOURNAL_SHARDS,
};

/// A stored object together with its resource version.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredObject {
    /// The object as last written.
    pub object: K8sObject,
    /// Monotonic resource version assigned at the last write.
    pub resource_version: u64,
}

/// Key identifying an object: kind + namespace + name.
type Key = (ResourceKind, String, String);

/// Number of hash shards. A small power of two: enough to spread the five
/// operator workloads' writes, cheap to scan for list operations. Also the
/// granularity of incremental checkpoints (one snapshot segment per shard)
/// and of parallel recovery replay — `pub(crate)` so the persistence plane
/// partitions by the same geometry.
pub(crate) const SHARDS: usize = 16;

/// The persistence plane behind [`crate::ApiServer`]: how request bodies
/// become stored objects and how stored objects come back out. The two
/// implementations differ **only** in copy discipline:
///
/// * [`ObjectStore`] — zero-copy: [`StoreBackend::ingest`] wraps the
///   request's shared tree, reads return `Arc` handles;
/// * [`BaselineStore`] — the pre-refactor behaviour: ingest deep-clones the
///   request tree, every read deep-clones the stored tree.
///
/// Keeping the contract in a trait lets the `server_throughput` benchmark
/// (and differential tests) drive the *identical* server logic over both,
/// so the measured delta is the copies and nothing else.
pub trait StoreBackend: Send + Sync {
    /// Interpret an admitted request body as a [`K8sObject`] ready to
    /// persist. The zero-copy plane takes a handle to the caller's tree;
    /// the baseline deep-clones it (the old
    /// `K8sObject::from_value((**body).clone())` admission cost).
    ///
    /// # Errors
    ///
    /// Exactly those of [`K8sObject::from_value`].
    fn ingest(&self, body: &Arc<Value>) -> k8s_model::Result<K8sObject>;

    /// Create an object. Returns the assigned resource version, or `None` if
    /// an object with the same kind/namespace/name already exists.
    fn create(&self, object: K8sObject) -> Option<u64>;

    /// Update an existing object. Returns the new resource version, or
    /// `None` if the object does not exist.
    fn update(&self, object: K8sObject) -> Option<u64>;

    /// Create the object if absent, update it otherwise, reporting whether
    /// it was created (`true`) or replaced (`false`).
    fn upsert(&self, object: K8sObject) -> (u64, bool);

    /// Fetch an object by kind, namespace and name.
    fn get(&self, kind: ResourceKind, namespace: &str, name: &str) -> Option<Arc<StoredObject>>;

    /// Delete an object; returns it if it existed.
    fn delete(&self, kind: ResourceKind, namespace: &str, name: &str) -> Option<Arc<StoredObject>>;

    /// List objects of a kind in a namespace (all namespaces when
    /// `namespace` is empty), in key order.
    fn list(&self, kind: ResourceKind, namespace: &str) -> Vec<Arc<StoredObject>>;

    /// Delete every object of a kind in a namespace (all namespaces when
    /// `namespace` is empty), returning how many were removed. Every object
    /// gets its own revision bump and `Deleted` watch event; the default
    /// implementation routes each removal through [`StoreBackend::delete`],
    /// while [`ObjectStore`] overrides it with a batched-publication path
    /// (one journal critical-section entry per touched sub-shard).
    fn delete_collection(&self, kind: ResourceKind, namespace: &str) -> usize {
        let mut deleted = 0;
        for stored in self.list(kind, namespace) {
            if self
                .delete(kind, stored.object.namespace(), stored.object.name())
                .is_some()
            {
                deleted += 1;
            }
        }
        deleted
    }

    /// Upsert a batch of objects, returning `(resource_version, created)`
    /// per object aligned to the input order — the bulk-load path workload
    /// seeding and replay use. Semantically identical to calling
    /// [`StoreBackend::upsert`] per object (which is the default
    /// implementation, and what [`BaselineStore`] does); [`ObjectStore`]
    /// overrides it to stage every event up front and publish per store
    /// shard through one journal critical-section entry per touched
    /// sub-shard.
    fn apply_batch(&self, objects: Vec<K8sObject>) -> Vec<(u64, bool)> {
        objects.into_iter().map(|o| self.upsert(o)).collect()
    }

    /// Every watch event of `kind` with revision strictly greater than
    /// `revision`, restricted to `namespace` when non-empty, in revision
    /// order — plus the journal-head resume cursor ([`WatchDelta`]), so
    /// quiet-namespace watchers advance past foreign churn. The zero-copy
    /// plane hands out the journal's own object handles; the baseline
    /// deep-clones each tree per call (the old per-subscriber copy
    /// discipline).
    ///
    /// # Errors
    ///
    /// [`WatchError::Gone`] when the cursor predates the journal's
    /// compaction horizon — the caller must re-list and resume from a fresh
    /// cursor.
    fn events_since(
        &self,
        kind: ResourceKind,
        namespace: &str,
        revision: u64,
    ) -> Result<WatchDelta, WatchError>;

    /// The highest revision published to `kind`'s watch journal (0 when the
    /// kind has never been written). Safe as an initial-list watch cursor:
    /// the effects of every revision `<=` this value are visible to a list
    /// that starts after reading it.
    fn watch_revision(&self, kind: ResourceKind) -> u64;

    /// Attach a push subscription for `kind` (scoped to `namespace` when
    /// non-empty) resuming after `revision`, with a delivery queue bounded
    /// to `capacity` live events (see
    /// [`crate::DEFAULT_SUBSCRIBER_QUEUE_CAPACITY`]). Events published after
    /// the cursor are fanned into the returned [`WatchSubscriber`]'s queue
    /// inside the publication critical section; the zero-copy plane shares
    /// the stored trees, the baseline deep-clones per subscriber per event.
    ///
    /// # Errors
    ///
    /// [`WatchError::Gone`] when the cursor predates the compaction horizon
    /// of a needed journal sub-shard — re-list and subscribe from the fresh
    /// cursor.
    fn subscribe(
        &self,
        kind: ResourceKind,
        namespace: &str,
        revision: u64,
        capacity: usize,
    ) -> Result<WatchSubscriber, WatchError>;

    /// The wake-signal generation for `(kind, namespace)` watchers. Read it
    /// **before** polling [`StoreBackend::events_since`]; passing the value
    /// to [`StoreBackend::wait_for_watch`] then cannot miss a publication
    /// that raced the poll.
    fn watch_generation(&self, kind: ResourceKind, namespace: &str) -> u64;

    /// Block until the `(kind, namespace)` wake-signal generation moves past
    /// `seen` (some event may be visible) or `timeout` elapses, returning
    /// the generation observed on exit. Spurious wakeups are allowed; lost
    /// wakeups are not.
    fn wait_for_watch(
        &self,
        kind: ResourceKind,
        namespace: &str,
        seen: u64,
        timeout: std::time::Duration,
    ) -> u64;

    /// The current global revision (number of writes so far).
    fn revision(&self) -> u64;

    /// Number of stored objects.
    fn len(&self) -> usize;

    /// Whether the store is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Count the stored objects per kind.
    fn count_by_kind(&self) -> BTreeMap<ResourceKind, usize>;

    /// Every stored object, in key order — the scan the persistence plane
    /// snapshots (`crate::persist::Persistence::checkpoint`). The default
    /// walks [`StoreBackend::list`] per kind, which already pays only for
    /// handles on the zero-copy store.
    fn snapshot_objects(&self) -> Vec<Arc<StoredObject>> {
        let mut out = Vec::new();
        for kind in ResourceKind::ALL {
            out.extend(self.list(kind, ""));
        }
        out
    }

    /// Bulk-load recovered state: insert every object at its **recorded**
    /// resource version (no re-admission, no new revisions, no watch
    /// events), advance the revision counter to at least `revision`, and
    /// seal the watch journals' compaction horizon there — a watcher
    /// resuming with a pre-crash cursor below the horizon gets the standard
    /// `410 Gone` → re-list recovery, while a cursor at the horizon streams
    /// the writes that follow. This is the boot half of the WAL contract;
    /// see `crate::persist`.
    fn restore(&self, objects: Vec<StoredObject>, revision: u64);

    /// A point-in-time durability summary of the attached persistence
    /// plane. The default — what [`BaselineStore`] and any WAL-less store
    /// report — is a pure in-memory store: trivially `Healthy`, nothing
    /// durable, nothing at risk.
    fn durability(&self) -> DurabilityStatus {
        DurabilityStatus::in_memory()
    }

    /// The durability state machine's current state, cheap enough for a
    /// per-request policy check ([`ObjectStore`] answers from a lock-free
    /// atomic mirror). `Healthy` when no WAL is attached.
    fn durability_state(&self) -> DurabilityState {
        DurabilityState::Healthy
    }

    /// How many store shards the most recent checkpoint claimed as dirty
    /// (0 for backends without incremental-checkpoint tracking) — the
    /// health surface's view of how incremental checkpoints actually are.
    fn checkpoint_dirty_shards(&self) -> usize {
        0
    }
}

fn key_of(object: &K8sObject) -> Key {
    (
        object.kind(),
        object.namespace().to_owned(),
        object.name().to_owned(),
    )
}

/// The shard an object lives in, from its key parts. `pub(crate)` because
/// recovery replay partitions snapshot objects and WAL records by the same
/// function — a `String` and a `&str` hash identically, so the two callers
/// cannot disagree.
pub(crate) fn shard_index_raw(kind_index: usize, namespace: &str, name: &str) -> usize {
    let mut hasher = DefaultHasher::new();
    kind_index.hash(&mut hasher);
    namespace.hash(&mut hasher);
    name.hash(&mut hasher);
    (hasher.finish() as usize) % SHARDS
}

fn shard_index(key: &Key) -> usize {
    shard_index_raw(key.0.index(), &key.1, &key.2)
}

/// The first key a `list(kind, namespace)` scan can match; used as the lower
/// range bound so the scan never visits earlier keys at all.
fn list_lower_bound(kind: ResourceKind, namespace: &str) -> Key {
    (kind, namespace.to_owned(), String::new())
}

/// Whether a key still belongs to a `list(kind, namespace)` scan (keys are
/// ordered, so the first mismatch ends the scan).
fn list_key_matches(key: &Key, kind: ResourceKind, namespace: &str) -> bool {
    key.0 == kind && (namespace.is_empty() || key.1 == namespace)
}

/// An in-memory, versioned object store with etcd-like semantics: every write
/// bumps a global revision, `create` fails on existing keys, `update` and
/// `delete` fail on missing keys. Reads return shared handles — see the
/// module docs for the copy discipline.
#[derive(Debug)]
pub struct ObjectStore {
    shards: Vec<RwLock<BTreeMap<Key, Arc<StoredObject>>>>,
    /// Global revision counter (number of writes so far). A revision is
    /// allocated inside [`KindJournals::publish`] — under the written kind's
    /// journal lock, while the affected shard's write lock is held — so
    /// versions of one object are strictly increasing, globally unique, and
    /// published to the watch journal in allocation order.
    revision: AtomicU64,
    /// Per-kind bounded watch journals; every write publishes one event.
    journals: KindJournals,
    /// The write-ahead log, when the store is durable: every write path
    /// appends its record(s) **while holding the written object's shard
    /// write lock**, so the on-disk per-key order matches the in-memory
    /// one. `None` (the default) keeps the store purely in-memory.
    wal: Option<Arc<Wal>>,
    /// Per-shard dirty flags for incremental checkpoints: a write path sets
    /// its shard's flag **after taking the shard write lock and before
    /// allocating the revision**, and the checkpoint reads its horizon
    /// before swapping the flags — so any write at or below the horizon is
    /// guaranteed to have its flag observed by the swap (the alloc
    /// continues the counter's release sequence; see
    /// `KindJournals::push_locked`), and any write above it stays in the
    /// WAL past compaction. All flags start `true`: the first checkpoint of
    /// any store (fresh or restored) is a full one, whatever the on-disk
    /// manifest state.
    dirty: Vec<AtomicBool>,
    /// How many shards the most recent checkpoint claimed (the
    /// `checkpoint_dirty_shards` health counter).
    last_checkpoint_dirty: AtomicUsize,
}

impl Default for ObjectStore {
    fn default() -> Self {
        ObjectStore::with_journal_capacity(DEFAULT_JOURNAL_CAPACITY)
    }
}

impl ObjectStore {
    /// An empty store.
    pub fn new() -> Self {
        ObjectStore::default()
    }

    /// An empty store whose watch journals retain at most `capacity` events
    /// per namespace sub-shard (tests use tiny capacities to exercise
    /// compaction; the default is [`DEFAULT_JOURNAL_CAPACITY`]), with the
    /// default sub-shard count.
    pub fn with_journal_capacity(capacity: usize) -> Self {
        ObjectStore::with_journal_config(capacity, DEFAULT_JOURNAL_SHARDS)
    }

    /// An empty store with full journal control: `capacity` events retained
    /// per sub-shard, `shard_count` namespace sub-shards per kind (tests
    /// use small counts to force or avoid sub-shard collisions).
    ///
    /// Degenerate configs are clamped rather than honored: `capacity == 0`
    /// (a journal that can hold nothing) falls back to
    /// [`DEFAULT_JOURNAL_CAPACITY`] and `shard_count == 0` (no sub-shard to
    /// hash into) to [`DEFAULT_JOURNAL_SHARDS`], so a bad knob — e.g.
    /// `KF_JOURNAL_SHARDS=0` in a bench environment — degrades to the
    /// defaults instead of panicking deep inside journal construction.
    pub fn with_journal_config(capacity: usize, shard_count: usize) -> Self {
        let capacity = if capacity == 0 {
            DEFAULT_JOURNAL_CAPACITY
        } else {
            capacity
        };
        let shard_count = if shard_count == 0 {
            DEFAULT_JOURNAL_SHARDS
        } else {
            shard_count
        };
        ObjectStore {
            shards: (0..SHARDS).map(|_| RwLock::new(BTreeMap::new())).collect(),
            revision: AtomicU64::new(0),
            journals: KindJournals::new(capacity, shard_count),
            wal: None,
            dirty: (0..SHARDS).map(|_| AtomicBool::new(true)).collect(),
            last_checkpoint_dirty: AtomicUsize::new(0),
        }
    }

    /// Attach a write-ahead log: every subsequent write appends its record
    /// before the shard lock drops. Called once at construction time by the
    /// recovery path (`crate::persist::Persistence::open`) — the store is
    /// not yet shared, hence `&mut`.
    pub fn attach_wal(&mut self, wal: Arc<Wal>) {
        self.wal = Some(wal);
    }

    /// The attached write-ahead log, if the store is durable.
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.wal.as_ref()
    }

    /// Append one write's WAL record (no-op for in-memory stores). Must be
    /// called while the written object's shard write lock is held — the
    /// same contract as [`ObjectStore::publish`] — so per-key log order
    /// matches map order.
    fn log_write(&self, key: &Key, op: WatchEventKind, revision: u64, body: Option<&Arc<Value>>) {
        if let Some(wal) = &self.wal {
            wal.append(&[WalRecord {
                revision,
                kind: key.0,
                op,
                namespace: key.1.clone(),
                name: key.2.clone(),
                body: body.map(Arc::clone),
            }]);
        }
    }

    fn shard(&self, key: &Key) -> &RwLock<BTreeMap<Key, Arc<StoredObject>>> {
        &self.shards[shard_index(key)]
    }

    /// Flag a shard as touched since the last checkpoint. Must be called
    /// while holding the shard's write lock and **before** allocating the
    /// write's revision — that ordering (plus the horizon-before-swap read
    /// on the checkpoint side) is what makes an incremental checkpoint
    /// never miss a write at or below its horizon. See the `dirty` field.
    fn mark_dirty(&self, shard_no: usize) {
        self.dirty[shard_no].store(true, Ordering::Release);
    }

    /// The current global revision (number of writes so far).
    pub fn revision(&self) -> u64 {
        self.revision.load(Ordering::Relaxed)
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|shard| shard.read().len()).sum()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|shard| shard.read().is_empty())
    }

    /// Create an object. Returns the assigned resource version, or `None` if
    /// an object with the same kind/namespace/name already exists. The
    /// object is **moved** behind the stored handle — its body keeps sharing
    /// whatever tree admission handed in.
    pub fn create(&self, object: K8sObject) -> Option<u64> {
        let key = key_of(&object);
        let shard_no = shard_index(&key);
        let mut shard = self.shards[shard_no].write();
        if shard.contains_key(&key) {
            return None;
        }
        self.mark_dirty(shard_no);
        let version = self.publish(&key, WatchEventKind::Added, object.shared_body());
        self.log_write(
            &key,
            WatchEventKind::Added,
            version,
            Some(object.shared_body()),
        );
        shard.insert(
            key,
            Arc::new(StoredObject {
                object,
                resource_version: version,
            }),
        );
        Some(version)
    }

    /// Update an existing object. Returns the new resource version, or `None`
    /// if the object does not exist.
    pub fn update(&self, object: K8sObject) -> Option<u64> {
        let key = key_of(&object);
        let shard_no = shard_index(&key);
        let mut shard = self.shards[shard_no].write();
        if !shard.contains_key(&key) {
            return None;
        }
        self.mark_dirty(shard_no);
        let version = self.publish(&key, WatchEventKind::Modified, object.shared_body());
        self.log_write(
            &key,
            WatchEventKind::Modified,
            version,
            Some(object.shared_body()),
        );
        shard.insert(
            key,
            Arc::new(StoredObject {
                object,
                resource_version: version,
            }),
        );
        Some(version)
    }

    /// Publish a watch event for a write to `key`, allocating its revision.
    /// Must be called while holding `key`'s shard write lock, and the map
    /// mutation must complete before that lock is released — this is what
    /// lets an initial-list scan pair a journal cursor with a consistent
    /// view of the store (see `docs/watch-plane.md`).
    fn publish(&self, key: &Key, event: WatchEventKind, body: &Arc<Value>) -> u64 {
        self.journals.publish(
            &self.revision,
            StagedEvent::new(key.0, event, &key.1, &key.2, body),
        )
    }

    /// Create the object if absent, update it otherwise (the `kubectl apply`
    /// behaviour). Returns the new resource version.
    pub fn apply(&self, object: K8sObject) -> u64 {
        self.upsert(object).0
    }

    /// [`ObjectStore::apply`], additionally reporting whether the object was
    /// created (`true`) or replaced (`false`) — one shard lock, no
    /// re-admission round trip for the create-on-conflict path.
    pub fn upsert(&self, object: K8sObject) -> (u64, bool) {
        let key = key_of(&object);
        let shard_no = shard_index(&key);
        let mut shard = self.shards[shard_no].write();
        let event = if shard.contains_key(&key) {
            WatchEventKind::Modified
        } else {
            WatchEventKind::Added
        };
        self.mark_dirty(shard_no);
        let version = self.publish(&key, event, object.shared_body());
        self.log_write(&key, event, version, Some(object.shared_body()));
        let replaced = shard.insert(
            key,
            Arc::new(StoredObject {
                object,
                resource_version: version,
            }),
        );
        (version, replaced.is_none())
    }

    /// Upsert a batch of objects with **batched journal publication**: the
    /// batch is grouped by store shard; per shard, every event envelope is
    /// staged while classifying Added vs Modified (in-batch earlier writes
    /// to the same key count as existing), then published through one
    /// journal critical-section entry per touched sub-shard — all while the
    /// store shard's write lock is held, so the `ObjectStore::publish`
    /// ordering contract carries over unchanged. Returns
    /// `(resource_version, created)` aligned to the input order.
    pub fn apply_batch(&self, objects: Vec<K8sObject>) -> Vec<(u64, bool)> {
        let mut results = vec![(0u64, false); objects.len()];
        let mut groups: Vec<Vec<(usize, K8sObject)>> = Vec::new();
        groups.resize_with(SHARDS, Vec::new);
        for (index, object) in objects.into_iter().enumerate() {
            groups[shard_index(&key_of(&object))].push((index, object));
        }
        let mut ticket = None;
        for (shard_no, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let mut shard = self.shards[shard_no].write();
            let mut staged = Vec::with_capacity(group.len());
            let mut pending: Vec<(usize, K8sObject, Key, bool)> = Vec::with_capacity(group.len());
            for (index, object) in group {
                let key = key_of(&object);
                let exists =
                    shard.contains_key(&key) || pending.iter().any(|(_, _, seen, _)| *seen == key);
                let event = if exists {
                    WatchEventKind::Modified
                } else {
                    WatchEventKind::Added
                };
                staged.push(StagedEvent::new(
                    key.0,
                    event,
                    &key.1,
                    &key.2,
                    object.shared_body(),
                ));
                pending.push((index, object, key, !exists));
            }
            // Same-key events share a sub-shard, so their revisions are
            // assigned in batch order: the last write wins in the map AND
            // carries the highest version.
            self.mark_dirty(shard_no);
            let revisions = self.journals.publish_batch(&self.revision, staged);
            let mut logged = self
                .wal
                .as_ref()
                .map(|_| Vec::with_capacity(revisions.len()));
            for ((index, object, key, created), version) in pending.into_iter().zip(revisions) {
                results[index] = (version, created);
                if let Some(records) = &mut logged {
                    records.push(WalRecord {
                        revision: version,
                        kind: key.0,
                        op: if created {
                            WatchEventKind::Added
                        } else {
                            WatchEventKind::Modified
                        },
                        namespace: key.1.clone(),
                        name: key.2.clone(),
                        body: Some(Arc::clone(object.shared_body())),
                    });
                }
                shard.insert(
                    key,
                    Arc::new(StoredObject {
                        object,
                        resource_version: version,
                    }),
                );
            }
            // One framed append for the whole shard group, still under the
            // shard write lock — the batch twin of `log_write`. Under
            // group commit the durability wait is deferred: frames land
            // here, the rendezvous runs once after every lock is released.
            if let (Some(wal), Some(records)) = (&self.wal, logged) {
                ticket = GroupTicket::merge(ticket, wal.append_deferred(&records));
            }
        }
        if let (Some(wal), Some(ticket)) = (&self.wal, ticket) {
            wal.group_commit(ticket);
        }
        results
    }

    /// Delete every object of a kind in a namespace (all namespaces when
    /// `namespace` is empty) with batched journal publication: per store
    /// shard, the matching keys are range-scanned and removed, their
    /// `Deleted` events staged (each carrying the object's last stored
    /// tree), and the whole shard's batch published through one journal
    /// critical-section entry per touched sub-shard — before the store
    /// shard's write lock is released, so a racing re-create of the same
    /// name is guaranteed a later revision than the deletion it follows.
    pub fn delete_collection(&self, kind: ResourceKind, namespace: &str) -> usize {
        let lower = list_lower_bound(kind, namespace);
        let mut deleted = 0;
        let mut ticket = None;
        for (shard_no, shard) in self.shards.iter().enumerate() {
            let mut guard = shard.write();
            let keys: Vec<Key> = guard
                .range((Bound::Included(&lower), Bound::Unbounded))
                .take_while(|(key, _)| list_key_matches(key, kind, namespace))
                .map(|(key, _)| key.clone())
                .collect();
            if keys.is_empty() {
                continue;
            }
            let mut staged = Vec::with_capacity(keys.len());
            for key in &keys {
                let stored = guard.remove(key).expect("scanned under this write lock");
                staged.push(StagedEvent::new(
                    key.0,
                    WatchEventKind::Deleted,
                    &key.1,
                    &key.2,
                    stored.object.shared_body(),
                ));
            }
            deleted += staged.len();
            self.mark_dirty(shard_no);
            let revisions = self.journals.publish_batch(&self.revision, staged);
            if let Some(wal) = &self.wal {
                // Deletions log key + revision only; replay removes by key.
                let records: Vec<WalRecord> = keys
                    .into_iter()
                    .zip(revisions)
                    .map(|(key, revision)| WalRecord {
                        revision,
                        kind: key.0,
                        op: WatchEventKind::Deleted,
                        namespace: key.1,
                        name: key.2,
                        body: None,
                    })
                    .collect();
                ticket = GroupTicket::merge(ticket, wal.append_deferred(&records));
            }
        }
        if let (Some(wal), Some(ticket)) = (&self.wal, ticket) {
            wal.group_commit(ticket);
        }
        deleted
    }

    /// Fetch an object by kind, namespace and name. Returns a shared handle
    /// — no part of the document tree is copied.
    pub fn get(
        &self,
        kind: ResourceKind,
        namespace: &str,
        name: &str,
    ) -> Option<Arc<StoredObject>> {
        let key = (kind, namespace.to_owned(), name.to_owned());
        self.shard(&key).read().get(&key).map(Arc::clone)
    }

    /// Delete an object; returns its handle if it existed. The published
    /// `Deleted` event carries the object's last stored tree.
    pub fn delete(
        &self,
        kind: ResourceKind,
        namespace: &str,
        name: &str,
    ) -> Option<Arc<StoredObject>> {
        let key = (kind, namespace.to_owned(), name.to_owned());
        let shard_no = shard_index(&key);
        let mut shard = self.shards[shard_no].write();
        let removed = shard.remove(&key);
        if let Some(stored) = &removed {
            self.mark_dirty(shard_no);
            let version = self.publish(&key, WatchEventKind::Deleted, stored.object.shared_body());
            self.log_write(&key, WatchEventKind::Deleted, version, None);
        }
        removed
    }

    /// Every watch event after `revision` — see
    /// [`StoreBackend::events_since`]. Zero-copy: events hand out the
    /// journal's own `Arc` handles, which are the stored trees themselves.
    ///
    /// # Errors
    ///
    /// [`WatchError::Gone`] for cursors older than the compaction horizon.
    pub fn events_since(
        &self,
        kind: ResourceKind,
        namespace: &str,
        revision: u64,
    ) -> Result<WatchDelta, WatchError> {
        self.journals
            .events_since(&self.revision, kind, namespace, revision, false)
    }

    /// The highest revision published to `kind`'s watch journal — see
    /// [`StoreBackend::watch_revision`].
    pub fn watch_revision(&self, kind: ResourceKind) -> u64 {
        self.journals.watch_revision(kind)
    }

    /// Attach a push subscription — see [`StoreBackend::subscribe`].
    /// Zero-copy: fanned-out events share the stored trees.
    ///
    /// # Errors
    ///
    /// [`WatchError::Gone`] for cursors older than the compaction horizon.
    pub fn subscribe(
        &self,
        kind: ResourceKind,
        namespace: &str,
        revision: u64,
        capacity: usize,
    ) -> Result<WatchSubscriber, WatchError> {
        self.journals
            .subscribe(kind, namespace, revision, capacity, false)
    }

    /// List objects of a kind in a namespace (all namespaces when `namespace`
    /// is empty). Objects come back in key order, as the unsharded store
    /// returned them. Each shard is **range-scanned from the first matching
    /// key** and the scan decides membership on keys alone, cloning handles
    /// for the matches — values of skipped entries are never touched, and no
    /// tree is copied for the returned ones either.
    pub fn list(&self, kind: ResourceKind, namespace: &str) -> Vec<Arc<StoredObject>> {
        let lower = list_lower_bound(kind, namespace);
        let mut out: Vec<Arc<StoredObject>> = Vec::new();
        for shard in &self.shards {
            let guard = shard.read();
            out.extend(
                guard
                    .range((Bound::Included(&lower), Bound::Unbounded))
                    .take_while(|(key, _)| list_key_matches(key, kind, namespace))
                    .map(|(_, stored)| Arc::clone(stored)),
            );
        }
        // Key order across shards; the key is derivable from the object, so
        // nothing beyond the handles collected above is allocated.
        out.sort_by(|a, b| {
            (a.object.kind(), a.object.namespace(), a.object.name()).cmp(&(
                b.object.kind(),
                b.object.namespace(),
                b.object.name(),
            ))
        });
        out
    }

    /// Count the stored objects per kind.
    pub fn count_by_kind(&self) -> BTreeMap<ResourceKind, usize> {
        let mut out = BTreeMap::new();
        for shard in &self.shards {
            for ((kind, _, _), _) in shard.read().iter() {
                *out.entry(*kind).or_insert(0) += 1;
            }
        }
        out
    }

    /// Bulk-load recovered state — see [`StoreBackend::restore`]. Inserts
    /// bypass the journal and the WAL (replay must not re-log itself); the
    /// revision counter and the journals' compaction horizon are advanced
    /// to the recovered revision.
    pub fn restore(&self, objects: Vec<StoredObject>, revision: u64) {
        let mut floor = revision;
        for stored in objects {
            floor = floor.max(stored.resource_version);
            let key = key_of(&stored.object);
            self.shards[shard_index(&key)]
                .write()
                .insert(key, Arc::new(stored));
        }
        self.revision.fetch_max(floor, Ordering::Relaxed);
        self.journals.restore_horizon(floor);
        // Boot-conservative: the first checkpoint after a restore rewrites
        // every shard, so its correctness never depends on what segments
        // the on-disk manifest happened to list.
        for shard_no in 0..SHARDS {
            self.mark_dirty(shard_no);
        }
    }

    /// Claim the dirty shards for a checkpoint: atomically swap every flag
    /// to clean and return the indexes that were dirty (also recorded as
    /// the `checkpoint_dirty_shards` health counter). The caller **must**
    /// have read its checkpoint horizon *before* calling this — that
    /// read-then-swap order is half of the no-lost-writes argument (the
    /// flag is set under the shard lock *before* the revision allocates,
    /// so a revision covered by the horizon is always either clean or
    /// claimed); the other half is
    /// [`ObjectStore::remark_dirty`] on any failure, so an aborted
    /// checkpoint never launders a shard clean.
    pub fn take_dirty_shards(&self) -> Vec<usize> {
        let claimed: Vec<usize> = (0..SHARDS)
            .filter(|&shard_no| self.dirty[shard_no].swap(false, Ordering::AcqRel))
            .collect();
        self.last_checkpoint_dirty
            .store(claimed.len(), Ordering::Relaxed);
        claimed
    }

    /// Return claimed shards to the dirty set after a failed checkpoint
    /// attempt (their segments were not durably rewritten).
    pub fn remark_dirty(&self, shards: &[usize]) {
        for &shard_no in shards {
            self.mark_dirty(shard_no);
        }
    }

    /// Every stored object of one shard, in key order — what an
    /// incremental checkpoint writes into that shard's segment file.
    pub fn snapshot_shard(&self, shard_no: usize) -> Vec<Arc<StoredObject>> {
        self.shards[shard_no]
            .read()
            .values()
            .map(Arc::clone)
            .collect()
    }

    /// How many shards are currently flagged dirty (monitoring only; the
    /// checkpoint path uses [`ObjectStore::take_dirty_shards`]).
    pub fn dirty_shard_count(&self) -> usize {
        (0..SHARDS)
            .filter(|&shard_no| self.dirty[shard_no].load(Ordering::Relaxed))
            .count()
    }
}

impl StoreBackend for ObjectStore {
    fn ingest(&self, body: &Arc<Value>) -> k8s_model::Result<K8sObject> {
        // Zero-copy: the stored object holds the request's parsed tree.
        K8sObject::from_shared(Arc::clone(body))
    }

    fn create(&self, object: K8sObject) -> Option<u64> {
        ObjectStore::create(self, object)
    }

    fn update(&self, object: K8sObject) -> Option<u64> {
        ObjectStore::update(self, object)
    }

    fn upsert(&self, object: K8sObject) -> (u64, bool) {
        ObjectStore::upsert(self, object)
    }

    fn get(&self, kind: ResourceKind, namespace: &str, name: &str) -> Option<Arc<StoredObject>> {
        ObjectStore::get(self, kind, namespace, name)
    }

    fn delete(&self, kind: ResourceKind, namespace: &str, name: &str) -> Option<Arc<StoredObject>> {
        ObjectStore::delete(self, kind, namespace, name)
    }

    fn list(&self, kind: ResourceKind, namespace: &str) -> Vec<Arc<StoredObject>> {
        ObjectStore::list(self, kind, namespace)
    }

    fn delete_collection(&self, kind: ResourceKind, namespace: &str) -> usize {
        ObjectStore::delete_collection(self, kind, namespace)
    }

    fn apply_batch(&self, objects: Vec<K8sObject>) -> Vec<(u64, bool)> {
        ObjectStore::apply_batch(self, objects)
    }

    fn events_since(
        &self,
        kind: ResourceKind,
        namespace: &str,
        revision: u64,
    ) -> Result<WatchDelta, WatchError> {
        ObjectStore::events_since(self, kind, namespace, revision)
    }

    fn watch_revision(&self, kind: ResourceKind) -> u64 {
        ObjectStore::watch_revision(self, kind)
    }

    fn subscribe(
        &self,
        kind: ResourceKind,
        namespace: &str,
        revision: u64,
        capacity: usize,
    ) -> Result<WatchSubscriber, WatchError> {
        ObjectStore::subscribe(self, kind, namespace, revision, capacity)
    }

    fn watch_generation(&self, kind: ResourceKind, namespace: &str) -> u64 {
        self.journals.signal_of(kind, namespace).generation()
    }

    fn wait_for_watch(
        &self,
        kind: ResourceKind,
        namespace: &str,
        seen: u64,
        timeout: std::time::Duration,
    ) -> u64 {
        self.journals
            .signal_of(kind, namespace)
            .wait_past(seen, timeout)
    }

    fn revision(&self) -> u64 {
        ObjectStore::revision(self)
    }

    fn len(&self) -> usize {
        ObjectStore::len(self)
    }

    fn count_by_kind(&self) -> BTreeMap<ResourceKind, usize> {
        ObjectStore::count_by_kind(self)
    }

    fn restore(&self, objects: Vec<StoredObject>, revision: u64) {
        ObjectStore::restore(self, objects, revision)
    }

    fn durability(&self) -> DurabilityStatus {
        match &self.wal {
            Some(wal) => wal.status(),
            None => DurabilityStatus::in_memory(),
        }
    }

    fn durability_state(&self) -> DurabilityState {
        match &self.wal {
            Some(wal) => wal.state(),
            None => DurabilityState::Healthy,
        }
    }

    fn checkpoint_dirty_shards(&self) -> usize {
        self.last_checkpoint_dirty.load(Ordering::Relaxed)
    }
}

/// The pre-zero-copy persistence plane, kept as the measurement baseline:
/// identical sharding and locking, but **every boundary copies the tree** —
/// ingest deep-clones the request body (the old
/// `K8sObject::from_value((**body).clone())`), and `get`/`list`/`delete`
/// deep-clone the stored object on the way out (the old
/// `shard.get(&key).cloned()` / whole-snapshot `list`). The
/// `server_throughput` benchmark runs the same [`crate::ApiServer`] logic
/// over this store to measure what the `Arc`-handle plane saves; the handles
/// it returns wrap freshly copied trees, never the stored ones.
#[derive(Debug)]
pub struct BaselineStore {
    shards: Vec<RwLock<BTreeMap<Key, StoredObject>>>,
    revision: AtomicU64,
    /// Same journal mechanics as the zero-copy store — the baseline differs
    /// only in delivery: [`BaselineStore::events_since`] deep-clones every
    /// event's tree per call (per-subscriber copies).
    journals: KindJournals,
}

impl Default for BaselineStore {
    fn default() -> Self {
        BaselineStore::new()
    }
}

impl BaselineStore {
    /// An empty baseline store.
    pub fn new() -> Self {
        BaselineStore {
            shards: (0..SHARDS).map(|_| RwLock::new(BTreeMap::new())).collect(),
            revision: AtomicU64::new(0),
            journals: KindJournals::new(DEFAULT_JOURNAL_CAPACITY, DEFAULT_JOURNAL_SHARDS),
        }
    }

    fn shard(&self, key: &Key) -> &RwLock<BTreeMap<Key, StoredObject>> {
        &self.shards[shard_index(key)]
    }

    fn publish(&self, key: &Key, event: WatchEventKind, body: &Arc<Value>) -> u64 {
        self.journals.publish(
            &self.revision,
            StagedEvent::new(key.0, event, &key.1, &key.2, body),
        )
    }

    /// Deep-clone a stored object out of the store, exactly as the
    /// pre-refactor read path did.
    fn copy_out(stored: &StoredObject) -> Arc<StoredObject> {
        Arc::new(StoredObject {
            object: stored.object.deep_clone(),
            resource_version: stored.resource_version,
        })
    }
}

impl StoreBackend for BaselineStore {
    fn ingest(&self, body: &Arc<Value>) -> k8s_model::Result<K8sObject> {
        // The old admission cost: one full deep copy of the document tree
        // per accepted mutating request.
        K8sObject::from_value((**body).clone())
    }

    fn create(&self, object: K8sObject) -> Option<u64> {
        let key = key_of(&object);
        let mut shard = self.shard(&key).write();
        if shard.contains_key(&key) {
            return None;
        }
        let version = self.publish(&key, WatchEventKind::Added, object.shared_body());
        shard.insert(
            key,
            StoredObject {
                object,
                resource_version: version,
            },
        );
        Some(version)
    }

    fn update(&self, object: K8sObject) -> Option<u64> {
        let key = key_of(&object);
        let mut shard = self.shard(&key).write();
        if !shard.contains_key(&key) {
            return None;
        }
        let version = self.publish(&key, WatchEventKind::Modified, object.shared_body());
        shard.insert(
            key,
            StoredObject {
                object,
                resource_version: version,
            },
        );
        Some(version)
    }

    fn upsert(&self, object: K8sObject) -> (u64, bool) {
        let key = key_of(&object);
        let mut shard = self.shard(&key).write();
        let event = if shard.contains_key(&key) {
            WatchEventKind::Modified
        } else {
            WatchEventKind::Added
        };
        let version = self.publish(&key, event, object.shared_body());
        let replaced = shard.insert(
            key,
            StoredObject {
                object,
                resource_version: version,
            },
        );
        (version, replaced.is_none())
    }

    fn get(&self, kind: ResourceKind, namespace: &str, name: &str) -> Option<Arc<StoredObject>> {
        let key = (kind, namespace.to_owned(), name.to_owned());
        self.shard(&key).read().get(&key).map(Self::copy_out)
    }

    fn delete(&self, kind: ResourceKind, namespace: &str, name: &str) -> Option<Arc<StoredObject>> {
        let key = (kind, namespace.to_owned(), name.to_owned());
        let mut shard = self.shard(&key).write();
        let removed = shard.remove(&key);
        if let Some(stored) = &removed {
            self.publish(&key, WatchEventKind::Deleted, stored.object.shared_body());
        }
        removed.map(|stored| Self::copy_out(&stored))
    }

    fn events_since(
        &self,
        kind: ResourceKind,
        namespace: &str,
        revision: u64,
    ) -> Result<WatchDelta, WatchError> {
        // The pre-refactor delivery discipline: every subscriber gets its
        // own deep copy of every event's tree, every time.
        self.journals
            .events_since(&self.revision, kind, namespace, revision, true)
    }

    fn watch_revision(&self, kind: ResourceKind) -> u64 {
        self.journals.watch_revision(kind)
    }

    fn subscribe(
        &self,
        kind: ResourceKind,
        namespace: &str,
        revision: u64,
        capacity: usize,
    ) -> Result<WatchSubscriber, WatchError> {
        // Per-subscriber copy discipline: every event fanned into this
        // queue deep-clones its tree at offer time.
        self.journals
            .subscribe(kind, namespace, revision, capacity, true)
    }

    fn watch_generation(&self, kind: ResourceKind, namespace: &str) -> u64 {
        self.journals.signal_of(kind, namespace).generation()
    }

    fn wait_for_watch(
        &self,
        kind: ResourceKind,
        namespace: &str,
        seen: u64,
        timeout: std::time::Duration,
    ) -> u64 {
        self.journals
            .signal_of(kind, namespace)
            .wait_past(seen, timeout)
    }

    fn list(&self, kind: ResourceKind, namespace: &str) -> Vec<Arc<StoredObject>> {
        // The pre-refactor scan: visit everything, deep-clone every match.
        let mut out: Vec<(Key, Arc<StoredObject>)> = Vec::new();
        for shard in &self.shards {
            let guard = shard.read();
            out.extend(
                guard
                    .iter()
                    .filter(|(key, _)| list_key_matches(key, kind, namespace))
                    .map(|(key, stored)| (key.clone(), Self::copy_out(stored))),
            );
        }
        out.sort_by(|(a, _), (b, _)| a.cmp(b));
        out.into_iter().map(|(_, stored)| stored).collect()
    }

    fn revision(&self) -> u64 {
        self.revision.load(Ordering::Relaxed)
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|shard| shard.read().len()).sum()
    }

    fn count_by_kind(&self) -> BTreeMap<ResourceKind, usize> {
        let mut out = BTreeMap::new();
        for shard in &self.shards {
            for ((kind, _, _), _) in shard.read().iter() {
                *out.entry(*kind).or_insert(0) += 1;
            }
        }
        out
    }

    fn restore(&self, objects: Vec<StoredObject>, revision: u64) {
        // Same contract as the zero-copy store; the baseline's copy
        // discipline only differs on the read side, so restoration is a
        // plain keyed insert here too.
        let mut floor = revision;
        for stored in objects {
            floor = floor.max(stored.resource_version);
            let key = key_of(&stored.object);
            self.shards[shard_index(&key)].write().insert(key, stored);
        }
        self.revision.fetch_max(floor, Ordering::Relaxed);
        self.journals.restore_horizon(floor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn object(kind: ResourceKind, name: &str, namespace: &str) -> K8sObject {
        K8sObject::minimal(kind, name, namespace)
    }

    #[test]
    fn create_then_get_roundtrips() {
        let store = ObjectStore::new();
        let version = store
            .create(object(ResourceKind::Service, "svc", "prod"))
            .unwrap();
        assert_eq!(version, 1);
        let stored = store.get(ResourceKind::Service, "prod", "svc").unwrap();
        assert_eq!(stored.resource_version, 1);
        assert_eq!(stored.object.name(), "svc");
    }

    #[test]
    fn reads_return_shared_handles_not_copies() {
        let store = ObjectStore::new();
        let obj = object(ResourceKind::Pod, "a", "ns");
        let tree = Arc::clone(obj.shared_body());
        store.create(obj).unwrap();
        let got = store.get(ResourceKind::Pod, "ns", "a").unwrap();
        assert!(
            Arc::ptr_eq(got.object.shared_body(), &tree),
            "get must hand back the stored tree, not a copy"
        );
        let listed = store.list(ResourceKind::Pod, "ns");
        assert_eq!(listed.len(), 1);
        assert!(Arc::ptr_eq(listed[0].object.shared_body(), &tree));
        // Both reads share the same StoredObject allocation too.
        assert!(Arc::ptr_eq(&got, &listed[0]));
        let deleted = store.delete(ResourceKind::Pod, "ns", "a").unwrap();
        assert!(Arc::ptr_eq(deleted.object.shared_body(), &tree));
    }

    #[test]
    fn create_conflicts_on_existing_objects() {
        let store = ObjectStore::new();
        assert!(store.create(object(ResourceKind::Pod, "a", "ns")).is_some());
        assert!(store.create(object(ResourceKind::Pod, "a", "ns")).is_none());
        // Same name in a different namespace or kind is fine.
        assert!(store
            .create(object(ResourceKind::Pod, "a", "other"))
            .is_some());
        assert!(store
            .create(object(ResourceKind::ConfigMap, "a", "ns"))
            .is_some());
    }

    #[test]
    fn update_requires_an_existing_object() {
        let store = ObjectStore::new();
        assert!(store.update(object(ResourceKind::Pod, "a", "ns")).is_none());
        store.create(object(ResourceKind::Pod, "a", "ns")).unwrap();
        let v2 = store.update(object(ResourceKind::Pod, "a", "ns")).unwrap();
        assert_eq!(v2, 2);
    }

    #[test]
    fn apply_upserts_and_bumps_revision() {
        let store = ObjectStore::new();
        assert_eq!(store.apply(object(ResourceKind::Secret, "s", "ns")), 1);
        assert_eq!(store.apply(object(ResourceKind::Secret, "s", "ns")), 2);
        assert_eq!(store.len(), 1);
        assert_eq!(store.revision(), 2);
    }

    #[test]
    fn delete_removes_and_reports() {
        let store = ObjectStore::new();
        store.create(object(ResourceKind::Pod, "a", "ns")).unwrap();
        assert!(store.delete(ResourceKind::Pod, "ns", "a").is_some());
        assert!(store.delete(ResourceKind::Pod, "ns", "a").is_none());
        assert!(store.is_empty());
    }

    #[test]
    fn list_filters_by_kind_and_namespace() {
        let store = ObjectStore::new();
        store.create(object(ResourceKind::Pod, "a", "ns1")).unwrap();
        store.create(object(ResourceKind::Pod, "b", "ns1")).unwrap();
        store.create(object(ResourceKind::Pod, "c", "ns2")).unwrap();
        store
            .create(object(ResourceKind::Service, "s", "ns1"))
            .unwrap();
        assert_eq!(store.list(ResourceKind::Pod, "ns1").len(), 2);
        assert_eq!(store.list(ResourceKind::Pod, "").len(), 3);
        assert_eq!(store.list(ResourceKind::Service, "ns1").len(), 1);
        let counts = store.count_by_kind();
        assert_eq!(counts[&ResourceKind::Pod], 3);
    }

    #[test]
    fn list_returns_objects_in_key_order_across_shards() {
        let store = ObjectStore::new();
        // Enough names to land in several different shards.
        for name in ["zeta", "alpha", "mike", "kilo", "echo", "yankee", "bravo"] {
            store.create(object(ResourceKind::Pod, name, "ns")).unwrap();
        }
        let names: Vec<String> = store
            .list(ResourceKind::Pod, "ns")
            .into_iter()
            .map(|stored| stored.object.name().to_owned())
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn concurrent_writers_keep_unique_monotonic_versions() {
        let store = ObjectStore::new();
        let versions: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|t| {
                    let store = &store;
                    scope.spawn(move || {
                        let mut mine = Vec::new();
                        for i in 0..50 {
                            let name = format!("obj-{t}-{i}");
                            mine.push(
                                store
                                    .create(object(ResourceKind::Pod, &name, "ns"))
                                    .unwrap(),
                            );
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(versions.len(), 400);
        assert_eq!(store.len(), 400);
        assert_eq!(store.revision(), 400);
        let mut sorted = versions.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 400, "versions must be globally unique");
    }

    /// Every [`StoreBackend`] must expose identical etcd-like semantics; the
    /// baseline differs only in what it copies.
    fn exercise_backend(store: &dyn StoreBackend) {
        assert!(store.is_empty());
        assert_eq!(store.create(object(ResourceKind::Pod, "a", "ns")), Some(1));
        assert_eq!(store.create(object(ResourceKind::Pod, "a", "ns")), None);
        assert_eq!(store.update(object(ResourceKind::Pod, "a", "ns")), Some(2));
        assert_eq!(
            store.upsert(object(ResourceKind::Pod, "b", "ns")),
            (3, true)
        );
        assert_eq!(
            store.upsert(object(ResourceKind::Pod, "b", "ns")),
            (4, false)
        );
        assert_eq!(store.len(), 2);
        assert_eq!(
            store
                .get(ResourceKind::Pod, "ns", "a")
                .unwrap()
                .object
                .name(),
            "a"
        );
        assert_eq!(store.list(ResourceKind::Pod, "ns").len(), 2);
        assert_eq!(store.list(ResourceKind::Pod, "").len(), 2);
        assert_eq!(store.count_by_kind()[&ResourceKind::Pod], 2);
        assert!(store.delete(ResourceKind::Pod, "ns", "a").is_some());
        assert_eq!(store.revision(), 5);
        // Both backends publish one event per write, replayable in order.
        let events = store
            .events_since(ResourceKind::Pod, "ns", 0)
            .unwrap()
            .events;
        assert_eq!(events.len(), 5);
        assert!(events.windows(2).all(|w| w[0].revision < w[1].revision));
        assert_eq!(store.watch_revision(ResourceKind::Pod), 5);
        let body = Arc::new(kf_yaml::parse("kind: Pod\nmetadata:\n  name: x\n").unwrap());
        let ingested = store.ingest(&body).unwrap();
        assert_eq!(ingested.name(), "x");
    }

    #[test]
    fn both_backends_share_the_store_contract() {
        exercise_backend(&ObjectStore::new());
        exercise_backend(&BaselineStore::new());
    }

    #[test]
    fn writes_publish_watch_events_sharing_the_stored_tree() {
        let store = ObjectStore::new();
        let obj = object(ResourceKind::Pod, "a", "ns");
        let tree = Arc::clone(obj.shared_body());
        store.create(obj).unwrap();
        store.update(object(ResourceKind::Pod, "a", "ns")).unwrap();
        store.delete(ResourceKind::Pod, "ns", "a").unwrap();
        let events = store
            .events_since(ResourceKind::Pod, "ns", 0)
            .unwrap()
            .events;
        let kinds: Vec<WatchEventKind> = events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                WatchEventKind::Added,
                WatchEventKind::Modified,
                WatchEventKind::Deleted
            ]
        );
        // The Added event's object is the created tree, by pointer.
        assert!(Arc::ptr_eq(events[0].object.as_ref().unwrap(), &tree));
        // Revisions are the write revisions, strictly increasing.
        assert_eq!(
            events.iter().map(|e| e.revision).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(store.watch_revision(ResourceKind::Pod), 3);
        // A cursor at the last event sees nothing new.
        assert!(store
            .events_since(ResourceKind::Pod, "ns", 3)
            .unwrap()
            .events
            .is_empty());
    }

    #[test]
    fn upsert_publishes_added_then_modified() {
        let store = ObjectStore::new();
        store.upsert(object(ResourceKind::Secret, "s", "ns"));
        store.upsert(object(ResourceKind::Secret, "s", "ns"));
        let events = store
            .events_since(ResourceKind::Secret, "ns", 0)
            .unwrap()
            .events;
        assert_eq!(events[0].kind, WatchEventKind::Added);
        assert_eq!(events[1].kind, WatchEventKind::Modified);
    }

    #[test]
    fn delete_collection_removes_everything_and_publishes_per_object() {
        let store = ObjectStore::new();
        store.create(object(ResourceKind::Pod, "a", "ns1")).unwrap();
        store.create(object(ResourceKind::Pod, "b", "ns1")).unwrap();
        store.create(object(ResourceKind::Pod, "c", "ns2")).unwrap();
        let cursor = store.watch_revision(ResourceKind::Pod);
        assert_eq!(store.delete_collection(ResourceKind::Pod, "ns1"), 2);
        assert_eq!(store.len(), 1);
        let deletions = store
            .events_since(ResourceKind::Pod, "ns1", cursor)
            .unwrap()
            .events;
        assert_eq!(deletions.len(), 2);
        assert!(deletions
            .iter()
            .all(|e| e.kind == WatchEventKind::Deleted && e.has_object()));
        // Deleting an empty collection is a no-op, not an error.
        assert_eq!(store.delete_collection(ResourceKind::Pod, "ns1"), 0);
        // All namespaces at once.
        assert_eq!(store.delete_collection(ResourceKind::Pod, ""), 1);
        assert!(store.is_empty());
    }

    #[test]
    fn apply_batch_matches_per_object_upserts() {
        let store = ObjectStore::new();
        store
            .create(object(ResourceKind::Pod, "pre", "ns1"))
            .unwrap();
        let results = store.apply_batch(vec![
            object(ResourceKind::Pod, "a", "ns1"),
            object(ResourceKind::Pod, "pre", "ns1"),
            object(ResourceKind::Pod, "b", "ns2"),
            object(ResourceKind::Service, "s", "ns1"),
        ]);
        assert_eq!(results.len(), 4);
        // Every revision unique, continuing after the pre-existing write.
        let mut versions: Vec<u64> = results.iter().map(|(v, _)| *v).collect();
        versions.sort_unstable();
        assert_eq!(versions, vec![2, 3, 4, 5]);
        // created flags: only "pre" already existed.
        assert_eq!(
            results
                .iter()
                .map(|(_, created)| *created)
                .collect::<Vec<_>>(),
            vec![true, false, true, true]
        );
        assert_eq!(store.len(), 4);
        assert_eq!(store.revision(), 5);
        // Stored versions match the returned ones.
        for (result, (kind, ns, name)) in results.iter().zip([
            (ResourceKind::Pod, "ns1", "a"),
            (ResourceKind::Pod, "ns1", "pre"),
            (ResourceKind::Pod, "ns2", "b"),
            (ResourceKind::Service, "ns1", "s"),
        ]) {
            assert_eq!(
                store.get(kind, ns, name).unwrap().resource_version,
                result.0
            );
        }
        // The journal replays one event per batch entry, in revision order.
        let events = store.events_since(ResourceKind::Pod, "", 1).unwrap().events;
        assert_eq!(events.len(), 3);
        assert!(events.windows(2).all(|w| w[0].revision < w[1].revision));
    }

    #[test]
    fn apply_batch_orders_in_batch_duplicates_last_write_wins() {
        let store = ObjectStore::new();
        let first = object(ResourceKind::Pod, "dup", "ns");
        let second = object(ResourceKind::Pod, "dup", "ns");
        let winning_tree = Arc::clone(second.shared_body());
        let results = store.apply_batch(vec![first, second]);
        assert!(results[0].1, "first write creates");
        assert!(!results[1].1, "second write modifies");
        assert!(results[0].0 < results[1].0, "batch order assigns versions");
        let stored = store.get(ResourceKind::Pod, "ns", "dup").unwrap();
        assert_eq!(stored.resource_version, results[1].0);
        assert!(Arc::ptr_eq(stored.object.shared_body(), &winning_tree));
        // The journal saw Added then Modified.
        let events = store
            .events_since(ResourceKind::Pod, "ns", 0)
            .unwrap()
            .events;
        assert_eq!(
            events.iter().map(|e| e.kind).collect::<Vec<_>>(),
            vec![WatchEventKind::Added, WatchEventKind::Modified]
        );
    }

    #[test]
    fn baseline_apply_batch_uses_the_per_object_default() {
        let store = BaselineStore::new();
        let results = StoreBackend::apply_batch(
            &store,
            vec![
                object(ResourceKind::Pod, "a", "ns"),
                object(ResourceKind::Pod, "a", "ns"),
            ],
        );
        assert_eq!(results, vec![(1, true), (2, false)]);
        assert_eq!(StoreBackend::len(&store), 1);
    }

    #[test]
    fn subscriptions_advance_their_cursor_per_poll() {
        let store = ObjectStore::new();
        let mut sub = crate::WatchSubscription::at(ResourceKind::Pod, "ns", 0);
        assert!(sub.poll(&store).unwrap().is_empty());
        store.create(object(ResourceKind::Pod, "a", "ns")).unwrap();
        store.create(object(ResourceKind::Pod, "b", "ns")).unwrap();
        assert_eq!(sub.poll(&store).unwrap().len(), 2);
        assert_eq!(sub.revision(), 2);
        // Nothing new: the cursor holds.
        assert!(sub.poll(&store).unwrap().is_empty());
        store.delete(ResourceKind::Pod, "ns", "a").unwrap();
        let events = sub.poll(&store).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, WatchEventKind::Deleted);
    }

    #[test]
    fn compacted_journals_answer_stale_cursors_with_gone() {
        let store = ObjectStore::with_journal_capacity(2);
        for name in ["a", "b", "c", "d"] {
            store.create(object(ResourceKind::Pod, name, "ns")).unwrap();
        }
        assert_eq!(
            store.events_since(ResourceKind::Pod, "ns", 0),
            Err(WatchError::Gone {
                compacted_through: 2
            })
        );
        // Recovery: re-list and resume from the list's cursor.
        let cursor = store.watch_revision(ResourceKind::Pod);
        assert_eq!(store.list(ResourceKind::Pod, "ns").len(), 4);
        assert!(store
            .events_since(ResourceKind::Pod, "ns", cursor)
            .unwrap()
            .events
            .is_empty());
    }

    #[test]
    fn quiet_namespace_subscribers_ride_the_head_past_foreign_churn() {
        // A watcher of a quiet namespace polls while another namespace of
        // the same kind churns far past the journal capacity: because every
        // poll resumes from the journal head, the cursor never falls behind
        // compaction and no spurious Gone (or re-list) is forced.
        let store = ObjectStore::with_journal_capacity(2);
        store
            .create(object(ResourceKind::Pod, "q", "quiet"))
            .unwrap();
        let mut sub = crate::WatchSubscription::at(ResourceKind::Pod, "quiet", 0);
        assert_eq!(sub.poll(&store).unwrap().len(), 1);
        for round in 0..10 {
            store
                .create(object(ResourceKind::Pod, &format!("busy-{round}"), "busy"))
                .unwrap();
            assert_eq!(
                sub.poll(&store)
                    .expect("the head cursor outruns compaction"),
                vec![],
                "foreign-namespace churn must not leak events"
            );
        }
        assert_eq!(sub.revision(), store.revision());
        // Quiet-namespace events still arrive afterwards.
        store
            .create(object(ResourceKind::Pod, "q2", "quiet"))
            .unwrap();
        assert_eq!(sub.poll(&store).unwrap().len(), 1);
    }

    #[test]
    fn baseline_events_are_deep_copies_with_identical_content() {
        let store = BaselineStore::new();
        let body =
            Arc::new(kf_yaml::parse("kind: Pod\nmetadata:\n  name: a\n  namespace: ns\n").unwrap());
        let ingested = store.ingest(&body).unwrap();
        StoreBackend::create(&store, ingested).unwrap();
        let first = StoreBackend::events_since(&store, ResourceKind::Pod, "ns", 0)
            .unwrap()
            .events;
        let second = StoreBackend::events_since(&store, ResourceKind::Pod, "ns", 0)
            .unwrap()
            .events;
        let a = first[0].object.as_ref().unwrap();
        let b = second[0].object.as_ref().unwrap();
        assert!(
            !Arc::ptr_eq(a, b),
            "baseline must deep-clone per subscriber delivery"
        );
        assert!(a.loosely_equals(b));
    }

    #[test]
    fn baseline_store_copies_on_every_boundary() {
        let store = BaselineStore::new();
        let body =
            Arc::new(kf_yaml::parse("kind: Pod\nmetadata:\n  name: a\n  namespace: ns\n").unwrap());
        let ingested = store.ingest(&body).unwrap();
        assert!(
            !Arc::ptr_eq(ingested.shared_body(), &body),
            "baseline ingest must deep-clone the request tree"
        );
        let tree = Arc::clone(ingested.shared_body());
        StoreBackend::create(&store, ingested).unwrap();
        let got = store.get(ResourceKind::Pod, "ns", "a").unwrap();
        assert!(
            !Arc::ptr_eq(got.object.shared_body(), &tree),
            "baseline get must deep-clone the stored tree"
        );
        let listed = store.list(ResourceKind::Pod, "ns");
        assert!(!Arc::ptr_eq(listed[0].object.shared_body(), &tree));
        assert_eq!(got.object.body(), listed[0].object.body());
    }
}
