//! The durable persistence plane: snapshots + the journal-as-WAL.
//!
//! Everything the store holds lives in memory; this module makes a restart
//! survivable. Two artifacts, both hand-framed over `kf_yaml::binary` (the
//! workspace `serde` is a no-op shim, so there is no derived format to lean
//! on):
//!
//! * **Snapshot** (`store.kfsnap`) — a one-shot dump of every
//!   `Arc<StoredObject>` handle: magic, CRC-32 seal, then
//!   `(resource_version, body)` per object. Written to a temp file and
//!   atomically renamed, so a crash mid-checkpoint never leaves a partial
//!   snapshot visible.
//! * **Write-ahead log** (`store.kfwal`) — the promotion of the watch
//!   journal's publication stream to disk: every store write appends one
//!   framed [`WalRecord`] (length + CRC-32 + payload) **while the written
//!   object's store-shard lock is held**, so the log preserves per-object
//!   write order exactly as the journal does. The fsync cadence is a
//!   [`FsyncPolicy`].
//!
//! All file traffic goes through a [`StorageIo`] seam, so tests and the
//! chaos workload can run the identical code over a
//! [`crate::storage_io::FaultyIo`] with deterministic fault schedules.
//!
//! **Recovery** ([`Persistence::open`]) loads the snapshot, replays the WAL
//! suffix, seeds the store at the recovered revision and seals every watch
//! journal's compaction horizon there — a watcher resuming with a pre-crash
//! cursor below the horizon gets the same `410 Gone` → re-list contract that
//! in-memory compaction already enforces, while a cursor at the recovered
//! revision streams on seamlessly. Replay is guarded by revision
//! (`record.revision > stored.resource_version`), so overlapping
//! snapshot/WAL windows are idempotent and replay order only matters per
//! key — which per-key order the shard-lock append discipline guarantees.
//! A corrupt snapshot is **quarantined** (renamed to `.corrupt`) and boot
//! falls back to a full-WAL replay instead of refusing to start.
//!
//! **The recovery invariant:** after `open`, the store state equals the
//! pre-crash state at the last fsync'd revision ([`Wal::durable_revision`]).
//! With [`FsyncPolicy::Always`] that is the last acknowledged write; with
//! `Batch(n)` up to `n - 1` trailing acknowledged writes may be lost; with
//! `Os` the loss window is whatever the page cache held. A torn or
//! bit-flipped WAL tail (the crash landed mid-`write`) fails its frame CRC
//! and is **cleanly truncated**, never replayed and never a panic.
//!
//! **Degradation** is a state machine, not a latch: an append or fsync
//! failure moves the WAL `Healthy → Degraded`, where later appends buffer
//! their frames and a capped-exponential-backoff retry first repairs the
//! file tail (truncate to the last fully-written frame — re-appending
//! without the truncate would park duplicate frames behind a torn one and
//! silently drop them at replay), then rewrites the pending frames and
//! proves health with one fsync. Too many consecutive failures move it
//! `Degraded → FailStop`, where appends are dropped and counted. In every
//! state `durable_revision` advances only on a successful fsync of
//! successfully written frames, so it **never overstates** stable storage;
//! the durability gap ([`Wal::durability_gap`]) is the operator-visible
//! size of the at-risk window. How the serving path reacts is the server's
//! [`crate::DegradePolicy`]. See `docs/robustness.md`.
//!
//! **Compaction** ([`Persistence::checkpoint`]) snapshots at the current
//! revision horizon and rewrites the WAL keeping only records above it —
//! the same horizon discipline the in-memory journals apply per sub-shard,
//! extended to disk, with bounded retry around the whole attempt.
//! See `docs/persistence.md` for the byte layouts.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use k8s_model::{K8sObject, ResourceKind};
use kf_yaml::binary::{self, Cursor};
use kf_yaml::Value;

use crate::storage_io::{RealIo, StorageFile, StorageIo};
use crate::store::{ObjectStore, StoreBackend, StoredObject};
use crate::watch::WatchEventKind;

/// Snapshot file name inside a persistence directory.
pub const SNAPSHOT_FILE: &str = "store.kfsnap";
/// Write-ahead-log file name inside a persistence directory.
pub const WAL_FILE: &str = "store.kfwal";
/// AOT-compiled validator arena file name (written by the policy plane —
/// see `kubefence::aot` — but named here so the persistence directory
/// layout is defined in one place).
pub const AOT_ARENA_FILE: &str = "validators.kfaot";

/// Magic sealing a snapshot file (8 bytes, versioned).
const SNAPSHOT_MAGIC: &[u8; 8] = b"KFSNAP1\0";
/// Magic sealing a per-shard snapshot segment file.
const SEGMENT_MAGIC: &[u8; 8] = b"KFSEG1\0\0";
/// Magic sealing a snapshot manifest file.
const MANIFEST_MAGIC: &[u8; 8] = b"KFMAN1\0\0";

/// Manifest file naming the live snapshot segments and their horizon.
pub const MANIFEST_FILE: &str = "store.kfmanifest";
/// Previous manifest, kept through rotation so a torn current manifest
/// falls back to the last complete one instead of refusing boot.
pub const MANIFEST_PREV_FILE: &str = "store.kfmanifest.prev";

/// File name of one store shard's snapshot segment.
pub fn segment_file(shard: usize) -> String {
    format!("store.seg-{shard:02}.kfsnap")
}

/// Default group-commit fill window for `FsyncPolicy::parse("group")`.
const GROUP_DEFAULT_WAIT_US: u32 = 400;
/// Default group-commit batch cap for `FsyncPolicy::parse("group")`.
const GROUP_DEFAULT_BATCH: u32 = 64;
/// Safety re-check interval for parked group-commit followers: wakeups
/// normally arrive from the leader's generation bump, but `sync()` and
/// tail recovery can advance `durable` without holding the group lock, so
/// followers re-check on a coarse timer rather than trusting every path to
/// notify.
const GROUP_FOLLOWER_SLICE: Duration = Duration::from_millis(5);

/// When the WAL forces data to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every append — the acknowledged-write-is-durable
    /// contract etcd ships with. Slowest, loses nothing.
    Always,
    /// `fsync` once every `n` appended records (`n == 0` is clamped to 1).
    /// Bounds the loss window to `n - 1` acknowledged writes.
    Batch(u32),
    /// Never `fsync`; the OS flushes the page cache on its own schedule.
    /// Fastest, loses whatever the cache held on a hard crash.
    Os,
    /// Group commit: every writer appends its frame under the WAL lock,
    /// then parks on the commit generation; one elected leader issues a
    /// single fsync covering every waiter in the window. `Always`-grade
    /// semantics (an acknowledged write is on stable storage;
    /// `durable_revision` never overstates; a failed shared fsync degrades
    /// *all* waiters) at a fraction of the fsync count under concurrency.
    Group {
        /// Longest the leader holds the fill window open waiting for more
        /// writers, in microseconds. `0` closes the window immediately —
        /// pure pipelined leader/follower handoff with no added latency
        /// (and `Always`-identical fsync cadence for a single writer,
        /// which is what the deterministic chaos schedules use).
        max_wait_us: u32,
        /// Close the window as soon as this many records are pending
        /// (clamped to at least 1).
        max_batch: u32,
    },
}

impl FsyncPolicy {
    /// Parse a policy from its knob spelling: `always`, `os`, `batch:N`,
    /// or `group` | `group:WAIT_US` | `group:WAIT_US:BATCH` (used by the
    /// bench `KF_WAL_FSYNC` environment variable and the workload
    /// drivers).
    pub fn parse(text: &str) -> Option<FsyncPolicy> {
        match text {
            "always" => Some(FsyncPolicy::Always),
            "os" => Some(FsyncPolicy::Os),
            "group" => Some(FsyncPolicy::Group {
                max_wait_us: GROUP_DEFAULT_WAIT_US,
                max_batch: GROUP_DEFAULT_BATCH,
            }),
            _ => {
                if let Some(spec) = text.strip_prefix("group:") {
                    let (wait, batch) = match spec.split_once(':') {
                        Some((wait, batch)) => (wait.parse().ok()?, batch.parse().ok()?),
                        None => (spec.parse().ok()?, GROUP_DEFAULT_BATCH),
                    };
                    return Some(FsyncPolicy::Group {
                        max_wait_us: wait,
                        max_batch: batch,
                    });
                }
                let n = text.strip_prefix("batch:")?.parse().ok()?;
                Some(FsyncPolicy::Batch(n))
            }
        }
    }
}

/// How the WAL retries after an I/O failure, and when it gives up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// First backoff delay; doubles per consecutive failure.
    pub base: Duration,
    /// Ceiling on the backoff delay.
    pub cap: Duration,
    /// Consecutive failures after which the WAL moves
    /// `Degraded → FailStop` (clamped to at least 1).
    pub fail_stop_after: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(100),
            fail_stop_after: 8,
        }
    }
}

impl RetryPolicy {
    /// A policy with no backoff delay — every append retries immediately.
    /// Deterministic for tests and the chaos sweep (recovery attempts are
    /// driven purely by operation order, never by wall-clock timing).
    pub fn immediate(fail_stop_after: u32) -> Self {
        RetryPolicy {
            base: Duration::ZERO,
            cap: Duration::ZERO,
            fail_stop_after,
        }
    }

    /// The capped exponential backoff after `failures` consecutive failures.
    fn backoff(&self, failures: u32) -> Duration {
        let shift = failures.saturating_sub(1).min(16);
        self.base.saturating_mul(1u32 << shift).min(self.cap)
    }
}

/// Where and how a store persists.
#[derive(Debug, Clone)]
pub struct PersistConfig {
    /// Directory holding the snapshot and WAL files (created on open).
    pub dir: PathBuf,
    /// Fsync cadence of the WAL.
    pub fsync: FsyncPolicy,
    /// Watch-journal capacity per sub-shard of the recovered store (see
    /// [`ObjectStore::with_journal_config`]; 0 means the default).
    pub journal_capacity: usize,
    /// Watch-journal sub-shard count of the recovered store (0: default).
    pub journal_shards: usize,
    /// Retry/backoff/fail-stop policy of the durability state machine.
    pub retry: RetryPolicy,
}

impl PersistConfig {
    /// A config persisting under `dir` with [`FsyncPolicy::Always`] and
    /// default journal geometry.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        PersistConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            journal_capacity: 0,
            journal_shards: 0,
            retry: RetryPolicy::default(),
        }
    }

    /// The same config with a different fsync policy.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// The same config with a different retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// One write, as the WAL records it — the durable twin of the journal's
/// publication envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// The revision the journal assigned to this write.
    pub revision: u64,
    /// The written object's kind.
    pub kind: ResourceKind,
    /// `Added`, `Modified` or `Deleted` (bookmarks are watch-wire sugar and
    /// never logged).
    pub op: WatchEventKind,
    /// The object's namespace.
    pub namespace: String,
    /// The object's name.
    pub name: String,
    /// The written tree — shared with the store, not copied. `None` for
    /// deletions: replay only needs the key to remove.
    pub body: Option<Arc<Value>>,
}

const OP_ADDED: u8 = 0;
const OP_MODIFIED: u8 = 1;
const OP_DELETED: u8 = 2;

impl WalRecord {
    fn op_tag(&self) -> u8 {
        match self.op {
            WatchEventKind::Added => OP_ADDED,
            WatchEventKind::Modified => OP_MODIFIED,
            WatchEventKind::Deleted => OP_DELETED,
            // Bookmarks are synthesized on the watch wire, never written to
            // the store, so a bookmark here is a logic error upstream; the
            // log treats it as a no-op modification of nothing.
            WatchEventKind::Bookmark => OP_MODIFIED,
        }
    }

    fn encode_payload(&self, out: &mut Vec<u8>) {
        binary::put_u64(out, self.revision);
        binary::put_u8(out, self.kind.index() as u8);
        binary::put_u8(out, self.op_tag());
        binary::put_str(out, &self.namespace);
        binary::put_str(out, &self.name);
        match &self.body {
            Some(body) => {
                binary::put_u8(out, 1);
                binary::put_value(out, body);
            }
            None => binary::put_u8(out, 0),
        }
    }

    /// Append this record as one framed entry: `len | crc32 | payload`.
    fn encode_frame(&self, out: &mut Vec<u8>) {
        let mut payload = Vec::with_capacity(64);
        self.encode_payload(&mut payload);
        binary::put_u32(out, payload.len() as u32);
        binary::put_u32(out, binary::crc32(&payload));
        out.extend_from_slice(&payload);
    }

    fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
        let mut cursor = Cursor::new(payload);
        let revision = cursor.get_u64().ok()?;
        let kind_index = cursor.get_u8().ok()? as usize;
        let kind = *ResourceKind::ALL.get(kind_index)?;
        let op = match cursor.get_u8().ok()? {
            OP_ADDED => WatchEventKind::Added,
            OP_MODIFIED => WatchEventKind::Modified,
            OP_DELETED => WatchEventKind::Deleted,
            _ => return None,
        };
        let namespace = cursor.get_str().ok()?;
        let name = cursor.get_str().ok()?;
        let body = match cursor.get_u8().ok()? {
            0 => None,
            1 => Some(Arc::new(cursor.get_value().ok()?)),
            _ => return None,
        };
        if !cursor.is_empty() {
            return None;
        }
        Some(WalRecord {
            revision,
            kind,
            op,
            namespace,
            name,
            body,
        })
    }
}

/// What the WAL reader found past the last intact frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornTail {
    /// Byte length of the intact prefix (the truncation point).
    pub valid_len: u64,
    /// How many trailing bytes failed framing or checksum.
    pub dropped_bytes: u64,
}

/// A decoded WAL: every intact record plus what was cut from the tail.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// The intact records, in append (file) order.
    pub records: Vec<WalRecord>,
    /// `Some` when the file ended in a torn or corrupt frame.
    pub torn: Option<TornTail>,
}

fn decode_wal_bytes(bytes: &[u8]) -> WalReplay {
    let mut records = Vec::new();
    let mut offset = 0usize;
    loop {
        let remaining = bytes.len() - offset;
        if remaining == 0 {
            return WalReplay {
                records,
                torn: None,
            };
        }
        // A frame needs its 8-byte header, the announced payload, a CRC
        // match and a clean payload decode; the first failure marks the torn
        // tail and ends the replay — later bytes are unframeable noise.
        let torn = WalReplay {
            records: Vec::new(),
            torn: Some(TornTail {
                valid_len: offset as u64,
                dropped_bytes: remaining as u64,
            }),
        };
        if remaining < 8 {
            return WalReplay { records, ..torn };
        }
        let len =
            u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().expect("4 bytes"));
        if len > remaining - 8 {
            return WalReplay { records, ..torn };
        }
        let payload = &bytes[offset + 8..offset + 8 + len];
        if binary::crc32(payload) != crc {
            return WalReplay { records, ..torn };
        }
        let Some(record) = WalRecord::decode_payload(payload) else {
            return WalReplay { records, ..torn };
        };
        records.push(record);
        offset += 8 + len;
    }
}

/// Decode a WAL through an explicit I/O without touching it. Missing file:
/// empty replay.
///
/// # Errors
///
/// Only filesystem errors; corruption is reported via [`WalReplay::torn`],
/// never as an error.
pub fn read_wal_with(io: &dyn StorageIo, path: &Path) -> io::Result<WalReplay> {
    match io.read(path) {
        Ok(bytes) => Ok(decode_wal_bytes(&bytes)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(WalReplay::default()),
        Err(e) => Err(e),
    }
}

/// Decode a WAL file without touching it ([`read_wal_with`] over the real
/// filesystem).
///
/// # Errors
///
/// Only filesystem errors; corruption is reported via [`WalReplay::torn`],
/// never as an error.
pub fn read_wal(path: &Path) -> io::Result<WalReplay> {
    read_wal_with(&RealIo, path)
}

/// Decode a WAL and, when the tail is torn, **truncate the file** to the
/// intact prefix so the next append starts on a frame boundary.
///
/// # Errors
///
/// Only filesystem errors (reading, or truncating a torn file).
pub fn recover_wal_with(io: &dyn StorageIo, path: &Path) -> io::Result<WalReplay> {
    let replay = read_wal_with(io, path)?;
    if let Some(torn) = replay.torn {
        io.truncate(path, torn.valid_len)?;
    }
    Ok(replay)
}

/// [`recover_wal_with`] over the real filesystem.
///
/// # Errors
///
/// Only filesystem errors (reading, or truncating a torn file).
pub fn recover_wal(path: &Path) -> io::Result<WalReplay> {
    recover_wal_with(&RealIo, path)
}

/// The durability state machine's states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurabilityState {
    /// Appends land and fsync on schedule; `durable_revision` tracks the
    /// policy's cadence.
    Healthy,
    /// I/O is failing: appends buffer their frames and a capped-backoff
    /// retry repairs the file tail, rewrites the buffer and re-proves
    /// durability with an fsync. `durable_revision` is frozen at the last
    /// proven value; the gap measures the at-risk window.
    Degraded,
    /// Too many consecutive failures: the device is considered gone.
    /// Appends are dropped (and counted as lost); only a restart leaves
    /// this state.
    FailStop,
}

impl DurabilityState {
    fn tag(self) -> u8 {
        match self {
            DurabilityState::Healthy => 0,
            DurabilityState::Degraded => 1,
            DurabilityState::FailStop => 2,
        }
    }

    fn from_tag(tag: u8) -> DurabilityState {
        match tag {
            0 => DurabilityState::Healthy,
            1 => DurabilityState::Degraded,
            _ => DurabilityState::FailStop,
        }
    }
}

impl std::fmt::Display for DurabilityState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            DurabilityState::Healthy => "healthy",
            DurabilityState::Degraded => "degraded",
            DurabilityState::FailStop => "fail-stop",
        };
        f.write_str(name)
    }
}

/// The class of storage failure a [`LatchedError`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageErrorKind {
    /// An append-path `write` failed (the file tail became unknown and was
    /// truncated back to the last intact frame before any retry).
    Write,
    /// An `fsync` failed — written frames exist but are not proven stable.
    Fsync,
    /// The device reported no space (classified from the error text /
    /// errno, whatever operation it surfaced on).
    NoSpace,
    /// A recovery step failed (truncating the torn tail or reopening the
    /// append handle).
    Recovery,
}

impl std::fmt::Display for StorageErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            StorageErrorKind::Write => "write",
            StorageErrorKind::Fsync => "fsync",
            StorageErrorKind::NoSpace => "no-space",
            StorageErrorKind::Recovery => "recovery",
        };
        f.write_str(name)
    }
}

impl StorageErrorKind {
    /// Classify an I/O error, preferring the no-space signal over the
    /// operation's default kind (ENOSPC can surface on writes *and*
    /// fsyncs).
    fn classify(error: &io::Error, default: StorageErrorKind) -> StorageErrorKind {
        if error.raw_os_error() == Some(28) {
            return StorageErrorKind::NoSpace;
        }
        let text = error.to_string();
        if text.to_ascii_lowercase().contains("no space") {
            StorageErrorKind::NoSpace
        } else {
            default
        }
    }
}

/// The structured latched error: what failed first, and how persistently.
///
/// `failures` distinguishes transient from permanent in the only way an
/// I/O layer can: a count still growing means the fault has not healed; a
/// WAL back in `Healthy` clears the latch entirely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatchedError {
    /// The failure class of the **first** error in the current episode.
    pub kind: StorageErrorKind,
    /// The first error's text.
    pub message: String,
    /// The highest revision the failing operation covered.
    pub revision: u64,
    /// Consecutive failures observed in the episode so far.
    pub failures: u32,
}

impl std::fmt::Display for LatchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} failure at revision {} ({} consecutive): {}",
            self.kind, self.revision, self.failures, self.message
        )
    }
}

/// One recorded state-machine transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityTransition {
    /// The state left.
    pub from: DurabilityState,
    /// The state entered.
    pub to: DurabilityState,
    /// Consecutive failures at the moment of transition.
    pub failures: u32,
    /// `durable_revision` at the moment of transition.
    pub durable_revision: u64,
}

/// A point-in-time durability summary — what [`StoreBackend::durability`]
/// and the server's health surface report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityStatus {
    /// Whether a WAL is attached at all (`false`: pure in-memory store,
    /// every other field is vacuous).
    pub durable: bool,
    /// The state machine's current state.
    pub state: DurabilityState,
    /// Highest revision proven on stable storage.
    pub durable_revision: u64,
    /// Highest revision handed to the WAL (acknowledged to clients).
    pub submitted_revision: u64,
    /// `submitted_revision - durable_revision`: the at-risk window.
    pub gap: u64,
    /// The current episode's latched error (`None` when healthy).
    pub latched: Option<LatchedError>,
    /// State-machine transitions since open.
    pub transitions: usize,
    /// Records dropped in `FailStop` (never written to the file).
    pub lost_records: u64,
    /// Group-commit fsyncs issued since open (0 unless the policy is
    /// [`FsyncPolicy::Group`]).
    pub fsync_batches: u64,
    /// Records those group fsyncs covered.
    pub group_records: u64,
}

impl DurabilityStatus {
    /// The status of a store with no persistence attached.
    pub fn in_memory() -> DurabilityStatus {
        DurabilityStatus {
            durable: false,
            state: DurabilityState::Healthy,
            durable_revision: 0,
            submitted_revision: 0,
            gap: 0,
            latched: None,
            transitions: 0,
            lost_records: 0,
            fsync_batches: 0,
            group_records: 0,
        }
    }

    /// Mean records per group-commit fsync (0.0 before the first batch) —
    /// the amortization factor the group policy buys.
    pub fn avg_group_size(&self) -> f64 {
        if self.fsync_batches == 0 {
            0.0
        } else {
            self.group_records as f64 / self.fsync_batches as f64
        }
    }
}

#[derive(Debug, Default)]
struct DurabilityMachine {
    state_tag: u8,
    consecutive_failures: u32,
    next_retry_at: Option<Instant>,
    latched: Option<LatchedError>,
    transitions: Vec<DurabilityTransition>,
}

impl DurabilityMachine {
    fn state(&self) -> DurabilityState {
        DurabilityState::from_tag(self.state_tag)
    }

    fn record(&mut self, to: DurabilityState, durable_revision: u64) {
        self.transitions.push(DurabilityTransition {
            from: self.state(),
            to,
            failures: self.consecutive_failures,
            durable_revision,
        });
        self.state_tag = to.tag();
    }
}

#[derive(Debug)]
struct WalInner {
    file: Box<dyn StorageFile>,
    /// Records appended since the last fsync (drives [`FsyncPolicy::Batch`]).
    since_sync: u32,
    /// Highest revision written to the file (not necessarily durable yet).
    appended: u64,
    /// Byte length of the file's fully-written prefix — the truncation
    /// point tail repair restores before any retry re-appends frames.
    good_len: u64,
    /// Encoded frames awaiting (re)write while degraded.
    pending: Vec<u8>,
    /// Highest revision among the pending frames.
    pending_high: u64,
    /// Record count among the pending frames.
    pending_count: u32,
    /// Records written to the file but not yet covered by a group-commit
    /// fsync ([`FsyncPolicy::Group`] only; zeroed by any full fsync).
    group_pending: u32,
    machine: DurabilityMachine,
}

/// Shared state of the group-commit rendezvous. Guarded by a `std` mutex
/// with a real `Condvar` (the workspace `parking_lot` shim has none) — the
/// same generation-counter + condvar idiom as `watch::WakeSignal`.
#[derive(Debug, Default)]
struct GroupState {
    /// Records appended and not yet claimed by a leader's window — the
    /// fill level the window-close conditions read.
    fill: u64,
    /// Bumps on every arriving append; a wait slice that passes with no
    /// growth tells the leader the burst is over.
    arrivals: u64,
    /// Whether a leader currently owns the window / in-flight fsync.
    leader_active: bool,
    /// Commit generation: bumps after every leader handoff, success or
    /// failure — what parked followers watch.
    generation: u64,
}

/// The group-commit side table on a [`Wal`]: rendezvous state plus the
/// amortization counters the health surface reports.
#[derive(Debug, Default)]
struct GroupCommit {
    state: StdMutex<GroupState>,
    cond: Condvar,
    /// Successful group fsyncs issued.
    batches: AtomicU64,
    /// Records those fsyncs covered.
    records: AtomicU64,
}

/// Recover a `std` lock/wait result from poisoning — a panicking writer
/// must not wedge every other writer's durability acknowledgement.
fn recover_poison<T>(result: Result<T, std::sync::PoisonError<T>>) -> T {
    result.unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A deferred group-commit rendezvous: the revision an append must see
/// durable before its caller acknowledges, plus how many records it wrote.
/// Produced by [`Wal::append_deferred`], redeemed by [`Wal::group_commit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupTicket {
    target: u64,
    records: u64,
}

impl GroupTicket {
    /// Fold two optional tickets into the one covering both (the bulk
    /// write paths append per shard group and wait once for the maximum
    /// revision).
    pub fn merge(a: Option<GroupTicket>, b: Option<GroupTicket>) -> Option<GroupTicket> {
        match (a, b) {
            (Some(a), Some(b)) => Some(GroupTicket {
                target: a.target.max(b.target),
                records: a.records + b.records,
            }),
            (one, None) | (None, one) => one,
        }
    }
}

/// The open write-ahead log a store appends to.
///
/// Appends are serialized by one mutex — the log is one file — but frames
/// are encoded **before** the lock is taken, so the critical section is a
/// `write` (plus the policy's fsync). Store write paths call
/// [`Wal::append`] while holding the written object's shard lock, which is
/// what makes the on-disk per-key order match the in-memory one.
///
/// I/O failures do not poison the store: the write stays applied in memory
/// and the durability state machine takes over — frames buffer while
/// `Degraded`, tail repair + rewrite + fsync runs under capped backoff
/// (never sleeping in the append path: a not-yet-due retry just buffers),
/// and `durable_revision` advances only on proof. See the module docs.
#[derive(Debug)]
pub struct Wal {
    io: Arc<dyn StorageIo>,
    path: PathBuf,
    inner: Mutex<WalInner>,
    policy: FsyncPolicy,
    retry: RetryPolicy,
    /// Highest revision known forced to stable storage.
    durable: AtomicU64,
    /// Highest revision ever handed to [`Wal::append`] (acknowledged).
    submitted: AtomicU64,
    /// Records dropped in `FailStop`.
    lost: AtomicU64,
    /// Lock-free mirror of the machine state (for hot-path policy checks).
    state_tag: AtomicU8,
    /// Group-commit rendezvous ([`FsyncPolicy::Group`] only).
    group: GroupCommit,
}

impl Wal {
    /// Open (creating if needed) the WAL at `path` for appending, over the
    /// real filesystem with the default [`RetryPolicy`]. `recovered` is the
    /// highest revision already in the file — it seeds both the appended
    /// and durable cursors (the open fsyncs once so the recovered prefix is
    /// genuinely stable).
    ///
    /// # Errors
    ///
    /// Filesystem errors opening or syncing the file.
    pub fn open(path: &Path, policy: FsyncPolicy, recovered: u64) -> io::Result<Wal> {
        Wal::open_with(
            Arc::new(RealIo),
            path,
            policy,
            recovered,
            RetryPolicy::default(),
        )
    }

    /// [`Wal::open`] over an explicit [`StorageIo`] and [`RetryPolicy`].
    ///
    /// # Errors
    ///
    /// I/O errors opening or syncing the file (a boot-time failure is an
    /// open error, not a degraded state — there is nothing to serve yet).
    pub fn open_with(
        io: Arc<dyn StorageIo>,
        path: &Path,
        policy: FsyncPolicy,
        recovered: u64,
        retry: RetryPolicy,
    ) -> io::Result<Wal> {
        let mut file = io.open_append(path)?;
        file.sync_data()?;
        let good_len = io.file_len(path)?;
        Ok(Wal {
            io,
            path: path.to_path_buf(),
            inner: Mutex::new(WalInner {
                file,
                since_sync: 0,
                appended: recovered,
                good_len,
                pending: Vec::new(),
                pending_high: 0,
                pending_count: 0,
                group_pending: 0,
                machine: DurabilityMachine::default(),
            }),
            policy,
            retry,
            durable: AtomicU64::new(recovered),
            submitted: AtomicU64::new(recovered),
            lost: AtomicU64::new(0),
            state_tag: AtomicU8::new(DurabilityState::Healthy.tag()),
            group: GroupCommit::default(),
        })
    }

    /// Append records (one frame each, one `write` for the batch), honoring
    /// the fsync policy. Errors are absorbed by the durability state
    /// machine, not returned — the store cannot unwind a write it already
    /// applied under its shard lock.
    ///
    /// Under [`FsyncPolicy::Group`] this is where the caller parks: the
    /// frames land in the file under the WAL lock, then the writer joins
    /// the group-commit rendezvous and returns once its revision is proven
    /// durable (or the machine has left `Healthy`, in which case the
    /// durability gap tells the truth — exactly as a failed `Always` fsync
    /// would).
    pub fn append(&self, records: &[WalRecord]) {
        if let Some(ticket) = self.append_deferred(records) {
            self.group_commit(ticket);
        }
    }

    /// [`Wal::append`] with the group-commit wait split off: the frames are
    /// written (and for non-`Group` policies fsynced) exactly as `append`
    /// does, but instead of parking, a `Group` write returns its rendezvous
    /// ticket for the caller to pass to [`Wal::group_commit`] later.
    ///
    /// The store's bulk paths use this to append per shard group **inside**
    /// each shard lock but wait once, after every lock is released — the
    /// acknowledgement a caller of `apply_batch` gets is still
    /// durable-on-return, but the batch pays one rendezvous instead of one
    /// per shard group. Merge tickets with [`GroupTicket::merge`].
    pub fn append_deferred(&self, records: &[WalRecord]) -> Option<GroupTicket> {
        if records.is_empty() {
            return None;
        }
        let mut buf = Vec::with_capacity(records.len() * 96);
        let mut max_revision = 0;
        for record in records {
            record.encode_frame(&mut buf);
            max_revision = max_revision.max(record.revision);
        }
        self.submitted.fetch_max(max_revision, Ordering::AcqRel);
        let count = records.len() as u32;
        let mut ticket = None;
        let mut inner = self.inner.lock();
        match inner.machine.state() {
            DurabilityState::FailStop => {
                self.lost.fetch_add(u64::from(count), Ordering::Relaxed);
            }
            DurabilityState::Healthy => {
                if self.append_healthy(&mut inner, buf, max_revision, count)
                    && matches!(self.policy, FsyncPolicy::Group { .. })
                {
                    ticket = Some(GroupTicket {
                        target: max_revision,
                        records: u64::from(count),
                    });
                }
            }
            DurabilityState::Degraded => {
                Self::stash(&mut inner, buf, max_revision, count);
                self.try_recover_locked(&mut inner, false);
            }
        }
        self.publish_state(&inner);
        ticket
    }

    fn publish_state(&self, inner: &WalInner) {
        self.state_tag
            .store(inner.machine.state_tag, Ordering::Release);
    }

    /// The group-commit rendezvous: account this append into the open
    /// window, then either **lead** — hold the window until it fills, a
    /// quiescent slice passes, or the deadline expires; issue one fsync
    /// for every waiter; hand off — or **follow** — park on the commit
    /// generation until a leader's fsync covers `target`.
    ///
    /// Returns when `target` is durable or the machine has left `Healthy`.
    /// A failed shared fsync degrades every waiter coherently: nobody's
    /// write is acknowledged as durable (`durable_revision` stays put, the
    /// durability gap covers them all) and every parked waiter wakes on
    /// the generation bump and observes the degraded state.
    pub fn group_commit(&self, ticket: GroupTicket) {
        let GroupTicket { target, records } = ticket;
        let (max_wait, max_batch) = match self.policy {
            FsyncPolicy::Group {
                max_wait_us,
                max_batch,
            } => (
                Duration::from_micros(u64::from(max_wait_us)),
                u64::from(max_batch.max(1)),
            ),
            _ => return,
        };
        let mut state = recover_poison(self.group.state.lock());
        state.fill += records;
        state.arrivals = state.arrivals.wrapping_add(1);
        loop {
            if self.durable.load(Ordering::Acquire) >= target
                || self.state() != DurabilityState::Healthy
            {
                return;
            }
            if state.leader_active {
                // Follow: park until this generation resolves. The slice
                // timeout re-checks durable/state on paths that advance
                // them without notifying (sync(), tail recovery), so a
                // missed wakeup costs latency, never a hang.
                let generation = state.generation;
                while state.generation == generation
                    && state.leader_active
                    && self.durable.load(Ordering::Acquire) < target
                    && self.state() == DurabilityState::Healthy
                {
                    let (next, _) =
                        recover_poison(self.group.cond.wait_timeout(state, GROUP_FOLLOWER_SLICE));
                    state = next;
                }
            } else {
                // Lead. Window-close conditions: filled to `max_batch`, a
                // yield with no new arrival (the burst is over), or
                // `max_wait` elapsed. Collection *yields* rather than
                // sleeping on the condvar: timed waits this short get
                // quantized to whole timer ticks on low-HZ kernels, which
                // would make a lone writer pay milliseconds per commit —
                // and on a loaded single core, a yield is exactly what
                // lets the next writer reach its own append.
                state.leader_active = true;
                let opened = Instant::now();
                while state.fill < max_batch && self.state() == DurabilityState::Healthy {
                    if opened.elapsed() >= max_wait {
                        break;
                    }
                    let before = state.arrivals;
                    drop(state);
                    std::thread::yield_now();
                    state = recover_poison(self.group.state.lock());
                    if state.arrivals == before {
                        break;
                    }
                }
                state.fill = 0;
                // Drop the rendezvous lock across the fsync so the next
                // window fills while this one commits.
                drop(state);
                self.group_fsync();
                state = recover_poison(self.group.state.lock());
                state.leader_active = false;
                state.generation = state.generation.wrapping_add(1);
                self.group.cond.notify_all();
            }
        }
    }

    /// One shared fsync covering everything appended so far. The cover
    /// point is captured under the WAL lock, but the fsync itself runs on
    /// a **fresh handle opened on the same path**: fsync flushes the
    /// inode, not the descriptor, so the frames the write handle appended
    /// are exactly what gets proven — and not holding the WAL lock across
    /// the fsync is what lets concurrent writers keep appending into the
    /// next window.
    fn group_fsync(&self) {
        let (sync_target, covered) = {
            let mut inner = self.inner.lock();
            if inner.machine.state() != DurabilityState::Healthy {
                return;
            }
            let covered = inner.group_pending;
            inner.group_pending = 0;
            (inner.appended, covered)
        };
        let result = self
            .io
            .open_append(&self.path)
            .and_then(|mut file| file.sync_data());
        match result {
            Ok(()) => {
                self.durable.fetch_max(sync_target, Ordering::AcqRel);
                self.group.batches.fetch_add(1, Ordering::Relaxed);
                self.group
                    .records
                    .fetch_add(u64::from(covered), Ordering::Relaxed);
            }
            Err(e) => {
                let mut inner = self.inner.lock();
                // The frames are physically in the file (their writes
                // succeeded) — recovery's proving fsync covers them, they
                // are not re-buffered. Only the coverage counter rolls
                // back.
                inner.group_pending += covered;
                let kind = StorageErrorKind::classify(&e, StorageErrorKind::Fsync);
                self.note_failure(&mut inner, kind, &e, sync_target);
                self.publish_state(&inner);
            }
        }
    }

    /// Group-commit fsyncs issued since open (0 unless the policy is
    /// [`FsyncPolicy::Group`]).
    pub fn fsync_batches(&self) -> u64 {
        self.group.batches.load(Ordering::Relaxed)
    }

    /// Records covered by group-commit fsyncs since open.
    pub fn group_records(&self) -> u64 {
        self.group.records.load(Ordering::Relaxed)
    }

    fn stash(inner: &mut WalInner, buf: Vec<u8>, max_revision: u64, count: u32) {
        inner.pending.extend_from_slice(&buf);
        inner.pending_high = inner.pending_high.max(max_revision);
        inner.pending_count += count;
    }

    /// Returns whether the frames landed in the file (a `Group` writer
    /// only joins the rendezvous for frames that are physically present —
    /// a failed write takes the stash-and-degrade path instead).
    fn append_healthy(
        &self,
        inner: &mut WalInner,
        buf: Vec<u8>,
        max_revision: u64,
        count: u32,
    ) -> bool {
        if let Err(e) = inner.file.write_all(&buf) {
            // The file tail is unknown past `good_len` now; the frames go to
            // the pending buffer and recovery truncates before rewriting.
            let kind = StorageErrorKind::classify(&e, StorageErrorKind::Write);
            Self::stash(inner, buf, max_revision, count);
            self.note_failure(inner, kind, &e, max_revision);
            return false;
        }
        inner.good_len += buf.len() as u64;
        inner.appended = inner.appended.max(max_revision);
        let due = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::Batch(n) => {
                inner.since_sync += count;
                inner.since_sync >= n.max(1)
            }
            FsyncPolicy::Os => false,
            FsyncPolicy::Group { .. } => {
                inner.group_pending += count;
                false
            }
        };
        if due {
            if let Err(e) = inner.file.sync_data() {
                let kind = StorageErrorKind::classify(&e, StorageErrorKind::Fsync);
                self.note_failure(inner, kind, &e, max_revision);
            } else {
                inner.since_sync = 0;
                self.durable.store(inner.appended, Ordering::Release);
            }
        }
        true
    }

    fn note_failure(
        &self,
        inner: &mut WalInner,
        kind: StorageErrorKind,
        error: &io::Error,
        revision: u64,
    ) {
        let durable = self.durable.load(Ordering::Acquire);
        let machine = &mut inner.machine;
        machine.consecutive_failures += 1;
        match &mut machine.latched {
            Some(latched) => latched.failures = machine.consecutive_failures,
            None => {
                machine.latched = Some(LatchedError {
                    kind,
                    message: error.to_string(),
                    revision,
                    failures: 1,
                })
            }
        }
        machine.next_retry_at =
            Some(Instant::now() + self.retry.backoff(machine.consecutive_failures));
        if machine.state() == DurabilityState::Healthy {
            machine.record(DurabilityState::Degraded, durable);
        }
        if machine.state() == DurabilityState::Degraded
            && machine.consecutive_failures >= self.retry.fail_stop_after.max(1)
        {
            machine.record(DurabilityState::FailStop, durable);
            machine.next_retry_at = None;
            // The pending frames will never land; count and drop them.
            self.lost
                .fetch_add(u64::from(inner.pending_count), Ordering::Relaxed);
            inner.pending = Vec::new();
            inner.pending_high = 0;
            inner.pending_count = 0;
        }
    }

    /// One recovery attempt, only while `Degraded` and (unless `force`) only
    /// once the backoff is due. Repairs the file tail (truncate to the last
    /// fully-written frame and reopen the handle — without the truncate a
    /// retried append would park duplicate frames behind the torn one, and
    /// replay would silently drop them), rewrites the pending frames, then
    /// proves durability with one fsync.
    fn try_recover_locked(&self, inner: &mut WalInner, force: bool) {
        if inner.machine.state() != DurabilityState::Degraded {
            return;
        }
        if !force {
            if let Some(at) = inner.machine.next_retry_at {
                if Instant::now() < at {
                    return;
                }
            }
        }
        let at_risk = inner.pending_high.max(inner.appended);
        if let Err(e) = self.io.truncate(&self.path, inner.good_len) {
            let kind = StorageErrorKind::classify(&e, StorageErrorKind::Recovery);
            self.note_failure(inner, kind, &e, at_risk);
            return;
        }
        match self.io.open_append(&self.path) {
            Ok(file) => inner.file = file,
            Err(e) => {
                let kind = StorageErrorKind::classify(&e, StorageErrorKind::Recovery);
                self.note_failure(inner, kind, &e, at_risk);
                return;
            }
        }
        if !inner.pending.is_empty() {
            let pending = std::mem::take(&mut inner.pending);
            if let Err(e) = inner.file.write_all(&pending) {
                let kind = StorageErrorKind::classify(&e, StorageErrorKind::Write);
                // The tail is unknown again; keep the frames, the next
                // attempt re-truncates to the same `good_len`.
                inner.pending = pending;
                self.note_failure(inner, kind, &e, at_risk);
                return;
            }
            inner.good_len += pending.len() as u64;
            inner.appended = inner.appended.max(inner.pending_high);
            inner.pending_high = 0;
            inner.pending_count = 0;
        }
        if let Err(e) = inner.file.sync_data() {
            let kind = StorageErrorKind::classify(&e, StorageErrorKind::Fsync);
            self.note_failure(inner, kind, &e, at_risk);
            return;
        }
        inner.since_sync = 0;
        inner.group_pending = 0;
        self.durable.store(inner.appended, Ordering::Release);
        let durable = inner.appended;
        let machine = &mut inner.machine;
        machine.consecutive_failures = 0;
        machine.next_retry_at = None;
        machine.latched = None;
        machine.record(DurabilityState::Healthy, durable);
    }

    fn latched_io_error(inner: &WalInner) -> io::Error {
        match &inner.machine.latched {
            Some(latched) => io::Error::other(latched.to_string()),
            None => io::Error::other("WAL not healthy"),
        }
    }

    /// Force everything appended so far to stable storage, returning the
    /// now-durable revision. While `Degraded` this is a forced recovery
    /// attempt (backoff ignored — the caller explicitly asked).
    ///
    /// # Errors
    ///
    /// The underlying fsync error, or the latched error when the WAL is
    /// (still) not healthy.
    pub fn sync(&self) -> io::Result<u64> {
        let mut inner = self.inner.lock();
        match inner.machine.state() {
            DurabilityState::Healthy => {
                if let Err(e) = inner.file.sync_data() {
                    let kind = StorageErrorKind::classify(&e, StorageErrorKind::Fsync);
                    let revision = inner.appended;
                    self.note_failure(&mut inner, kind, &e, revision);
                    self.publish_state(&inner);
                    return Err(e);
                }
                inner.since_sync = 0;
                inner.group_pending = 0;
                self.durable.store(inner.appended, Ordering::Release);
                Ok(self.durable.load(Ordering::Acquire))
            }
            DurabilityState::Degraded => {
                self.try_recover_locked(&mut inner, true);
                self.publish_state(&inner);
                if inner.machine.state() == DurabilityState::Healthy {
                    Ok(self.durable.load(Ordering::Acquire))
                } else {
                    Err(Self::latched_io_error(&inner))
                }
            }
            DurabilityState::FailStop => Err(Self::latched_io_error(&inner)),
        }
    }

    /// Highest revision known forced to stable storage — the revision the
    /// recovery invariant is stated against. Advances **only** on a
    /// successful fsync of successfully written frames, in every machine
    /// state.
    pub fn durable_revision(&self) -> u64 {
        self.durable.load(Ordering::Acquire)
    }

    /// Highest revision appended to the file (durable or not).
    pub fn appended_revision(&self) -> u64 {
        self.inner.lock().appended
    }

    /// The current durability state (lock-free; serving paths poll this).
    pub fn state(&self) -> DurabilityState {
        DurabilityState::from_tag(self.state_tag.load(Ordering::Acquire))
    }

    /// `submitted - durable`: how many revisions of acknowledged writes are
    /// not yet proven on stable storage (lock-free).
    pub fn durability_gap(&self) -> u64 {
        self.submitted
            .load(Ordering::Acquire)
            .saturating_sub(self.durable.load(Ordering::Acquire))
    }

    /// The current episode's structured latched error, if the WAL is not
    /// healthy. Cleared when recovery returns the machine to `Healthy`;
    /// the transition history ([`Wal::transitions`]) keeps the forensics.
    pub fn last_error(&self) -> Option<LatchedError> {
        self.inner.lock().machine.latched.clone()
    }

    /// Every state-machine transition since open, in order.
    pub fn transitions(&self) -> Vec<DurabilityTransition> {
        self.inner.lock().machine.transitions.clone()
    }

    /// A point-in-time durability summary.
    pub fn status(&self) -> DurabilityStatus {
        let inner = self.inner.lock();
        let durable_revision = self.durable.load(Ordering::Acquire);
        let submitted_revision = self.submitted.load(Ordering::Acquire);
        DurabilityStatus {
            durable: true,
            state: inner.machine.state(),
            durable_revision,
            submitted_revision,
            gap: submitted_revision.saturating_sub(durable_revision),
            latched: inner.machine.latched.clone(),
            transitions: inner.machine.transitions.len(),
            lost_records: self.lost.load(Ordering::Relaxed),
            fsync_batches: self.group.batches.load(Ordering::Relaxed),
            group_records: self.group.records.load(Ordering::Relaxed),
        }
    }

    /// Rewrite the log keeping only records with revision strictly above
    /// `horizon` (they are the ones not covered by the snapshot at that
    /// horizon), then swap the rewritten file in atomically and continue
    /// appending to it. Returns how many records were retained. Refuses to
    /// run unless the machine is (or recovers to) `Healthy` — compaction
    /// rewrites the log and must not race a sick device.
    fn compact(&self, path: &Path, horizon: u64) -> io::Result<usize> {
        let mut inner = self.inner.lock();
        if inner.machine.state() == DurabilityState::Degraded {
            self.try_recover_locked(&mut inner, true);
            self.publish_state(&inner);
        }
        if inner.machine.state() != DurabilityState::Healthy {
            return Err(Self::latched_io_error(&inner));
        }
        // Make the current contents readable-back and durable before the
        // rewrite; everything we are about to drop is covered by the
        // already-renamed snapshot.
        if let Err(e) = inner.file.sync_data() {
            let kind = StorageErrorKind::classify(&e, StorageErrorKind::Fsync);
            let revision = inner.appended;
            self.note_failure(&mut inner, kind, &e, revision);
            self.publish_state(&inner);
            return Err(e);
        }
        inner.since_sync = 0;
        inner.group_pending = 0;
        self.durable.store(inner.appended, Ordering::Release);
        let replay = read_wal_with(&*self.io, path)?;
        let mut buf = Vec::new();
        let mut retained = 0usize;
        for record in &replay.records {
            if record.revision > horizon {
                record.encode_frame(&mut buf);
                retained += 1;
            }
        }
        let tmp = path.with_extension("kfwal.tmp");
        self.io.write_file(&tmp, &buf)?;
        self.io.rename(&tmp, path)?;
        self.io.sync_parent_dir(path);
        inner.good_len = buf.len() as u64;
        match self.io.open_append(path) {
            Ok(file) => {
                inner.file = file;
                inner.since_sync = 0;
                Ok(retained)
            }
            Err(e) => {
                // The held handle points at the renamed-away inode; degrade
                // so recovery reopens it before anything advances `durable`.
                let kind = StorageErrorKind::classify(&e, StorageErrorKind::Recovery);
                let revision = inner.appended;
                self.note_failure(&mut inner, kind, &e, revision);
                self.publish_state(&inner);
                Err(e)
            }
        }
    }
}

/// A decoded snapshot: the revision horizon it was cut at, plus every
/// object as `(resource_version, body)`.
#[derive(Debug, Default)]
pub struct SnapshotData {
    /// The store revision at the start of the snapshot scan. Every write at
    /// or below this revision is fully reflected; the WAL suffix above it
    /// replays the rest.
    pub revision: u64,
    /// The stored objects (kind/namespace/name are re-derived from the body
    /// on load, exactly as admission derives them).
    pub objects: Vec<(u64, Value)>,
}

/// Write a snapshot of `objects` at `revision` through an explicit I/O:
/// temp file, fsync, atomic rename. The payload is CRC-sealed, so a
/// bit-flipped snapshot is rejected at load instead of resurrecting corrupt
/// objects.
///
/// # Errors
///
/// Filesystem errors only.
pub fn write_snapshot_with(
    io: &dyn StorageIo,
    path: &Path,
    revision: u64,
    objects: &[Arc<StoredObject>],
) -> io::Result<()> {
    let mut payload = Vec::with_capacity(objects.len() * 256 + 16);
    binary::put_u64(&mut payload, revision);
    binary::put_u64(&mut payload, objects.len() as u64);
    for stored in objects {
        binary::put_u64(&mut payload, stored.resource_version);
        binary::put_value(&mut payload, stored.object.body());
    }
    let mut out = Vec::with_capacity(payload.len() + 12);
    out.extend_from_slice(SNAPSHOT_MAGIC);
    binary::put_u32(&mut out, binary::crc32(&payload));
    out.extend_from_slice(&payload);
    let tmp = path.with_extension("kfsnap.tmp");
    io.write_file(&tmp, &out)?;
    io.rename(&tmp, path)?;
    io.sync_parent_dir(path);
    Ok(())
}

/// [`write_snapshot_with`] over the real filesystem.
///
/// # Errors
///
/// Filesystem errors only.
pub fn write_snapshot(path: &Path, revision: u64, objects: &[Arc<StoredObject>]) -> io::Result<()> {
    write_snapshot_with(&RealIo, path, revision, objects)
}

/// Load a snapshot through an explicit I/O; `Ok(None)` when the file does
/// not exist.
///
/// # Errors
///
/// Filesystem errors, or [`io::ErrorKind::InvalidData`] when the magic,
/// checksum or payload decode fails. The recovery path quarantines on
/// `InvalidData` instead of refusing to boot — see [`Persistence::open`].
pub fn read_snapshot_with(io: &dyn StorageIo, path: &Path) -> io::Result<Option<SnapshotData>> {
    let bytes = match io.read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let invalid = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_owned());
    if bytes.len() < 12 || &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(invalid("snapshot magic mismatch"));
    }
    let crc = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let payload = &bytes[12..];
    if binary::crc32(payload) != crc {
        return Err(invalid("snapshot checksum mismatch"));
    }
    let mut cursor = Cursor::new(payload);
    let mut parse = || -> Result<SnapshotData, kf_yaml::binary::BinaryError> {
        let revision = cursor.get_u64()?;
        let count = cursor.get_u64()? as usize;
        let mut objects = Vec::with_capacity(count.min(payload.len()));
        for _ in 0..count {
            let resource_version = cursor.get_u64()?;
            let body = cursor.get_value()?;
            objects.push((resource_version, body));
        }
        Ok(SnapshotData { revision, objects })
    };
    parse().map(Some).map_err(|e| invalid(&e.to_string()))
}

/// [`read_snapshot_with`] over the real filesystem.
///
/// # Errors
///
/// Filesystem errors, or [`io::ErrorKind::InvalidData`] on corruption.
pub fn read_snapshot(path: &Path) -> io::Result<Option<SnapshotData>> {
    read_snapshot_with(&RealIo, path)
}

/// A decoded per-shard snapshot segment: which store shard it covers, the
/// horizon it was cut at, and the shard's objects.
#[derive(Debug, Default)]
pub struct SegmentData {
    /// The store shard this segment snapshots.
    pub shard: usize,
    /// The checkpoint horizon the segment was cut at. Every write to this
    /// shard at or below the horizon is reflected; the WAL suffix above it
    /// replays the rest.
    pub horizon: u64,
    /// The shard's objects as `(resource_version, body)`.
    pub objects: Vec<(u64, Value)>,
}

/// What one manifest line vouches for: shard `shard`'s segment file is
/// live, holding `objects` objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManifestEntry {
    /// The store shard index.
    pub shard: usize,
    /// Objects in the segment when its manifest was written (telemetry —
    /// the segment's own header is the integrity truth).
    pub objects: u64,
}

/// A decoded snapshot manifest: the commit point of an incremental
/// checkpoint. Lists the live segments and the horizon the checkpoint
/// covered; rotated `current → prev` on every checkpoint so a torn current
/// manifest falls back to the last complete one.
#[derive(Debug, Clone, Default)]
pub struct ManifestData {
    /// The checkpoint horizon (the WAL was compacted to this revision).
    pub horizon: u64,
    /// Store shard count at write time (a geometry check for readers).
    pub shard_count: usize,
    /// The live segments.
    pub entries: Vec<ManifestEntry>,
}

/// Write one shard's snapshot segment: temp file, fsync, atomic rename —
/// the same crash discipline as the monolithic snapshot, per shard.
///
/// # Errors
///
/// Filesystem errors only.
pub fn write_segment_with(
    io: &dyn StorageIo,
    dir: &Path,
    shard: usize,
    horizon: u64,
    objects: &[Arc<StoredObject>],
) -> io::Result<()> {
    let mut payload = Vec::with_capacity(objects.len() * 256 + 24);
    binary::put_u64(&mut payload, shard as u64);
    binary::put_u64(&mut payload, horizon);
    binary::put_u64(&mut payload, objects.len() as u64);
    for stored in objects {
        binary::put_u64(&mut payload, stored.resource_version);
        binary::put_value(&mut payload, stored.object.body());
    }
    let mut out = Vec::with_capacity(payload.len() + 12);
    out.extend_from_slice(SEGMENT_MAGIC);
    binary::put_u32(&mut out, binary::crc32(&payload));
    out.extend_from_slice(&payload);
    let name = segment_file(shard);
    let tmp = dir.join(format!("{name}.tmp"));
    io.write_file(&tmp, &out)?;
    io.rename(&tmp, &dir.join(name))?;
    io.sync_parent_dir(dir);
    Ok(())
}

/// Load one snapshot segment; `Ok(None)` when the file does not exist.
///
/// # Errors
///
/// Filesystem errors, or [`io::ErrorKind::InvalidData`] when the magic,
/// checksum or payload decode fails — recovery quarantines that segment
/// and serves the rest (its records are still in the un-compacted WAL or
/// were already lost with the device, never silently resurrected).
pub fn read_segment_with(io: &dyn StorageIo, path: &Path) -> io::Result<Option<SegmentData>> {
    let bytes = match io.read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let invalid = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_owned());
    if bytes.len() < 12 || &bytes[..8] != SEGMENT_MAGIC {
        return Err(invalid("segment magic mismatch"));
    }
    let crc = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let payload = &bytes[12..];
    if binary::crc32(payload) != crc {
        return Err(invalid("segment checksum mismatch"));
    }
    let mut cursor = Cursor::new(payload);
    let mut parse = || -> Result<SegmentData, kf_yaml::binary::BinaryError> {
        let shard = cursor.get_u64()? as usize;
        let horizon = cursor.get_u64()?;
        let count = cursor.get_u64()? as usize;
        let mut objects = Vec::with_capacity(count.min(payload.len()));
        for _ in 0..count {
            let resource_version = cursor.get_u64()?;
            let body = cursor.get_value()?;
            objects.push((resource_version, body));
        }
        Ok(SegmentData {
            shard,
            horizon,
            objects,
        })
    };
    parse().map(Some).map_err(|e| invalid(&e.to_string()))
}

/// Write the snapshot manifest with rotation: the payload goes to a temp
/// file (fsync'd), the current manifest (if any) is renamed to
/// [`MANIFEST_PREV_FILE`], then the temp renames into place and the
/// directory is fsync'd. A crash between the two renames leaves `prev` +
/// the fsync'd temp — recovery falls back to `prev` and replays a longer
/// WAL suffix, losing nothing (segments on disk are always at least as new
/// as any manifest that lists them).
///
/// # Errors
///
/// Filesystem errors only.
pub fn write_manifest_with(
    io: &dyn StorageIo,
    dir: &Path,
    manifest: &ManifestData,
) -> io::Result<()> {
    let mut payload = Vec::with_capacity(manifest.entries.len() * 16 + 24);
    binary::put_u64(&mut payload, manifest.horizon);
    binary::put_u64(&mut payload, manifest.shard_count as u64);
    binary::put_u64(&mut payload, manifest.entries.len() as u64);
    for entry in &manifest.entries {
        binary::put_u64(&mut payload, entry.shard as u64);
        binary::put_u64(&mut payload, entry.objects);
    }
    let mut out = Vec::with_capacity(payload.len() + 12);
    out.extend_from_slice(MANIFEST_MAGIC);
    binary::put_u32(&mut out, binary::crc32(&payload));
    out.extend_from_slice(&payload);
    let current = dir.join(MANIFEST_FILE);
    let tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
    io.write_file(&tmp, &out)?;
    match io.rename(&current, &dir.join(MANIFEST_PREV_FILE)) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    io.rename(&tmp, &current)?;
    io.sync_parent_dir(dir);
    Ok(())
}

/// Load a snapshot manifest; `Ok(None)` when the file does not exist.
///
/// # Errors
///
/// Filesystem errors, or [`io::ErrorKind::InvalidData`] on a torn/corrupt
/// manifest — recovery then falls back to [`MANIFEST_PREV_FILE`], and past
/// that to probing the (self-validating) segment files directly.
pub fn read_manifest_with(io: &dyn StorageIo, path: &Path) -> io::Result<Option<ManifestData>> {
    let bytes = match io.read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let invalid = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_owned());
    if bytes.len() < 12 || &bytes[..8] != MANIFEST_MAGIC {
        return Err(invalid("manifest magic mismatch"));
    }
    let crc = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let payload = &bytes[12..];
    if binary::crc32(payload) != crc {
        return Err(invalid("manifest checksum mismatch"));
    }
    let mut cursor = Cursor::new(payload);
    let mut parse = || -> Result<ManifestData, kf_yaml::binary::BinaryError> {
        let horizon = cursor.get_u64()?;
        let shard_count = cursor.get_u64()? as usize;
        let count = cursor.get_u64()? as usize;
        let mut entries = Vec::with_capacity(count.min(payload.len()));
        for _ in 0..count {
            let shard = cursor.get_u64()? as usize;
            let objects = cursor.get_u64()?;
            entries.push(ManifestEntry { shard, objects });
        }
        Ok(ManifestData {
            horizon,
            shard_count,
            entries,
        })
    };
    parse().map(Some).map_err(|e| invalid(&e.to_string()))
}

/// What recovery found and did.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Revision horizon of the loaded snapshot (0: none).
    pub snapshot_revision: u64,
    /// Objects loaded from the snapshot.
    pub snapshot_objects: usize,
    /// Intact WAL records read.
    pub wal_records: usize,
    /// WAL records whose effect was applied (revision above the stored
    /// object's — the rest were already covered by the snapshot).
    pub replayed: usize,
    /// The revision the store resumed at (and the watch journals' sealed
    /// compaction horizon).
    pub recovered_revision: u64,
    /// Objects in the recovered store.
    pub live_objects: usize,
    /// `Some` when a torn/corrupt WAL tail was detected and truncated.
    pub torn_tail: Option<TornTail>,
    /// `Some` when a corrupt snapshot artifact (legacy monolithic
    /// snapshot, manifest, or segment) was quarantined — renamed to this
    /// path, the first one when several — and boot recovered without it.
    pub snapshot_quarantined: Option<PathBuf>,
    /// Per-shard snapshot segments loaded (0 when boot used a legacy
    /// monolithic snapshot or started empty).
    pub segments_loaded: usize,
    /// `true` when the current manifest was unreadable and recovery fell
    /// back to the previous manifest or to probing the segment files
    /// directly (a longer WAL suffix replays the difference).
    pub manifest_fallback: bool,
    /// Worker threads the shard-partitioned replay ran on (1: sequential).
    pub replay_workers: usize,
}

/// What a checkpoint wrote.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointReport {
    /// The revision horizon the snapshot covers (and the WAL was compacted
    /// to).
    pub revision: u64,
    /// Objects written into rewritten segments this checkpoint (the first
    /// checkpoint of a store rewrites everything; steady-state rewrites
    /// only the dirty shards' objects).
    pub objects: usize,
    /// WAL records retained (revision above the horizon).
    pub wal_retained: usize,
    /// Attempts the checkpoint took (1 when the first try succeeded).
    pub attempts: u32,
    /// Store shards claimed as dirty and rewritten — the incremental
    /// cost; `total_shards` is the O(store) cost this saved.
    pub dirty_shards: usize,
    /// Total store shards.
    pub total_shards: usize,
}

/// An open persistence directory: the handle that checkpoints a store and
/// owns its WAL.
#[derive(Debug)]
pub struct Persistence {
    dir: PathBuf,
    wal: Arc<Wal>,
    io: Arc<dyn StorageIo>,
}

/// Whole-checkpoint attempts before [`Persistence::checkpoint`] gives up.
const CHECKPOINT_ATTEMPTS: u32 = 3;

/// Below this many seed objects + WAL records, replay stays sequential —
/// spawning workers would cost more than the partitioned decode saves.
const PARALLEL_REPLAY_MIN_WORK: usize = 1024;

/// Worker threads for shard-partitioned replay: `KF_RECOVERY_WORKERS` when
/// set (> 0), else the machine's available parallelism, capped at the
/// store shard count.
fn replay_worker_count(total_work: usize) -> usize {
    if total_work < PARALLEL_REPLAY_MIN_WORK {
        return 1;
    }
    std::env::var("KF_RECOVERY_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&w| w > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .min(store_shards())
}

/// The store's shard count — recovery partitions by the same geometry the
/// store hashes into (`crate::store::SHARDS`).
fn store_shards() -> usize {
    crate::store::SHARDS
}

/// One shard's replay inputs: raw segment seeds, pre-parsed legacy-snapshot
/// seeds, and the shard's WAL records in file order.
type ShardReplayJob = (Vec<(u64, Value)>, Vec<(u64, K8sObject)>, Vec<WalRecord>);

/// One replay partition's result.
struct ShardReplayOutcome {
    objects: Vec<StoredObject>,
    max_revision: u64,
    replayed: usize,
}

/// Rebuild one store shard's keyed state: segment seeds (un-parsed bodies)
/// and pre-parsed legacy-snapshot seeds first — highest resource version
/// wins where sources overlap — then the shard's WAL records in file order
/// under the revision guard. Runs on a replay worker thread; the
/// partitioning by [`crate::store::shard_index_raw`] guarantees every
/// write to one key lands in exactly one partition, so the guard sees the
/// key's full history.
fn replay_shard(
    raw_seeds: Vec<(u64, Value)>,
    parsed_seeds: Vec<(u64, K8sObject)>,
    records: Vec<WalRecord>,
) -> io::Result<ShardReplayOutcome> {
    let invalid = |what: String| io::Error::new(io::ErrorKind::InvalidData, what);
    type ReplayKey = (usize, String, String);
    let mut state: std::collections::HashMap<ReplayKey, (u64, Option<K8sObject>)> =
        std::collections::HashMap::with_capacity(raw_seeds.len() + parsed_seeds.len());
    let mut max_revision = 0u64;
    let mut replayed = 0usize;
    for (resource_version, body) in raw_seeds {
        let object = K8sObject::from_shared(Arc::new(body))
            .map_err(|e| invalid(format!("snapshot object: {e}")))?;
        max_revision = max_revision.max(resource_version);
        let key = (
            object.kind().index(),
            object.namespace().to_owned(),
            object.name().to_owned(),
        );
        let entry = state.entry(key).or_insert((0, None));
        if resource_version > entry.0 {
            *entry = (resource_version, Some(object));
        }
    }
    for (resource_version, object) in parsed_seeds {
        max_revision = max_revision.max(resource_version);
        let key = (
            object.kind().index(),
            object.namespace().to_owned(),
            object.name().to_owned(),
        );
        let entry = state.entry(key).or_insert((0, None));
        if resource_version > entry.0 {
            *entry = (resource_version, Some(object));
        }
    }
    for record in records {
        max_revision = max_revision.max(record.revision);
        let key = (
            record.kind.index(),
            record.namespace.clone(),
            record.name.clone(),
        );
        let seen = state.get(&key).map(|(rv, _)| *rv).unwrap_or(0);
        if record.revision <= seen {
            continue;
        }
        replayed += 1;
        match record.op {
            WatchEventKind::Deleted => {
                state.insert(key, (record.revision, None));
            }
            _ => {
                let body = record
                    .body
                    .ok_or_else(|| invalid("WAL write record without body".to_owned()))?;
                let object = K8sObject::from_shared(body)
                    .map_err(|e| invalid(format!("WAL object: {e}")))?;
                state.insert(key, (record.revision, Some(object)));
            }
        }
    }
    let objects: Vec<StoredObject> = state
        .into_values()
        .filter_map(|(resource_version, object)| {
            object.map(|object| StoredObject {
                object,
                resource_version,
            })
        })
        .collect();
    Ok(ShardReplayOutcome {
        objects,
        max_revision,
        replayed,
    })
}

impl Persistence {
    /// Open (or create) the persistence directory and recover a store from
    /// it over the real filesystem — see [`Persistence::open_with_io`].
    ///
    /// # Errors
    ///
    /// Those of [`Persistence::open_with_io`].
    pub fn open(config: PersistConfig) -> io::Result<(ObjectStore, Persistence, RecoveryReport)> {
        Persistence::open_with_io(config, Arc::new(RealIo))
    }

    /// Open (or create) the persistence directory through an explicit
    /// [`StorageIo`] and recover a store from it: load the checkpoint
    /// manifest (falling back to the previous complete manifest when the
    /// current one is torn, and to probing the segment files directly when
    /// neither survives), load every valid per-shard segment plus a legacy
    /// monolithic snapshot if present (quarantining corrupt artifacts),
    /// replay the WAL suffix (truncating a torn tail) partitioned by store
    /// shard across worker threads, seed the store, seal the watch horizon
    /// at the recovered revision, and attach the WAL so every subsequent
    /// write is logged.
    ///
    /// # Errors
    ///
    /// Filesystem errors; [`io::ErrorKind::InvalidData`] only when a WAL or
    /// snapshot object body no longer parses as an object (a corrupt
    /// snapshot/segment/manifest *file* is quarantined instead — see
    /// [`RecoveryReport::snapshot_quarantined`]).
    pub fn open_with_io(
        config: PersistConfig,
        io: Arc<dyn StorageIo>,
    ) -> io::Result<(ObjectStore, Persistence, RecoveryReport)> {
        io.create_dir_all(&config.dir)?;
        let wal_path = config.dir.join(WAL_FILE);
        let mut report = RecoveryReport::default();

        // A corrupt artifact must not brick the boot: quarantine the file
        // for forensics and recover from what remains (compaction only ever
        // drops records a *successfully written* checkpoint covers, so the
        // WAL still holds everything after the last good horizon).
        let mut quarantine = |io: &dyn StorageIo, path: &Path| -> io::Result<()> {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("artifact");
            let target = path.with_file_name(format!("{name}.corrupt"));
            io.rename(path, &target)?;
            io.sync_parent_dir(path);
            report.snapshot_quarantined.get_or_insert(target);
            Ok(())
        };

        // Manifest chain: current → previous complete → none. The rotation
        // in `write_manifest_with` renames current → prev before publishing
        // the new current, so a crash mid-checkpoint leaves prev intact.
        let manifest_path = config.dir.join(MANIFEST_FILE);
        let mut manifest = match read_manifest_with(&*io, &manifest_path) {
            Ok(manifest) => manifest,
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                quarantine(&*io, &manifest_path)?;
                None
            }
            Err(e) => return Err(e),
        };
        if manifest.is_none() {
            let prev_path = config.dir.join(MANIFEST_PREV_FILE);
            match read_manifest_with(&*io, &prev_path) {
                Ok(Some(prev)) => {
                    report.manifest_fallback = true;
                    manifest = Some(prev);
                }
                Ok(None) => {}
                Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                    quarantine(&*io, &prev_path)?;
                }
                Err(e) => return Err(e),
            }
        }

        // Segments are self-validating (magic + CRC + embedded shard and
        // horizon), so probe every shard slot directly rather than trusting
        // the manifest's entry list — this also recovers the case where
        // both manifests are torn but the segments survived.
        let shards = store_shards();
        let mut raw_seeds: Vec<Vec<(u64, Value)>> = (0..shards).map(|_| Vec::new()).collect();
        let mut segment_horizon = 0u64;
        for shard_no in 0..shards {
            let path = config.dir.join(segment_file(shard_no));
            match read_segment_with(&*io, &path) {
                Ok(Some(segment)) => {
                    report.segments_loaded += 1;
                    segment_horizon = segment_horizon.max(segment.horizon);
                    // Route by the segment's own header: the objects inside
                    // hash to `segment.shard`, and replay's revision guard
                    // needs every record for a key in one partition.
                    let slot = segment.shard.min(shards - 1);
                    raw_seeds[slot].extend(segment.objects);
                }
                Ok(None) => {}
                Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                    quarantine(&*io, &path)?;
                }
                Err(e) => return Err(e),
            }
        }

        // Legacy monolithic snapshot (pre-incremental checkpoints). A
        // directory last checkpointed by an older build seeds from it; the
        // first incremental checkpoint retires it.
        let snapshot_path = config.dir.join(SNAPSHOT_FILE);
        let legacy = match read_snapshot_with(&*io, &snapshot_path) {
            Ok(snapshot) => snapshot.unwrap_or_default(),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                quarantine(&*io, &snapshot_path)?;
                SnapshotData::default()
            }
            Err(e) => return Err(e),
        };

        let snapshot_revision = manifest
            .as_ref()
            .map(|m| m.horizon)
            .unwrap_or(0)
            .max(segment_horizon)
            .max(legacy.revision);
        report.snapshot_revision = snapshot_revision;
        report.snapshot_objects =
            raw_seeds.iter().map(Vec::len).sum::<usize>() + legacy.objects.len();

        let replay = recover_wal_with(&*io, &wal_path)?;
        report.wal_records = replay.records.len();
        report.torn_tail = replay.torn;

        // Partition the remaining serial work by store shard. Legacy
        // snapshot bodies are parsed here (the monolithic format does not
        // record shard geometry); segment seeds and WAL records route by
        // the same hash the store uses, so each worker owns every source
        // of truth for its keys.
        let invalid = |what: String| io::Error::new(io::ErrorKind::InvalidData, what);
        let mut parsed_seeds: Vec<Vec<(u64, K8sObject)>> =
            (0..shards).map(|_| Vec::new()).collect();
        for (resource_version, body) in legacy.objects {
            let object = K8sObject::from_shared(Arc::new(body))
                .map_err(|e| invalid(format!("snapshot object: {e}")))?;
            let slot = crate::store::shard_index_raw(
                object.kind().index(),
                object.namespace(),
                object.name(),
            );
            parsed_seeds[slot].push((resource_version, object));
        }
        let mut shard_records: Vec<Vec<WalRecord>> = (0..shards).map(|_| Vec::new()).collect();
        for record in replay.records {
            let slot =
                crate::store::shard_index_raw(record.kind.index(), &record.namespace, &record.name);
            shard_records[slot].push(record);
        }

        let total_work = report.snapshot_objects + report.wal_records;
        let workers = replay_worker_count(total_work);
        report.replay_workers = workers;
        let jobs: Vec<ShardReplayJob> = raw_seeds
            .into_iter()
            .zip(parsed_seeds)
            .zip(shard_records)
            .map(|((raw, parsed), records)| (raw, parsed, records))
            .collect();
        let outcomes: Vec<ShardReplayOutcome> = if workers <= 1 {
            jobs.into_iter()
                .map(|(raw, parsed, records)| replay_shard(raw, parsed, records))
                .collect::<io::Result<Vec<_>>>()?
        } else {
            let mut buckets: Vec<Vec<_>> = (0..workers).map(|_| Vec::new()).collect();
            for (shard_no, job) in jobs.into_iter().enumerate() {
                buckets[shard_no % workers].push(job);
            }
            std::thread::scope(|scope| {
                let handles: Vec<_> = buckets
                    .into_iter()
                    .map(|bucket| {
                        scope.spawn(move || {
                            bucket
                                .into_iter()
                                .map(|(raw, parsed, records)| replay_shard(raw, parsed, records))
                                .collect::<io::Result<Vec<_>>>()
                        })
                    })
                    .collect();
                let mut all = Vec::new();
                for handle in handles {
                    all.extend(handle.join().expect("replay worker panicked")?);
                }
                Ok::<_, io::Error>(all)
            })?
        };

        let mut recovered_revision = snapshot_revision;
        let mut objects = Vec::new();
        for outcome in outcomes {
            recovered_revision = recovered_revision.max(outcome.max_revision);
            report.replayed += outcome.replayed;
            objects.extend(outcome.objects);
        }
        report.live_objects = objects.len();
        report.recovered_revision = recovered_revision;

        let mut store =
            ObjectStore::with_journal_config(config.journal_capacity, config.journal_shards);
        store.restore(objects, recovered_revision);
        let wal = Arc::new(Wal::open_with(
            Arc::clone(&io),
            &wal_path,
            config.fsync,
            recovered_revision,
            config.retry,
        )?);
        store.attach_wal(Arc::clone(&wal));
        Ok((
            store,
            Persistence {
                dir: config.dir,
                wal,
                io,
            },
            report,
        ))
    }

    /// The WAL this directory's store appends to.
    pub fn wal(&self) -> &Arc<Wal> {
        &self.wal
    }

    /// The persistence directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Checkpoint: rewrite only the store shards dirtied since the last
    /// checkpoint into per-shard segment files, publish a manifest over
    /// them at the current revision horizon, then compact the WAL to the
    /// records above it — O(dirty) instead of O(store). Safe to run
    /// concurrently with writes — the horizon is read *before* the dirty
    /// set is claimed, every record at or below it is fully reflected by
    /// the shard scans (the dirty flag is raised under the shard lock
    /// before revision allocation), and replay's revision guard absorbs
    /// the overlap above it. A shard left unclaimed has seen no writes
    /// since the checkpoint that last claimed it, so its existing segment
    /// already covers every compacted record that touches it. The whole
    /// attempt retries (with the WAL's backoff) a bounded number of times,
    /// because a transient fault mid-checkpoint is invisible to clients —
    /// only the checkpoint horizon lags; a failed attempt re-marks the
    /// claimed shards dirty so no write is ever dropped from the next
    /// checkpoint.
    ///
    /// # Errors
    ///
    /// Filesystem errors writing the segments or manifest or rewriting the
    /// WAL, after retries are exhausted.
    pub fn checkpoint(&self, store: &ObjectStore) -> io::Result<CheckpointReport> {
        let mut last = None;
        for attempt in 1..=CHECKPOINT_ATTEMPTS {
            match self.try_checkpoint(store, attempt) {
                Ok(report) => return Ok(report),
                Err(e) => {
                    if attempt < CHECKPOINT_ATTEMPTS {
                        std::thread::sleep(self.wal.retry.backoff(attempt));
                    }
                    last = Some(e);
                }
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    fn try_checkpoint(&self, store: &ObjectStore, attempt: u32) -> io::Result<CheckpointReport> {
        // Horizon first, claim second: any write that allocates a revision
        // at or below the horizon raised its dirty flag before allocating,
        // so the claim below sees it and its shard is rewritten.
        let horizon = StoreBackend::revision(store);
        let claimed = store.take_dirty_shards();
        match self.write_increment(store, horizon, &claimed, attempt) {
            Ok(report) => Ok(report),
            Err(e) => {
                // The claimed shards were not (all) published at this
                // horizon; put them back so the retry rewrites them.
                store.remark_dirty(&claimed);
                Err(e)
            }
        }
    }

    fn write_increment(
        &self,
        store: &ObjectStore,
        horizon: u64,
        claimed: &[usize],
        attempt: u32,
    ) -> io::Result<CheckpointReport> {
        // Rewrite each claimed shard's segment (empty shards included — an
        // emptied shard must publish its emptiness, or deletions would
        // resurrect on replay from a stale segment).
        let mut objects = 0usize;
        let mut written = Vec::with_capacity(claimed.len());
        for &shard_no in claimed {
            let snapshot = store.snapshot_shard(shard_no);
            objects += snapshot.len();
            written.push((shard_no, snapshot.len() as u64));
            write_segment_with(&*self.io, &self.dir, shard_no, horizon, &snapshot)?;
        }

        // The manifest enumerates whichever segments exist on disk now:
        // the ones just rewritten plus clean shards' earlier segments.
        let shards = store_shards();
        let previous =
            read_manifest_with(&*self.io, &self.dir.join(MANIFEST_FILE)).unwrap_or_default();
        let mut entries = Vec::new();
        for shard_no in 0..shards {
            if let Some(&(_, count)) = written.iter().find(|(no, _)| *no == shard_no) {
                entries.push(ManifestEntry {
                    shard: shard_no,
                    objects: count,
                });
                continue;
            }
            let path = self.dir.join(segment_file(shard_no));
            match self.io.file_len(&path) {
                Ok(_) => {
                    let carried = previous
                        .as_ref()
                        .and_then(|m| m.entries.iter().find(|e| e.shard == shard_no))
                        .map(|e| e.objects)
                        .unwrap_or(0);
                    entries.push(ManifestEntry {
                        shard: shard_no,
                        objects: carried,
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        let manifest = ManifestData {
            horizon,
            shard_count: shards,
            entries,
        };
        write_manifest_with(&*self.io, &self.dir, &manifest)?;

        // First incremental checkpoint over a legacy directory: the
        // manifest + segments now cover everything the monolithic snapshot
        // held, so retire it (rename, not delete — forensics-friendly and
        // crash-atomic like every other publish here).
        let legacy = self.dir.join(SNAPSHOT_FILE);
        match self
            .io
            .rename(&legacy, &legacy.with_extension("kfsnap.superseded"))
        {
            Ok(()) => self.io.sync_parent_dir(&legacy),
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }

        let wal_retained = self.wal.compact(&self.dir.join(WAL_FILE), horizon)?;
        Ok(CheckpointReport {
            revision: horizon,
            objects,
            wal_retained,
            attempts: attempt,
            dirty_shards: claimed.len(),
            total_shards: shards,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage_io::{FaultSchedule, FaultyIo};
    use std::fs;
    use std::sync::atomic::AtomicUsize;

    fn temp_dir(label: &str) -> PathBuf {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "kf-persist-{label}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn pod(namespace: &str, name: &str, image: &str) -> K8sObject {
        K8sObject::from_yaml(&format!(
            "apiVersion: v1\nkind: Pod\nmetadata:\n  name: {name}\n  namespace: {namespace}\nspec:\n  containers:\n    - name: app\n      image: {image}\n"
        ))
        .expect("pod parses")
    }

    fn record(revision: u64, op: WatchEventKind, namespace: &str, name: &str) -> WalRecord {
        let body = (op != WatchEventKind::Deleted)
            .then(|| Arc::clone(pod(namespace, name, "nginx").shared_body()));
        WalRecord {
            revision,
            kind: ResourceKind::Pod,
            op,
            namespace: namespace.to_owned(),
            name: name.to_owned(),
            body,
        }
    }

    fn faulty_wal(dir: &Path, spec: &str, policy: FsyncPolicy, fail_stop_after: u32) -> Wal {
        let io = Arc::new(FaultyIo::over_real(
            FaultSchedule::parse(spec).expect("spec parses"),
        ));
        Wal::open_with(
            io,
            &dir.join(WAL_FILE),
            policy,
            0,
            RetryPolicy::immediate(fail_stop_after),
        )
        .expect("open")
    }

    #[test]
    fn wal_records_round_trip_through_the_file() {
        let dir = temp_dir("roundtrip");
        let path = dir.join(WAL_FILE);
        let wal = Wal::open(&path, FsyncPolicy::Always, 0).expect("open");
        let records = vec![
            record(1, WatchEventKind::Added, "default", "a"),
            record(2, WatchEventKind::Modified, "default", "a"),
            record(3, WatchEventKind::Deleted, "default", "a"),
        ];
        wal.append(&records);
        assert_eq!(wal.durable_revision(), 3);
        assert!(wal.last_error().is_none());
        assert_eq!(wal.state(), DurabilityState::Healthy);
        assert_eq!(wal.durability_gap(), 0);
        let replay = read_wal(&path).expect("read");
        assert!(replay.torn.is_none());
        assert_eq!(replay.records.len(), 3);
        for (got, want) in replay.records.iter().zip(&records) {
            assert_eq!(got.revision, want.revision);
            assert_eq!(got.op, want.op);
            assert_eq!(got.namespace, want.namespace);
            assert_eq!(got.name, want.name);
            assert_eq!(
                got.body.as_deref(),
                want.body.as_deref(),
                "bodies decode identically"
            );
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_truncation_point_recovers_the_intact_prefix_without_panicking() {
        let dir = temp_dir("torn");
        let path = dir.join(WAL_FILE);
        let wal = Wal::open(&path, FsyncPolicy::Always, 0).expect("open");
        let records: Vec<WalRecord> = (1..=4)
            .map(|r| record(r, WatchEventKind::Added, "default", &format!("pod-{r}")))
            .collect();
        wal.append(&records);
        drop(wal);
        let full = fs::read(&path).expect("read full WAL");
        // Frame boundaries: prefix sums of the four frames.
        let mut boundaries = vec![0usize];
        {
            let mut offset = 0;
            while offset < full.len() {
                let len = u32::from_le_bytes(full[offset..offset + 4].try_into().unwrap());
                offset += 8 + len as usize;
                boundaries.push(offset);
            }
        }
        for cut in 0..full.len() {
            fs::write(&path, &full[..cut]).expect("write truncated WAL");
            let replay = recover_wal(&path).expect("recover");
            let intact = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(replay.records.len(), intact, "cut at {cut}");
            if boundaries.contains(&cut) {
                assert!(replay.torn.is_none(), "cut at {cut} is a frame boundary");
            } else {
                let torn = replay.torn.expect("mid-frame cut is torn");
                assert_eq!(torn.valid_len, boundaries[intact] as u64);
                // The file was physically truncated to the intact prefix.
                assert_eq!(fs::metadata(&path).expect("metadata").len(), torn.valid_len);
            }
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_mid_frame_bytes_cut_the_tail_cleanly() {
        let dir = temp_dir("corrupt");
        let path = dir.join(WAL_FILE);
        let wal = Wal::open(&path, FsyncPolicy::Always, 0).expect("open");
        let records: Vec<WalRecord> = (1..=3)
            .map(|r| record(r, WatchEventKind::Added, "default", &format!("pod-{r}")))
            .collect();
        wal.append(&records);
        drop(wal);
        let mut bytes = fs::read(&path).expect("read");
        // Flip one byte inside the *second* frame's payload.
        let first_len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let second_payload_start = first_len + 8 + 8;
        bytes[second_payload_start + 10] ^= 0xFF;
        fs::write(&path, &bytes).expect("write corrupted");
        let replay = recover_wal(&path).expect("recover");
        assert_eq!(replay.records.len(), 1, "only the first frame survives");
        assert_eq!(
            replay.torn.expect("corruption detected").valid_len,
            (first_len + 8) as u64
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_policy_defers_durability_until_the_batch_fills() {
        let dir = temp_dir("batch");
        let path = dir.join(WAL_FILE);
        let wal = Wal::open(&path, FsyncPolicy::Batch(3), 0).expect("open");
        wal.append(&[record(1, WatchEventKind::Added, "default", "a")]);
        wal.append(&[record(2, WatchEventKind::Added, "default", "b")]);
        assert_eq!(wal.durable_revision(), 0, "below the batch threshold");
        wal.append(&[record(3, WatchEventKind::Added, "default", "c")]);
        assert_eq!(wal.durable_revision(), 3, "threshold reached");
        wal.append(&[record(4, WatchEventKind::Added, "default", "d")]);
        assert_eq!(wal.sync().expect("manual sync"), 4);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transient_fsync_failure_degrades_then_recovers_without_losing_frames() {
        let dir = temp_dir("transient");
        // Boot fsync is op 0; the op-1 append's fsync fails twice.
        let wal = faulty_wal(&dir, "fsync@1:transient*2", FsyncPolicy::Always, 8);
        wal.append(&[record(1, WatchEventKind::Added, "default", "a")]);
        assert_eq!(wal.state(), DurabilityState::Degraded);
        assert_eq!(wal.durable_revision(), 0, "failed fsync proves nothing");
        let latched = wal.last_error().expect("latched");
        assert_eq!(latched.kind, StorageErrorKind::Fsync);
        assert_eq!(wal.durability_gap(), 1);
        // Next append stashes, retries immediately: fsync op 2 still in the
        // fault window (fails), fsync op 3 heals.
        wal.append(&[record(2, WatchEventKind::Added, "default", "b")]);
        wal.append(&[record(3, WatchEventKind::Added, "default", "c")]);
        assert_eq!(wal.state(), DurabilityState::Healthy);
        assert_eq!(wal.durable_revision(), 3);
        assert_eq!(wal.durability_gap(), 0);
        assert!(wal.last_error().is_none(), "latch clears on recovery");
        let transitions = wal.transitions();
        assert_eq!(transitions.len(), 2, "one degrade, one recover");
        assert_eq!(transitions[0].to, DurabilityState::Degraded);
        assert_eq!(transitions[1].to, DurabilityState::Healthy);
        // No frame was lost or duplicated on disk.
        let replay = read_wal(&dir.join(WAL_FILE)).expect("read");
        let revisions: Vec<u64> = replay.records.iter().map(|r| r.revision).collect();
        assert_eq!(revisions, vec![1, 2, 3]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_write_truncates_the_torn_tail_before_retrying() {
        let dir = temp_dir("short");
        // Write op 0 is the op-1 record's... op 0 is the first append: a
        // short write leaves half a frame on disk; the retry must truncate
        // it before rewriting, or replay would stop at the torn frame.
        let wal = faulty_wal(&dir, "write@0:short", FsyncPolicy::Always, 8);
        wal.append(&[record(1, WatchEventKind::Added, "default", "a")]);
        assert_eq!(wal.state(), DurabilityState::Degraded);
        assert_eq!(wal.durable_revision(), 0);
        wal.append(&[record(2, WatchEventKind::Added, "default", "b")]);
        assert_eq!(wal.state(), DurabilityState::Healthy);
        assert_eq!(wal.durable_revision(), 2);
        let replay = read_wal(&dir.join(WAL_FILE)).expect("read");
        assert!(replay.torn.is_none(), "tail was repaired, not left torn");
        let revisions: Vec<u64> = replay.records.iter().map(|r| r.revision).collect();
        assert_eq!(revisions, vec![1, 2], "no duplicates, no losses");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn permanent_failure_fail_stops_and_never_overstates_durability() {
        let dir = temp_dir("failstop");
        let wal = faulty_wal(&dir, "fsync@1:permanent", FsyncPolicy::Always, 3);
        for r in 1..=10u64 {
            wal.append(&[record(
                r,
                WatchEventKind::Added,
                "default",
                &format!("pod-{r}"),
            )]);
        }
        assert_eq!(wal.state(), DurabilityState::FailStop);
        assert_eq!(wal.durable_revision(), 0, "nothing was ever proven");
        assert_eq!(wal.durability_gap(), 10);
        let status = wal.status();
        assert!(status.lost_records > 0, "fail-stop drops appends");
        let latched = wal.last_error().expect("latched in fail-stop");
        assert!(latched.failures >= 3);
        assert!(wal.sync().is_err(), "sync reports the latched error");
        let transitions = wal.transitions();
        assert_eq!(
            transitions.last().expect("transitions recorded").to,
            DurabilityState::FailStop
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn enospc_is_classified_from_the_error_text() {
        let dir = temp_dir("enospc");
        let wal = faulty_wal(&dir, "write@0:enospc*1", FsyncPolicy::Always, 8);
        wal.append(&[record(1, WatchEventKind::Added, "default", "a")]);
        let latched = wal.last_error().expect("latched");
        assert_eq!(latched.kind, StorageErrorKind::NoSpace);
        // Space frees; the next append recovers everything.
        wal.append(&[record(2, WatchEventKind::Added, "default", "b")]);
        assert_eq!(wal.state(), DurabilityState::Healthy);
        assert_eq!(wal.durable_revision(), 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_round_trips_and_rejects_corruption() {
        let dir = temp_dir("snap");
        let path = dir.join(SNAPSHOT_FILE);
        let objects: Vec<Arc<StoredObject>> = (1..=5)
            .map(|v| {
                Arc::new(StoredObject {
                    object: pod("ns", &format!("pod-{v}"), "nginx"),
                    resource_version: v,
                })
            })
            .collect();
        write_snapshot(&path, 5, &objects).expect("write");
        let data = read_snapshot(&path).expect("read").expect("present");
        assert_eq!(data.revision, 5);
        assert_eq!(data.objects.len(), 5);
        for ((rv, body), original) in data.objects.iter().zip(&objects) {
            assert_eq!(*rv, original.resource_version);
            assert_eq!(body, original.object.body(), "byte-identical tree");
        }
        // No tmp file left behind; corruption is rejected, not loaded.
        assert!(!path.with_extension("kfsnap.tmp").exists());
        let mut bytes = fs::read(&path).expect("read bytes");
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        fs::write(&path, &bytes).expect("write corrupted");
        let err = read_snapshot(&path).expect_err("corrupt snapshot rejected");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_segment_is_quarantined_and_the_other_shards_still_boot() {
        let dir = temp_dir("quarantine");
        {
            let (store, persistence, _) =
                Persistence::open(PersistConfig::new(&dir)).expect("open");
            for r in 1..=6u64 {
                store.upsert(pod("ns", &format!("pod-{r}"), "nginx"));
            }
            persistence.checkpoint(&store).expect("checkpoint");
            // More writes after the checkpoint so the WAL holds a suffix.
            store.upsert(pod("ns", "pod-late", "nginx"));
            persistence.wal().sync().expect("sync");
        }
        // Corrupt the segment that holds pod-1: its shard's checkpointed
        // prefix is lost, but the blast radius stops at the shard.
        let corrupt_shard = crate::store::shard_index_raw(ResourceKind::Pod.index(), "ns", "pod-1");
        let segment_path = dir.join(segment_file(corrupt_shard));
        let mut bytes = fs::read(&segment_path).expect("read segment");
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        fs::write(&segment_path, &bytes).expect("write corrupted");
        let (store, _persistence, report) =
            Persistence::open(PersistConfig::new(&dir)).expect("boot survives corruption");
        let quarantined = report
            .snapshot_quarantined
            .as_ref()
            .expect("segment quarantined");
        assert!(quarantined.exists(), "corrupt file kept for forensics");
        assert!(
            quarantined.to_string_lossy().ends_with(".corrupt"),
            "renamed to .corrupt: {}",
            quarantined.display()
        );
        assert!(!segment_path.exists(), "corrupt segment out of the way");
        // The quarantined shard's checkpointed objects are gone (compaction
        // dropped their WAL records); every other shard serves from its own
        // intact segment, and the post-checkpoint WAL suffix replays.
        assert!(
            store.get(ResourceKind::Pod, "ns", "pod-1").is_none(),
            "quarantined shard's snapshotted prefix is lost"
        );
        for r in 2..=6u64 {
            let name = format!("pod-{r}");
            let shard = crate::store::shard_index_raw(ResourceKind::Pod.index(), "ns", &name);
            if shard != corrupt_shard {
                assert!(
                    store.get(ResourceKind::Pod, "ns", &name).is_some(),
                    "{name} survives in its own segment"
                );
            }
        }
        assert!(store.get(ResourceKind::Pod, "ns", "pod-late").is_some());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_monolithic_snapshot_still_boots_and_is_retired() {
        let dir = temp_dir("legacy");
        // A directory last checkpointed by a pre-incremental build: one
        // monolithic snapshot, no manifest, no segments.
        let objects: Vec<Arc<StoredObject>> = (1..=4u64)
            .map(|v| {
                Arc::new(StoredObject {
                    object: pod("ns", &format!("pod-{v}"), "nginx"),
                    resource_version: v,
                })
            })
            .collect();
        write_snapshot(&dir.join(SNAPSHOT_FILE), 4, &objects).expect("write legacy snapshot");
        let (store, persistence, report) =
            Persistence::open(PersistConfig::new(&dir)).expect("open");
        assert_eq!(report.snapshot_objects, 4);
        assert_eq!(report.snapshot_revision, 4);
        assert_eq!(
            StoreBackend::len(&store),
            4,
            "legacy snapshot seeds the store"
        );
        assert_eq!(StoreBackend::revision(&store), 4, "revision floor holds");
        // The first incremental checkpoint supersedes the legacy file.
        store.upsert(pod("ns", "pod-5", "nginx"));
        persistence.checkpoint(&store).expect("checkpoint");
        assert!(
            !dir.join(SNAPSHOT_FILE).exists(),
            "legacy snapshot retired after the first incremental checkpoint"
        );
        assert!(dir.join(MANIFEST_FILE).exists());
        let (store, _persistence, report) =
            Persistence::open(PersistConfig::new(&dir)).expect("reopen");
        assert!(report.segments_loaded > 0, "segments now seed the boot");
        assert_eq!(StoreBackend::len(&store), 5);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_files_recover_to_an_empty_store() {
        let dir = temp_dir("empty");
        let (store, _persistence, report) =
            Persistence::open(PersistConfig::new(&dir)).expect("open");
        assert_eq!(StoreBackend::len(&store), 0);
        assert_eq!(report.recovered_revision, 0);
        assert_eq!(report.wal_records, 0);
        assert!(report.torn_tail.is_none());
        assert!(report.snapshot_quarantined.is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_retries_through_a_transient_fault() {
        let dir = temp_dir("ckpt-retry");
        let io = Arc::new(FaultyIo::over_real(
            // The boot fsync is fsync op 0 and the store writes pay
            // write+fsync pairs; plant a transient write failure far enough
            // in to land on the snapshot tmp write of the checkpoint.
            FaultSchedule::parse("write@3:transient*1").expect("spec"),
        ));
        let config = PersistConfig::new(&dir).with_retry(RetryPolicy::immediate(8));
        let (store, persistence, _) = Persistence::open_with_io(config, io).expect("open");
        for r in 1..=3u64 {
            store.upsert(pod("ns", &format!("pod-{r}"), "nginx"));
        }
        let report = persistence.checkpoint(&store).expect("checkpoint retries");
        assert!(report.attempts >= 1);
        assert_eq!(report.objects, 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_policy_parses_its_knob_spellings() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("os"), Some(FsyncPolicy::Os));
        assert_eq!(FsyncPolicy::parse("batch:64"), Some(FsyncPolicy::Batch(64)));
        assert_eq!(FsyncPolicy::parse("batch:"), None);
        assert_eq!(
            FsyncPolicy::parse("group"),
            Some(FsyncPolicy::Group {
                max_wait_us: GROUP_DEFAULT_WAIT_US,
                max_batch: GROUP_DEFAULT_BATCH,
            })
        );
        assert_eq!(
            FsyncPolicy::parse("group:250"),
            Some(FsyncPolicy::Group {
                max_wait_us: 250,
                max_batch: GROUP_DEFAULT_BATCH,
            })
        );
        assert_eq!(
            FsyncPolicy::parse("group:0:8"),
            Some(FsyncPolicy::Group {
                max_wait_us: 0,
                max_batch: 8,
            })
        );
        assert_eq!(FsyncPolicy::parse("group:"), None);
        assert_eq!(FsyncPolicy::parse("group:1:"), None);
        assert_eq!(FsyncPolicy::parse("nope"), None);
    }

    #[test]
    fn group_commit_amortizes_fsyncs_across_a_deferred_batch() {
        let dir = temp_dir("group-amortize");
        let wal = Wal::open(
            &dir.join(WAL_FILE),
            FsyncPolicy::Group {
                max_wait_us: 0,
                max_batch: 64,
            },
            0,
        )
        .expect("open");
        // Ten appends deferred under (simulated) shard locks, then one
        // rendezvous: a single fsync proves all ten.
        let mut ticket = None;
        for r in 1..=10u64 {
            let deferred = wal.append_deferred(&[record(
                r,
                WatchEventKind::Added,
                "default",
                &format!("pod-{r}"),
            )]);
            ticket = GroupTicket::merge(ticket, deferred);
        }
        assert_eq!(
            wal.durable_revision(),
            0,
            "nothing proven before the rendezvous"
        );
        wal.group_commit(ticket.expect("healthy appends produce a ticket"));
        assert_eq!(wal.durable_revision(), 10);
        assert_eq!(wal.state(), DurabilityState::Healthy);
        assert_eq!(wal.fsync_batches(), 1, "one shared fsync for ten writers");
        assert_eq!(wal.group_records(), 10);
        let status = wal.status();
        assert_eq!(status.fsync_batches, 1);
        assert!((status.avg_group_size() - 10.0).abs() < f64::EPSILON);
        // A plain append still rendezvouses internally.
        wal.append(&[record(11, WatchEventKind::Added, "default", "pod-11")]);
        assert_eq!(wal.durable_revision(), 11);
        assert_eq!(wal.fsync_batches(), 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_parks_concurrent_writers_and_proves_each_ack() {
        let dir = temp_dir("group-threads");
        let wal = Wal::open(
            &dir.join(WAL_FILE),
            FsyncPolicy::Group {
                max_wait_us: 400,
                max_batch: 8,
            },
            0,
        )
        .expect("open");
        const WRITERS: u64 = 4;
        const PER_WRITER: u64 = 10;
        std::thread::scope(|scope| {
            for writer in 0..WRITERS {
                let wal = &wal;
                scope.spawn(move || {
                    for i in 0..PER_WRITER {
                        let revision = writer * PER_WRITER + i + 1;
                        wal.append(&[record(
                            revision,
                            WatchEventKind::Added,
                            "default",
                            &format!("pod-{revision}"),
                        )]);
                        // `append` returning under `Group` means this
                        // writer's revision is fsync-proven.
                        assert!(wal.durable_revision() >= revision);
                    }
                });
            }
        });
        assert_eq!(wal.state(), DurabilityState::Healthy);
        assert_eq!(wal.durable_revision(), WRITERS * PER_WRITER);
        assert_eq!(wal.durability_gap(), 0);
        let total = WRITERS * PER_WRITER;
        assert_eq!(wal.group_records(), total);
        assert!(wal.fsync_batches() >= 1 && wal.fsync_batches() <= total);
        // Every frame landed exactly once, whatever the interleaving.
        let replay = read_wal(&dir.join(WAL_FILE)).expect("read");
        assert!(replay.torn.is_none());
        let mut revisions: Vec<u64> = replay.records.iter().map(|r| r.revision).collect();
        revisions.sort_unstable();
        assert_eq!(revisions, (1..=total).collect::<Vec<_>>());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_group_fsync_degrades_and_never_overstates_durability() {
        let dir = temp_dir("group-degrade");
        // Boot fsync is op 0; every group fsync after it fails.
        let wal = faulty_wal(
            &dir,
            "fsync@1:permanent",
            FsyncPolicy::Group {
                max_wait_us: 0,
                max_batch: 64,
            },
            3,
        );
        wal.append(&[record(1, WatchEventKind::Added, "default", "a")]);
        assert_eq!(
            wal.state(),
            DurabilityState::Degraded,
            "leader observed the failure"
        );
        assert_eq!(
            wal.durable_revision(),
            0,
            "failed shared fsync proves nothing"
        );
        let latched = wal.last_error().expect("latched");
        assert_eq!(latched.kind, StorageErrorKind::Fsync);
        assert_eq!(wal.durability_gap(), 1);
        // Concurrent writers against the dead device: every append returns
        // (no waiter parks forever) and durability is never overstated.
        std::thread::scope(|scope| {
            for writer in 0..4u64 {
                let wal = &wal;
                scope.spawn(move || {
                    for i in 0..5u64 {
                        let revision = 2 + writer * 5 + i;
                        wal.append(&[record(
                            revision,
                            WatchEventKind::Added,
                            "default",
                            &format!("pod-{revision}"),
                        )]);
                    }
                });
            }
        });
        assert_eq!(wal.durable_revision(), 0, "nothing was ever proven");
        assert_eq!(wal.state(), DurabilityState::FailStop);
        assert_eq!(wal.fsync_batches(), 0, "no group fsync ever succeeded");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segment_and_manifest_round_trip_with_prev_rotation() {
        let dir = temp_dir("segman");
        let io = RealIo;
        let objects: Vec<Arc<StoredObject>> = (1..=3u64)
            .map(|v| {
                Arc::new(StoredObject {
                    object: pod("ns", &format!("pod-{v}"), "nginx"),
                    resource_version: v,
                })
            })
            .collect();
        write_segment_with(&io, &dir, 7, 3, &objects).expect("write segment");
        let segment = read_segment_with(&io, &dir.join(segment_file(7)))
            .expect("read segment")
            .expect("present");
        assert_eq!(segment.shard, 7);
        assert_eq!(segment.horizon, 3);
        assert_eq!(segment.objects.len(), 3);
        for ((rv, body), original) in segment.objects.iter().zip(&objects) {
            assert_eq!(*rv, original.resource_version);
            assert_eq!(body, original.object.body(), "byte-identical tree");
        }
        assert!(read_segment_with(&io, &dir.join(segment_file(8)))
            .expect("absent segment")
            .is_none());

        let first = ManifestData {
            horizon: 3,
            shard_count: 16,
            entries: vec![ManifestEntry {
                shard: 7,
                objects: 3,
            }],
        };
        write_manifest_with(&io, &dir, &first).expect("write manifest");
        assert!(
            read_manifest_with(&io, &dir.join(MANIFEST_PREV_FILE))
                .expect("no prev yet")
                .is_none(),
            "first manifest has nothing to rotate"
        );
        let second = ManifestData {
            horizon: 9,
            shard_count: 16,
            entries: vec![
                ManifestEntry {
                    shard: 2,
                    objects: 1,
                },
                ManifestEntry {
                    shard: 7,
                    objects: 3,
                },
            ],
        };
        write_manifest_with(&io, &dir, &second).expect("write second manifest");
        let current = read_manifest_with(&io, &dir.join(MANIFEST_FILE))
            .expect("read current")
            .expect("present");
        assert_eq!(current.horizon, 9);
        assert_eq!(current.entries.len(), 2);
        let prev = read_manifest_with(&io, &dir.join(MANIFEST_PREV_FILE))
            .expect("read prev")
            .expect("rotated");
        assert_eq!(
            prev.horizon, 3,
            "previous complete manifest survives rotation"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_rewrites_only_dirty_shards() {
        let dir = temp_dir("ckpt-dirty");
        let (store, persistence, _) = Persistence::open(PersistConfig::new(&dir)).expect("open");
        for r in 1..=8u64 {
            store.upsert(pod("ns", &format!("pod-{r}"), "nginx"));
        }
        // First checkpoint of a store is full: every shard boots dirty.
        let first = persistence.checkpoint(&store).expect("first checkpoint");
        assert_eq!(
            first.dirty_shards, first.total_shards,
            "boot checkpoint is full"
        );
        assert_eq!(first.objects, 8);
        // One write → exactly one shard rewritten.
        store.upsert(pod("ns", "pod-1", "nginx:2"));
        let second = persistence.checkpoint(&store).expect("second checkpoint");
        assert_eq!(second.dirty_shards, 1, "only the touched shard rewrites");
        assert!(second.objects < 8, "O(dirty), not O(store)");
        // Quiescent checkpoint writes no segments at all.
        let third = persistence.checkpoint(&store).expect("third checkpoint");
        assert_eq!(third.dirty_shards, 0);
        assert_eq!(third.objects, 0);
        assert_eq!(
            store.checkpoint_dirty_shards(),
            0,
            "counter tracks the last claim"
        );
        // The union of segments still reconstructs the full store.
        drop(persistence);
        let (store, _persistence, report) =
            Persistence::open(PersistConfig::new(&dir)).expect("reopen");
        assert_eq!(StoreBackend::len(&store), 8);
        assert_eq!(report.segments_loaded, 16, "every shard has a segment");
        let updated = store
            .get(ResourceKind::Pod, "ns", "pod-1")
            .expect("pod-1 present");
        let image = updated
            .object
            .body()
            .get_path(&kf_yaml::Path::parse("spec.containers[0].image").expect("static path"))
            .expect("image present");
        assert_eq!(
            image.as_str(),
            Some("nginx:2"),
            "dirty-shard rewrite captured the update"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_current_manifest_falls_back_to_the_previous_one() {
        let dir = temp_dir("manifest-fallback");
        {
            let (store, persistence, _) =
                Persistence::open(PersistConfig::new(&dir)).expect("open");
            for r in 1..=4u64 {
                store.upsert(pod("ns", &format!("pod-{r}"), "nginx"));
            }
            persistence.checkpoint(&store).expect("first checkpoint");
            store.upsert(pod("ns", "pod-5", "nginx"));
            persistence.checkpoint(&store).expect("second checkpoint");
        }
        // Tear the current manifest; the rotation left the first
        // checkpoint's manifest as `.prev`.
        let manifest_path = dir.join(MANIFEST_FILE);
        let mut bytes = fs::read(&manifest_path).expect("read manifest");
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        fs::write(&manifest_path, &bytes).expect("write corrupted");
        let (store, _persistence, report) =
            Persistence::open(PersistConfig::new(&dir)).expect("boot survives torn manifest");
        assert!(report.manifest_fallback, "previous manifest used");
        assert!(
            report
                .snapshot_quarantined
                .as_ref()
                .is_some_and(|p| p.to_string_lossy().ends_with(".corrupt")),
            "torn manifest quarantined"
        );
        // Segments are self-validating, so even state past the prev
        // manifest's horizon recovers from them (plus the WAL suffix).
        assert_eq!(StoreBackend::len(&store), 5, "full state recovered");
        assert!(store.get(ResourceKind::Pod, "ns", "pod-5").is_some());
        fs::remove_dir_all(&dir).ok();
    }
}
