//! The durable persistence plane: snapshots + the journal-as-WAL.
//!
//! Everything the store holds lives in memory; this module makes a restart
//! survivable. Two artifacts, both hand-framed over `kf_yaml::binary` (the
//! workspace `serde` is a no-op shim, so there is no derived format to lean
//! on):
//!
//! * **Snapshot** (`store.kfsnap`) — a one-shot dump of every
//!   `Arc<StoredObject>` handle: magic, CRC-32 seal, then
//!   `(resource_version, body)` per object. Written to a temp file and
//!   atomically renamed, so a crash mid-checkpoint never leaves a partial
//!   snapshot visible.
//! * **Write-ahead log** (`store.kfwal`) — the promotion of the watch
//!   journal's publication stream to disk: every store write appends one
//!   framed [`WalRecord`] (length + CRC-32 + payload) **while the written
//!   object's store-shard lock is held**, so the log preserves per-object
//!   write order exactly as the journal does. The fsync cadence is a
//!   [`FsyncPolicy`].
//!
//! **Recovery** ([`Persistence::open`]) loads the snapshot, replays the WAL
//! suffix, seeds the store at the recovered revision and seals every watch
//! journal's compaction horizon there — a watcher resuming with a pre-crash
//! cursor below the horizon gets the same `410 Gone` → re-list contract that
//! in-memory compaction already enforces, while a cursor at the recovered
//! revision streams on seamlessly. Replay is guarded by revision
//! (`record.revision > stored.resource_version`), so overlapping
//! snapshot/WAL windows are idempotent and replay order only matters per
//! key — which per-key order the shard-lock append discipline guarantees.
//!
//! **The recovery invariant:** after `open`, the store state equals the
//! pre-crash state at the last fsync'd revision ([`Wal::durable_revision`]).
//! With [`FsyncPolicy::Always`] that is the last acknowledged write; with
//! `Batch(n)` up to `n - 1` trailing acknowledged writes may be lost; with
//! `Os` the loss window is whatever the page cache held. A torn or
//! bit-flipped WAL tail (the crash landed mid-`write`) fails its frame CRC
//! and is **cleanly truncated**, never replayed and never a panic.
//!
//! **Compaction** ([`Persistence::checkpoint`]) snapshots at the current
//! revision horizon and rewrites the WAL keeping only records above it —
//! the same horizon discipline the in-memory journals apply per sub-shard,
//! extended to disk. See `docs/persistence.md` for the byte layouts.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use k8s_model::{K8sObject, ResourceKind};
use kf_yaml::binary::{self, Cursor};
use kf_yaml::Value;

use crate::store::{ObjectStore, StoreBackend, StoredObject};
use crate::watch::WatchEventKind;

/// Snapshot file name inside a persistence directory.
pub const SNAPSHOT_FILE: &str = "store.kfsnap";
/// Write-ahead-log file name inside a persistence directory.
pub const WAL_FILE: &str = "store.kfwal";
/// AOT-compiled validator arena file name (written by the policy plane —
/// see `kubefence::aot` — but named here so the persistence directory
/// layout is defined in one place).
pub const AOT_ARENA_FILE: &str = "validators.kfaot";

/// Magic sealing a snapshot file (8 bytes, versioned).
const SNAPSHOT_MAGIC: &[u8; 8] = b"KFSNAP1\0";

/// When the WAL forces data to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every append — the acknowledged-write-is-durable
    /// contract etcd ships with. Slowest, loses nothing.
    Always,
    /// `fsync` once every `n` appended records (`n == 0` is clamped to 1).
    /// Bounds the loss window to `n - 1` acknowledged writes.
    Batch(u32),
    /// Never `fsync`; the OS flushes the page cache on its own schedule.
    /// Fastest, loses whatever the cache held on a hard crash.
    Os,
}

impl FsyncPolicy {
    /// Parse a policy from its knob spelling: `always`, `os`, or `batch:N`
    /// (used by the `cold_start` bench's `KF_WAL_FSYNC` environment
    /// variable).
    pub fn parse(text: &str) -> Option<FsyncPolicy> {
        match text {
            "always" => Some(FsyncPolicy::Always),
            "os" => Some(FsyncPolicy::Os),
            _ => {
                let n = text.strip_prefix("batch:")?.parse().ok()?;
                Some(FsyncPolicy::Batch(n))
            }
        }
    }
}

/// Where and how a store persists.
#[derive(Debug, Clone)]
pub struct PersistConfig {
    /// Directory holding the snapshot and WAL files (created on open).
    pub dir: PathBuf,
    /// Fsync cadence of the WAL.
    pub fsync: FsyncPolicy,
    /// Watch-journal capacity per sub-shard of the recovered store (see
    /// [`ObjectStore::with_journal_config`]; 0 means the default).
    pub journal_capacity: usize,
    /// Watch-journal sub-shard count of the recovered store (0: default).
    pub journal_shards: usize,
}

impl PersistConfig {
    /// A config persisting under `dir` with [`FsyncPolicy::Always`] and
    /// default journal geometry.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        PersistConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            journal_capacity: 0,
            journal_shards: 0,
        }
    }

    /// The same config with a different fsync policy.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }
}

/// One write, as the WAL records it — the durable twin of the journal's
/// publication envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// The revision the journal assigned to this write.
    pub revision: u64,
    /// The written object's kind.
    pub kind: ResourceKind,
    /// `Added`, `Modified` or `Deleted` (bookmarks are watch-wire sugar and
    /// never logged).
    pub op: WatchEventKind,
    /// The object's namespace.
    pub namespace: String,
    /// The object's name.
    pub name: String,
    /// The written tree — shared with the store, not copied. `None` for
    /// deletions: replay only needs the key to remove.
    pub body: Option<Arc<Value>>,
}

const OP_ADDED: u8 = 0;
const OP_MODIFIED: u8 = 1;
const OP_DELETED: u8 = 2;

impl WalRecord {
    fn op_tag(&self) -> u8 {
        match self.op {
            WatchEventKind::Added => OP_ADDED,
            WatchEventKind::Modified => OP_MODIFIED,
            WatchEventKind::Deleted => OP_DELETED,
            // Bookmarks are synthesized on the watch wire, never written to
            // the store, so a bookmark here is a logic error upstream; the
            // log treats it as a no-op modification of nothing.
            WatchEventKind::Bookmark => OP_MODIFIED,
        }
    }

    fn encode_payload(&self, out: &mut Vec<u8>) {
        binary::put_u64(out, self.revision);
        binary::put_u8(out, self.kind.index() as u8);
        binary::put_u8(out, self.op_tag());
        binary::put_str(out, &self.namespace);
        binary::put_str(out, &self.name);
        match &self.body {
            Some(body) => {
                binary::put_u8(out, 1);
                binary::put_value(out, body);
            }
            None => binary::put_u8(out, 0),
        }
    }

    /// Append this record as one framed entry: `len | crc32 | payload`.
    fn encode_frame(&self, out: &mut Vec<u8>) {
        let mut payload = Vec::with_capacity(64);
        self.encode_payload(&mut payload);
        binary::put_u32(out, payload.len() as u32);
        binary::put_u32(out, binary::crc32(&payload));
        out.extend_from_slice(&payload);
    }

    fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
        let mut cursor = Cursor::new(payload);
        let revision = cursor.get_u64().ok()?;
        let kind_index = cursor.get_u8().ok()? as usize;
        let kind = *ResourceKind::ALL.get(kind_index)?;
        let op = match cursor.get_u8().ok()? {
            OP_ADDED => WatchEventKind::Added,
            OP_MODIFIED => WatchEventKind::Modified,
            OP_DELETED => WatchEventKind::Deleted,
            _ => return None,
        };
        let namespace = cursor.get_str().ok()?;
        let name = cursor.get_str().ok()?;
        let body = match cursor.get_u8().ok()? {
            0 => None,
            1 => Some(Arc::new(cursor.get_value().ok()?)),
            _ => return None,
        };
        if !cursor.is_empty() {
            return None;
        }
        Some(WalRecord {
            revision,
            kind,
            op,
            namespace,
            name,
            body,
        })
    }
}

/// What the WAL reader found past the last intact frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornTail {
    /// Byte length of the intact prefix (the truncation point).
    pub valid_len: u64,
    /// How many trailing bytes failed framing or checksum.
    pub dropped_bytes: u64,
}

/// A decoded WAL: every intact record plus what was cut from the tail.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// The intact records, in append (file) order.
    pub records: Vec<WalRecord>,
    /// `Some` when the file ended in a torn or corrupt frame.
    pub torn: Option<TornTail>,
}

fn decode_wal_bytes(bytes: &[u8]) -> WalReplay {
    let mut records = Vec::new();
    let mut offset = 0usize;
    loop {
        let remaining = bytes.len() - offset;
        if remaining == 0 {
            return WalReplay {
                records,
                torn: None,
            };
        }
        // A frame needs its 8-byte header, the announced payload, a CRC
        // match and a clean payload decode; the first failure marks the torn
        // tail and ends the replay — later bytes are unframeable noise.
        let torn = WalReplay {
            records: Vec::new(),
            torn: Some(TornTail {
                valid_len: offset as u64,
                dropped_bytes: remaining as u64,
            }),
        };
        if remaining < 8 {
            return WalReplay { records, ..torn };
        }
        let len =
            u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().expect("4 bytes"));
        if len > remaining - 8 {
            return WalReplay { records, ..torn };
        }
        let payload = &bytes[offset + 8..offset + 8 + len];
        if binary::crc32(payload) != crc {
            return WalReplay { records, ..torn };
        }
        let Some(record) = WalRecord::decode_payload(payload) else {
            return WalReplay { records, ..torn };
        };
        records.push(record);
        offset += 8 + len;
    }
}

/// Decode a WAL file without touching it. Missing file: empty replay.
///
/// # Errors
///
/// Only filesystem errors; corruption is reported via [`WalReplay::torn`],
/// never as an error.
pub fn read_wal(path: &Path) -> io::Result<WalReplay> {
    match fs::read(path) {
        Ok(bytes) => Ok(decode_wal_bytes(&bytes)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(WalReplay::default()),
        Err(e) => Err(e),
    }
}

/// Decode a WAL file and, when the tail is torn, **truncate the file** to
/// the intact prefix so the next append starts on a frame boundary.
///
/// # Errors
///
/// Only filesystem errors (reading, or truncating a torn file).
pub fn recover_wal(path: &Path) -> io::Result<WalReplay> {
    let replay = read_wal(path)?;
    if let Some(torn) = replay.torn {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(torn.valid_len)?;
        file.sync_data()?;
    }
    Ok(replay)
}

#[derive(Debug)]
struct WalInner {
    file: File,
    /// Records appended since the last fsync (drives [`FsyncPolicy::Batch`]).
    since_sync: u32,
    /// Highest revision written to the file (not necessarily durable yet).
    appended: u64,
}

/// The open write-ahead log a store appends to.
///
/// Appends are serialized by one mutex — the log is one file — but frames
/// are encoded **before** the lock is taken, so the critical section is a
/// `write` (plus the policy's fsync). Store write paths call
/// [`Wal::append`] while holding the written object's shard lock, which is
/// what makes the on-disk per-key order match the in-memory one.
///
/// I/O failures do not poison the store: the write stays applied in memory,
/// the error is latched ([`Wal::last_error`]) and `durable_revision` stops
/// advancing — the operator-visible signal that durability degraded.
#[derive(Debug)]
pub struct Wal {
    inner: Mutex<WalInner>,
    policy: FsyncPolicy,
    /// Highest revision known forced to stable storage.
    durable: AtomicU64,
    /// First append/sync error observed, if any.
    error: Mutex<Option<String>>,
}

impl Wal {
    /// Open (creating if needed) the WAL at `path` for appending.
    /// `recovered` is the highest revision already in the file — it seeds
    /// both the appended and durable cursors (the open fsyncs once so the
    /// recovered prefix is genuinely stable).
    ///
    /// # Errors
    ///
    /// Filesystem errors opening or syncing the file.
    pub fn open(path: &Path, policy: FsyncPolicy, recovered: u64) -> io::Result<Wal> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        file.sync_data()?;
        Ok(Wal {
            inner: Mutex::new(WalInner {
                file,
                since_sync: 0,
                appended: recovered,
            }),
            policy,
            durable: AtomicU64::new(recovered),
            error: Mutex::new(None),
        })
    }

    /// Append records (one frame each, one `write` for the batch), honoring
    /// the fsync policy. Errors are latched, not returned — see the type
    /// docs for why the store cannot unwind here.
    pub fn append(&self, records: &[WalRecord]) {
        if records.is_empty() {
            return;
        }
        let mut buf = Vec::with_capacity(records.len() * 96);
        let mut max_revision = 0;
        for record in records {
            record.encode_frame(&mut buf);
            max_revision = max_revision.max(record.revision);
        }
        let mut inner = self.inner.lock();
        if let Err(e) = self.append_locked(&mut inner, &buf, max_revision, records.len() as u32) {
            let mut slot = self.error.lock();
            if slot.is_none() {
                *slot = Some(e.to_string());
            }
        }
    }

    fn append_locked(
        &self,
        inner: &mut WalInner,
        buf: &[u8],
        max_revision: u64,
        count: u32,
    ) -> io::Result<()> {
        inner.file.write_all(buf)?;
        inner.appended = inner.appended.max(max_revision);
        match self.policy {
            FsyncPolicy::Always => self.sync_locked(inner)?,
            FsyncPolicy::Batch(n) => {
                inner.since_sync += count;
                if inner.since_sync >= n.max(1) {
                    self.sync_locked(inner)?;
                }
            }
            FsyncPolicy::Os => {}
        }
        Ok(())
    }

    fn sync_locked(&self, inner: &mut WalInner) -> io::Result<()> {
        inner.file.sync_data()?;
        inner.since_sync = 0;
        self.durable.store(inner.appended, Ordering::Release);
        Ok(())
    }

    /// Force everything appended so far to stable storage, returning the
    /// now-durable revision.
    ///
    /// # Errors
    ///
    /// The underlying fsync error.
    pub fn sync(&self) -> io::Result<u64> {
        let mut inner = self.inner.lock();
        self.sync_locked(&mut inner)?;
        Ok(self.durable.load(Ordering::Acquire))
    }

    /// Highest revision known forced to stable storage — the revision the
    /// recovery invariant is stated against.
    pub fn durable_revision(&self) -> u64 {
        self.durable.load(Ordering::Acquire)
    }

    /// Highest revision appended (durable or not).
    pub fn appended_revision(&self) -> u64 {
        self.inner.lock().appended
    }

    /// The first latched I/O error, if appends have started failing.
    pub fn last_error(&self) -> Option<String> {
        self.error.lock().clone()
    }

    /// Rewrite the log keeping only records with revision strictly above
    /// `horizon` (they are the ones not covered by the snapshot at that
    /// horizon), then swap the rewritten file in atomically and continue
    /// appending to it. Returns how many records were retained.
    fn compact(&self, path: &Path, horizon: u64) -> io::Result<usize> {
        let mut inner = self.inner.lock();
        // Make the current contents readable-back and durable before the
        // rewrite; everything we are about to drop is covered by the
        // already-renamed snapshot.
        self.sync_locked(&mut inner)?;
        let replay = read_wal(path)?;
        let mut buf = Vec::new();
        let mut retained = 0usize;
        for record in &replay.records {
            if record.revision > horizon {
                record.encode_frame(&mut buf);
                retained += 1;
            }
        }
        let tmp = path.with_extension("kfwal.tmp");
        {
            let mut file = File::create(&tmp)?;
            file.write_all(&buf)?;
            file.sync_data()?;
        }
        fs::rename(&tmp, path)?;
        sync_parent_dir(path);
        let file = OpenOptions::new().append(true).open(path)?;
        inner.file = file;
        inner.since_sync = 0;
        Ok(retained)
    }
}

/// Best-effort fsync of a path's parent directory (makes a rename durable
/// on filesystems that need it; ignored where directories cannot be
/// opened).
fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
}

/// A decoded snapshot: the revision horizon it was cut at, plus every
/// object as `(resource_version, body)`.
#[derive(Debug, Default)]
pub struct SnapshotData {
    /// The store revision at the start of the snapshot scan. Every write at
    /// or below this revision is fully reflected; the WAL suffix above it
    /// replays the rest.
    pub revision: u64,
    /// The stored objects (kind/namespace/name are re-derived from the body
    /// on load, exactly as admission derives them).
    pub objects: Vec<(u64, Value)>,
}

/// Write a snapshot of `objects` at `revision` to `path`: temp file, fsync,
/// atomic rename. The payload is CRC-sealed, so a bit-flipped snapshot is
/// rejected at load instead of resurrecting corrupt objects.
///
/// # Errors
///
/// Filesystem errors only.
pub fn write_snapshot(path: &Path, revision: u64, objects: &[Arc<StoredObject>]) -> io::Result<()> {
    let mut payload = Vec::with_capacity(objects.len() * 256 + 16);
    binary::put_u64(&mut payload, revision);
    binary::put_u64(&mut payload, objects.len() as u64);
    for stored in objects {
        binary::put_u64(&mut payload, stored.resource_version);
        binary::put_value(&mut payload, stored.object.body());
    }
    let mut out = Vec::with_capacity(payload.len() + 12);
    out.extend_from_slice(SNAPSHOT_MAGIC);
    binary::put_u32(&mut out, binary::crc32(&payload));
    out.extend_from_slice(&payload);
    let tmp = path.with_extension("kfsnap.tmp");
    {
        let mut file = File::create(&tmp)?;
        file.write_all(&out)?;
        file.sync_data()?;
    }
    fs::rename(&tmp, path)?;
    sync_parent_dir(path);
    Ok(())
}

/// Load a snapshot; `Ok(None)` when the file does not exist.
///
/// # Errors
///
/// Filesystem errors, or [`io::ErrorKind::InvalidData`] when the magic,
/// checksum or payload decode fails — a snapshot is the recovery floor, so
/// unlike a torn WAL tail its corruption is surfaced loudly, not skipped.
pub fn read_snapshot(path: &Path) -> io::Result<Option<SnapshotData>> {
    let bytes = match fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let invalid = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_owned());
    if bytes.len() < 12 || &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(invalid("snapshot magic mismatch"));
    }
    let crc = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let payload = &bytes[12..];
    if binary::crc32(payload) != crc {
        return Err(invalid("snapshot checksum mismatch"));
    }
    let mut cursor = Cursor::new(payload);
    let mut parse = || -> Result<SnapshotData, kf_yaml::binary::BinaryError> {
        let revision = cursor.get_u64()?;
        let count = cursor.get_u64()? as usize;
        let mut objects = Vec::with_capacity(count.min(payload.len()));
        for _ in 0..count {
            let resource_version = cursor.get_u64()?;
            let body = cursor.get_value()?;
            objects.push((resource_version, body));
        }
        Ok(SnapshotData { revision, objects })
    };
    parse().map(Some).map_err(|e| invalid(&e.to_string()))
}

/// What recovery found and did.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Revision horizon of the loaded snapshot (0: none).
    pub snapshot_revision: u64,
    /// Objects loaded from the snapshot.
    pub snapshot_objects: usize,
    /// Intact WAL records read.
    pub wal_records: usize,
    /// WAL records whose effect was applied (revision above the stored
    /// object's — the rest were already covered by the snapshot).
    pub replayed: usize,
    /// The revision the store resumed at (and the watch journals' sealed
    /// compaction horizon).
    pub recovered_revision: u64,
    /// Objects in the recovered store.
    pub live_objects: usize,
    /// `Some` when a torn/corrupt WAL tail was detected and truncated.
    pub torn_tail: Option<TornTail>,
}

/// What a checkpoint wrote.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointReport {
    /// The revision horizon the snapshot covers (and the WAL was compacted
    /// to).
    pub revision: u64,
    /// Objects in the snapshot.
    pub objects: usize,
    /// WAL records retained (revision above the horizon).
    pub wal_retained: usize,
}

/// An open persistence directory: the handle that checkpoints a store and
/// owns its WAL.
#[derive(Debug)]
pub struct Persistence {
    dir: PathBuf,
    wal: Arc<Wal>,
}

impl Persistence {
    /// Open (or create) the persistence directory and recover a store from
    /// it: load the snapshot, replay the WAL suffix (truncating a torn
    /// tail), seed the store, seal the watch horizon at the recovered
    /// revision, and attach the WAL so every subsequent write is logged.
    ///
    /// # Errors
    ///
    /// Filesystem errors; [`io::ErrorKind::InvalidData`] for a corrupt
    /// snapshot or a WAL/snapshot body that no longer parses as an object.
    pub fn open(config: PersistConfig) -> io::Result<(ObjectStore, Persistence, RecoveryReport)> {
        fs::create_dir_all(&config.dir)?;
        let snapshot_path = config.dir.join(SNAPSHOT_FILE);
        let wal_path = config.dir.join(WAL_FILE);
        let invalid = |what: String| io::Error::new(io::ErrorKind::InvalidData, what);

        let snapshot = read_snapshot(&snapshot_path)?.unwrap_or_default();
        let replay = recover_wal(&wal_path)?;
        let mut report = RecoveryReport {
            snapshot_revision: snapshot.revision,
            snapshot_objects: snapshot.objects.len(),
            wal_records: replay.records.len(),
            torn_tail: replay.torn,
            ..RecoveryReport::default()
        };

        // Rebuild the keyed state: snapshot first, then the WAL suffix with
        // the revision guard (apply only what the snapshot has not already
        // absorbed). `None` marks a key deleted by a replayed record.
        type ReplayKey = (usize, String, String);
        let mut state: std::collections::HashMap<ReplayKey, (u64, Option<K8sObject>)> =
            std::collections::HashMap::new();
        let mut recovered_revision = snapshot.revision;
        for (resource_version, body) in snapshot.objects {
            let object = K8sObject::from_shared(Arc::new(body))
                .map_err(|e| invalid(format!("snapshot object: {e}")))?;
            recovered_revision = recovered_revision.max(resource_version);
            let key = (
                object.kind().index(),
                object.namespace().to_owned(),
                object.name().to_owned(),
            );
            state.insert(key, (resource_version, Some(object)));
        }
        for record in replay.records {
            recovered_revision = recovered_revision.max(record.revision);
            let key = (
                record.kind.index(),
                record.namespace.clone(),
                record.name.clone(),
            );
            let seen = state.get(&key).map(|(rv, _)| *rv).unwrap_or(0);
            if record.revision <= seen {
                continue;
            }
            report.replayed += 1;
            match record.op {
                WatchEventKind::Deleted => {
                    state.insert(key, (record.revision, None));
                }
                _ => {
                    let body = record
                        .body
                        .ok_or_else(|| invalid("WAL write record without body".to_owned()))?;
                    let object = K8sObject::from_shared(body)
                        .map_err(|e| invalid(format!("WAL object: {e}")))?;
                    state.insert(key, (record.revision, Some(object)));
                }
            }
        }

        let objects: Vec<StoredObject> = state
            .into_values()
            .filter_map(|(resource_version, object)| {
                object.map(|object| StoredObject {
                    object,
                    resource_version,
                })
            })
            .collect();
        report.live_objects = objects.len();
        report.recovered_revision = recovered_revision;

        let mut store =
            ObjectStore::with_journal_config(config.journal_capacity, config.journal_shards);
        store.restore(objects, recovered_revision);
        let wal = Arc::new(Wal::open(&wal_path, config.fsync, recovered_revision)?);
        store.attach_wal(Arc::clone(&wal));
        Ok((
            store,
            Persistence {
                dir: config.dir,
                wal,
            },
            report,
        ))
    }

    /// The WAL this directory's store appends to.
    pub fn wal(&self) -> &Arc<Wal> {
        &self.wal
    }

    /// The persistence directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Checkpoint: snapshot the store at the current revision horizon, then
    /// compact the WAL to the records above it. Safe to run concurrently
    /// with writes — the horizon is read *before* the scan, every record at
    /// or below it is fully reflected by the scan (revision allocation and
    /// the map effect share the shard lock), and replay's revision guard
    /// absorbs the overlap above it.
    ///
    /// # Errors
    ///
    /// Filesystem errors writing the snapshot or rewriting the WAL.
    pub fn checkpoint(&self, store: &ObjectStore) -> io::Result<CheckpointReport> {
        let horizon = StoreBackend::revision(store);
        let objects = store.snapshot_objects();
        write_snapshot(&self.dir.join(SNAPSHOT_FILE), horizon, &objects)?;
        let wal_retained = self.wal.compact(&self.dir.join(WAL_FILE), horizon)?;
        Ok(CheckpointReport {
            revision: horizon,
            objects: objects.len(),
            wal_retained,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn temp_dir(label: &str) -> PathBuf {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "kf-persist-{label}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn pod(namespace: &str, name: &str, image: &str) -> K8sObject {
        K8sObject::from_yaml(&format!(
            "apiVersion: v1\nkind: Pod\nmetadata:\n  name: {name}\n  namespace: {namespace}\nspec:\n  containers:\n    - name: app\n      image: {image}\n"
        ))
        .expect("pod parses")
    }

    fn record(revision: u64, op: WatchEventKind, namespace: &str, name: &str) -> WalRecord {
        let body = (op != WatchEventKind::Deleted)
            .then(|| Arc::clone(pod(namespace, name, "nginx").shared_body()));
        WalRecord {
            revision,
            kind: ResourceKind::Pod,
            op,
            namespace: namespace.to_owned(),
            name: name.to_owned(),
            body,
        }
    }

    #[test]
    fn wal_records_round_trip_through_the_file() {
        let dir = temp_dir("roundtrip");
        let path = dir.join(WAL_FILE);
        let wal = Wal::open(&path, FsyncPolicy::Always, 0).expect("open");
        let records = vec![
            record(1, WatchEventKind::Added, "default", "a"),
            record(2, WatchEventKind::Modified, "default", "a"),
            record(3, WatchEventKind::Deleted, "default", "a"),
        ];
        wal.append(&records);
        assert_eq!(wal.durable_revision(), 3);
        assert!(wal.last_error().is_none());
        let replay = read_wal(&path).expect("read");
        assert!(replay.torn.is_none());
        assert_eq!(replay.records.len(), 3);
        for (got, want) in replay.records.iter().zip(&records) {
            assert_eq!(got.revision, want.revision);
            assert_eq!(got.op, want.op);
            assert_eq!(got.namespace, want.namespace);
            assert_eq!(got.name, want.name);
            assert_eq!(
                got.body.as_deref(),
                want.body.as_deref(),
                "bodies decode identically"
            );
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_truncation_point_recovers_the_intact_prefix_without_panicking() {
        let dir = temp_dir("torn");
        let path = dir.join(WAL_FILE);
        let wal = Wal::open(&path, FsyncPolicy::Always, 0).expect("open");
        let records: Vec<WalRecord> = (1..=4)
            .map(|r| record(r, WatchEventKind::Added, "default", &format!("pod-{r}")))
            .collect();
        wal.append(&records);
        drop(wal);
        let full = fs::read(&path).expect("read full WAL");
        // Frame boundaries: prefix sums of the four frames.
        let mut boundaries = vec![0usize];
        {
            let mut offset = 0;
            while offset < full.len() {
                let len = u32::from_le_bytes(full[offset..offset + 4].try_into().unwrap());
                offset += 8 + len as usize;
                boundaries.push(offset);
            }
        }
        for cut in 0..full.len() {
            fs::write(&path, &full[..cut]).expect("write truncated WAL");
            let replay = recover_wal(&path).expect("recover");
            let intact = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(replay.records.len(), intact, "cut at {cut}");
            if boundaries.contains(&cut) {
                assert!(replay.torn.is_none(), "cut at {cut} is a frame boundary");
            } else {
                let torn = replay.torn.expect("mid-frame cut is torn");
                assert_eq!(torn.valid_len, boundaries[intact] as u64);
                // The file was physically truncated to the intact prefix.
                assert_eq!(fs::metadata(&path).expect("metadata").len(), torn.valid_len);
            }
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_mid_frame_bytes_cut_the_tail_cleanly() {
        let dir = temp_dir("corrupt");
        let path = dir.join(WAL_FILE);
        let wal = Wal::open(&path, FsyncPolicy::Always, 0).expect("open");
        let records: Vec<WalRecord> = (1..=3)
            .map(|r| record(r, WatchEventKind::Added, "default", &format!("pod-{r}")))
            .collect();
        wal.append(&records);
        drop(wal);
        let mut bytes = fs::read(&path).expect("read");
        // Flip one byte inside the *second* frame's payload.
        let first_len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let second_payload_start = first_len + 8 + 8;
        bytes[second_payload_start + 10] ^= 0xFF;
        fs::write(&path, &bytes).expect("write corrupted");
        let replay = recover_wal(&path).expect("recover");
        assert_eq!(replay.records.len(), 1, "only the first frame survives");
        assert_eq!(
            replay.torn.expect("corruption detected").valid_len,
            (first_len + 8) as u64
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_policy_defers_durability_until_the_batch_fills() {
        let dir = temp_dir("batch");
        let path = dir.join(WAL_FILE);
        let wal = Wal::open(&path, FsyncPolicy::Batch(3), 0).expect("open");
        wal.append(&[record(1, WatchEventKind::Added, "default", "a")]);
        wal.append(&[record(2, WatchEventKind::Added, "default", "b")]);
        assert_eq!(wal.durable_revision(), 0, "below the batch threshold");
        wal.append(&[record(3, WatchEventKind::Added, "default", "c")]);
        assert_eq!(wal.durable_revision(), 3, "threshold reached");
        wal.append(&[record(4, WatchEventKind::Added, "default", "d")]);
        assert_eq!(wal.sync().expect("manual sync"), 4);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_round_trips_and_rejects_corruption() {
        let dir = temp_dir("snap");
        let path = dir.join(SNAPSHOT_FILE);
        let objects: Vec<Arc<StoredObject>> = (1..=5)
            .map(|v| {
                Arc::new(StoredObject {
                    object: pod("ns", &format!("pod-{v}"), "nginx"),
                    resource_version: v,
                })
            })
            .collect();
        write_snapshot(&path, 5, &objects).expect("write");
        let data = read_snapshot(&path).expect("read").expect("present");
        assert_eq!(data.revision, 5);
        assert_eq!(data.objects.len(), 5);
        for ((rv, body), original) in data.objects.iter().zip(&objects) {
            assert_eq!(*rv, original.resource_version);
            assert_eq!(body, original.object.body(), "byte-identical tree");
        }
        // No tmp file left behind; corruption is rejected, not loaded.
        assert!(!path.with_extension("kfsnap.tmp").exists());
        let mut bytes = fs::read(&path).expect("read bytes");
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        fs::write(&path, &bytes).expect("write corrupted");
        let err = read_snapshot(&path).expect_err("corrupt snapshot rejected");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_files_recover_to_an_empty_store() {
        let dir = temp_dir("empty");
        let (store, _persistence, report) =
            Persistence::open(PersistConfig::new(&dir)).expect("open");
        assert_eq!(StoreBackend::len(&store), 0);
        assert_eq!(report.recovered_revision, 0);
        assert_eq!(report.wal_records, 0);
        assert!(report.torn_tail.is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_policy_parses_its_knob_spellings() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("os"), Some(FsyncPolicy::Os));
        assert_eq!(FsyncPolicy::parse("batch:64"), Some(FsyncPolicy::Batch(64)));
        assert_eq!(FsyncPolicy::parse("batch:"), None);
        assert_eq!(FsyncPolicy::parse("nope"), None);
    }
}
