//! The API request/response model.

use std::sync::Arc;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use k8s_model::{K8sObject, ResourceKind, Verb};
use kf_yaml::{BodyFormat, Value};

/// The payload of an API request as it travels through the admission path.
///
/// Mutating requests historically carried a pre-parsed [`Value`] tree; the
/// wire-faithful path carries the raw bytes instead — YAML or JSON, tagged
/// with their [`BodyFormat`] — so the enforcement proxy can validate **while
/// parsing** and a malicious payload is never materialized before the first
/// policy check. The tree variant is kept for the legacy path and is
/// `Arc`-shared, so request construction, cloning and audit snapshots stop
/// paying per-request deep copies of the document.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum RequestBody {
    /// No payload (read-only verbs).
    #[default]
    None,
    /// A pre-parsed, shared document tree (the legacy in-process path).
    Tree(Arc<Value>),
    /// The raw wire bytes of the payload, with their serialization format
    /// ([`BodyFormat::Auto`] defers detection to the consumer).
    Raw(Bytes, BodyFormat),
}

impl RequestBody {
    /// Whether the request carries no payload.
    pub fn is_none(&self) -> bool {
        matches!(self, RequestBody::None)
    }

    /// Whether the request carries a payload (tree or raw).
    pub fn is_some(&self) -> bool {
        !self.is_none()
    }

    /// The shared document tree, if the body is the pre-parsed variant.
    pub fn tree(&self) -> Option<&Arc<Value>> {
        match self {
            RequestBody::Tree(value) => Some(value),
            _ => None,
        }
    }

    /// The raw wire bytes, if the body is the raw variant.
    pub fn raw(&self) -> Option<&Bytes> {
        match self {
            RequestBody::Raw(bytes, _) => Some(bytes),
            _ => None,
        }
    }

    /// The declared wire format, if the body is the raw variant.
    pub fn format(&self) -> Option<BodyFormat> {
        match self {
            RequestBody::Raw(_, format) => Some(*format),
            _ => None,
        }
    }

    /// Materialize the payload as a shared document tree: `Tree` bodies are
    /// a cheap `Arc` clone, `Raw` bodies are parsed by their declared format
    /// (a raw body must be one well-formed YAML or JSON document).
    ///
    /// # Errors
    ///
    /// Returns a description of the defect when a raw body is not valid
    /// UTF-8, does not parse, or contains more than one document.
    pub fn materialize(&self) -> Result<Option<Arc<Value>>, String> {
        self.materialize_as(None)
    }

    /// [`RequestBody::materialize`] with an optional negotiated format
    /// override for raw bodies (the request's `Content-Type`, when it named
    /// an encoding); `None` keeps the body's own tag.
    pub fn materialize_as(
        &self,
        negotiated: Option<BodyFormat>,
    ) -> Result<Option<Arc<Value>>, String> {
        match self {
            RequestBody::None => Ok(None),
            RequestBody::Tree(value) => Ok(Some(Arc::clone(value))),
            RequestBody::Raw(bytes, format) => {
                let text = std::str::from_utf8(bytes)
                    .map_err(|_| "request body is not valid UTF-8".to_owned())?;
                match negotiated.unwrap_or(*format).resolve(text) {
                    BodyFormat::Json => kf_yaml::parse_json(text)
                        .map(|doc| Some(Arc::new(doc)))
                        .map_err(|e| e.to_string()),
                    _ => {
                        let mut docs = kf_yaml::parse_documents(text).map_err(|e| e.to_string())?;
                        if docs.len() != 1 {
                            return Err(format!(
                                "expected a single YAML document, found {}",
                                docs.len()
                            ));
                        }
                        Ok(Some(Arc::new(docs.remove(0))))
                    }
                }
            }
        }
    }
}

impl From<Value> for RequestBody {
    fn from(value: Value) -> Self {
        RequestBody::Tree(Arc::new(value))
    }
}

impl From<Arc<Value>> for RequestBody {
    fn from(value: Arc<Value>) -> Self {
        RequestBody::Tree(value)
    }
}

/// An authenticated request to the (simulated) API server.
///
/// This mirrors what the KubeFence proxy sees on the wire: the HTTP verb and
/// resource path (user, verb, kind, namespace, name), the declared
/// `Content-Type`, and the payload carrying the object specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApiRequest {
    /// Authenticated user issuing the request.
    pub user: String,
    /// Request verb.
    pub verb: Verb,
    /// Target resource kind (endpoint).
    pub kind: ResourceKind,
    /// Target namespace (empty for cluster-scoped kinds).
    pub namespace: String,
    /// Target object name (empty for collection operations such as `list`).
    pub name: String,
    /// The `Content-Type` header the client sent, if any. When it names an
    /// encoding ([`BodyFormat::from_content_type`]), that encoding governs
    /// how a raw body is parsed and validated; otherwise the body's own
    /// format tag (ultimately [`BodyFormat::Auto`] detection) decides.
    pub content_type: Option<String>,
    /// For `watch` requests: the `resourceVersion` query parameter. `None`
    /// asks for an initial list plus a resume cursor; `Some(revision)`
    /// resumes the event stream after that revision (answered with `410
    /// Gone` when the journal has compacted past it).
    pub resource_version: Option<u64>,
    /// The object specification carried by mutating requests.
    pub body: RequestBody,
}

impl ApiRequest {
    /// A `create` request for an object (pre-parsed tree body).
    pub fn create(user: &str, object: &K8sObject) -> Self {
        Self::mutating(user, Verb::Create, object)
    }

    /// An `update` request for an object (pre-parsed tree body).
    pub fn update(user: &str, object: &K8sObject) -> Self {
        Self::mutating(user, Verb::Update, object)
    }

    /// A `create` request carrying the object as raw YAML wire bytes — what
    /// a YAML-speaking client puts on the network. The manifest is
    /// serialized once; replaying the request clones only the byte buffer
    /// handle.
    pub fn create_raw(user: &str, object: &K8sObject) -> Self {
        Self::mutating(user, Verb::Create, object).into_raw()
    }

    /// An `update` request carrying the object as raw YAML wire bytes.
    pub fn update_raw(user: &str, object: &K8sObject) -> Self {
        Self::mutating(user, Verb::Update, object).into_raw()
    }

    /// A `create` request carrying the object as raw JSON wire bytes — the
    /// dominant format real API clients submit.
    pub fn create_raw_json(user: &str, object: &K8sObject) -> Self {
        Self::mutating(user, Verb::Create, object).into_raw_json()
    }

    /// An `update` request carrying the object as raw JSON wire bytes.
    pub fn update_raw_json(user: &str, object: &K8sObject) -> Self {
        Self::mutating(user, Verb::Update, object).into_raw_json()
    }

    /// Convert a tree-bodied request into a raw YAML-bodied one by
    /// serializing the payload (a no-op for body-less and already-raw
    /// requests). The request declares `application/yaml`, as a real
    /// YAML-speaking client would.
    pub fn into_raw(mut self) -> Self {
        if let RequestBody::Tree(value) = &self.body {
            self.body = RequestBody::Raw(Bytes::from(kf_yaml::to_yaml(value)), BodyFormat::Yaml);
            self.content_type = Some("application/yaml".to_owned());
        }
        self
    }

    /// Convert a tree-bodied request into a raw JSON-bodied one by
    /// serializing the payload (a no-op for body-less and already-raw
    /// requests). The request declares `application/json`.
    pub fn into_raw_json(mut self) -> Self {
        if let RequestBody::Tree(value) = &self.body {
            self.body = RequestBody::Raw(Bytes::from(kf_yaml::to_json(value)), BodyFormat::Json);
            self.content_type = Some("application/json".to_owned());
        }
        self
    }

    /// Declare a `Content-Type` header, builder style.
    pub fn with_content_type(mut self, content_type: &str) -> Self {
        self.content_type = Some(content_type.to_owned());
        self
    }

    /// The wire format negotiated for a raw body: the `Content-Type`'s
    /// encoding when the header names one, else the body's own format tag
    /// ([`BodyFormat::Auto`] defers to first-byte detection). `None` for
    /// body-less and pre-parsed (tree) requests, which have no wire
    /// encoding to negotiate.
    pub fn wire_format(&self) -> Option<BodyFormat> {
        let tagged = self.body.format()?;
        Some(
            self.content_type
                .as_deref()
                .and_then(BodyFormat::from_content_type)
                .unwrap_or(tagged),
        )
    }

    /// Materialize the request body under the negotiated wire format — the
    /// form the API server and baseline proxy use, so content negotiation
    /// governs parsing exactly like it governs streaming validation.
    ///
    /// # Errors
    ///
    /// Those of [`RequestBody::materialize`].
    pub fn materialize_body(&self) -> Result<Option<Arc<Value>>, String> {
        self.body.materialize_as(self.wire_format())
    }

    fn mutating(user: &str, verb: Verb, object: &K8sObject) -> Self {
        let namespace = if object.kind().is_namespaced() && object.namespace().is_empty() {
            "default".to_owned()
        } else {
            object.namespace().to_owned()
        };
        ApiRequest {
            user: user.to_owned(),
            verb,
            kind: object.kind(),
            namespace,
            name: object.name().to_owned(),
            content_type: None,
            resource_version: None,
            // The request shares the object's tree; nothing is deep-cloned
            // on construction, replay, or audit capture.
            body: RequestBody::Tree(Arc::clone(object.shared_body())),
        }
    }

    /// A `get` request for a named object.
    pub fn get(user: &str, kind: ResourceKind, namespace: &str, name: &str) -> Self {
        ApiRequest {
            user: user.to_owned(),
            verb: Verb::Get,
            kind,
            namespace: namespace.to_owned(),
            name: name.to_owned(),
            content_type: None,
            resource_version: None,
            body: RequestBody::None,
        }
    }

    /// A `list` request for a collection.
    pub fn list(user: &str, kind: ResourceKind, namespace: &str) -> Self {
        ApiRequest {
            user: user.to_owned(),
            verb: Verb::List,
            kind,
            namespace: namespace.to_owned(),
            name: String::new(),
            content_type: None,
            resource_version: None,
            body: RequestBody::None,
        }
    }

    /// A `watch` request for a collection: `resource_version: None` asks
    /// for the initial list plus a resume cursor, `Some(revision)` streams
    /// the events published after that revision.
    pub fn watch(
        user: &str,
        kind: ResourceKind,
        namespace: &str,
        resource_version: Option<u64>,
    ) -> Self {
        ApiRequest {
            user: user.to_owned(),
            verb: Verb::Watch,
            kind,
            namespace: namespace.to_owned(),
            name: String::new(),
            content_type: None,
            resource_version,
            body: RequestBody::None,
        }
    }

    /// A `delete-collection` request: deletes every object of the kind in
    /// the namespace (all namespaces when empty).
    pub fn delete_collection(user: &str, kind: ResourceKind, namespace: &str) -> Self {
        ApiRequest {
            user: user.to_owned(),
            verb: Verb::DeleteCollection,
            kind,
            namespace: namespace.to_owned(),
            name: String::new(),
            content_type: None,
            resource_version: None,
            body: RequestBody::None,
        }
    }

    /// A `delete` request for a named object.
    pub fn delete(user: &str, kind: ResourceKind, namespace: &str, name: &str) -> Self {
        ApiRequest {
            user: user.to_owned(),
            verb: Verb::Delete,
            kind,
            namespace: namespace.to_owned(),
            name: name.to_owned(),
            content_type: None,
            resource_version: None,
            body: RequestBody::None,
        }
    }

    /// The URL path targeted by the request.
    pub fn path(&self) -> String {
        let collection = self.kind.collection_path(&self.namespace);
        if self.name.is_empty() {
            collection
        } else {
            format!("{collection}/{}", self.name)
        }
    }

    /// The HTTP method corresponding to the verb.
    pub fn http_method(&self) -> &'static str {
        self.verb.http_method()
    }

    /// The encoded request payload (empty for body-less requests); used by
    /// the latency model to account for serialization and transfer cost.
    /// Raw bodies are already encoded — the call is a cheap handle clone.
    pub fn payload(&self) -> Bytes {
        match &self.body {
            RequestBody::None => Bytes::new(),
            RequestBody::Tree(body) => Bytes::from(kf_yaml::to_yaml(body)),
            RequestBody::Raw(bytes, _) => bytes.clone(),
        }
    }

    /// Payload size in bytes.
    pub fn payload_size(&self) -> usize {
        self.payload().len()
    }

    /// Interpret the request body as a Kubernetes object, if present. Tree
    /// bodies share their tree with the returned object; raw bodies parse a
    /// fresh one — parsing is why the enforcement hot path avoids this call.
    pub fn object(&self) -> Option<K8sObject> {
        let body = self.materialize_body().ok()??;
        K8sObject::from_shared(body).ok()
    }
}

/// Response status classes used by the simulated server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResponseStatus {
    /// 200 — request served.
    Ok,
    /// 201 — object created.
    Created,
    /// 400 — malformed request body.
    BadRequest,
    /// 403 — denied by authorization or by the KubeFence proxy.
    Forbidden,
    /// 404 — object not found.
    NotFound,
    /// 409 — conflict (e.g. create over an existing object).
    Conflict,
    /// 410 — a watch cursor older than the journal's compaction horizon;
    /// the client must re-list and resume from a fresh cursor.
    Gone,
    /// 429 — load shed: the admission gate could not seat the request
    /// within its deadline budget; the client should back off and retry.
    TooManyRequests,
    /// 503 — the server's durability is degraded and the fail-closed
    /// policy rejects mutating requests until the WAL is healthy again.
    ServiceUnavailable,
}

impl ResponseStatus {
    /// The numeric HTTP status code.
    pub fn code(&self) -> u16 {
        match self {
            ResponseStatus::Ok => 200,
            ResponseStatus::Created => 201,
            ResponseStatus::BadRequest => 400,
            ResponseStatus::Forbidden => 403,
            ResponseStatus::NotFound => 404,
            ResponseStatus::Conflict => 409,
            ResponseStatus::Gone => 410,
            ResponseStatus::TooManyRequests => 429,
            ResponseStatus::ServiceUnavailable => 503,
        }
    }
}

/// The payload of an [`ApiResponse`], held as shared handles: a `get`
/// returns the stored object's tree, a `list` returns one handle per stored
/// object — serving a read **never copies a document**, which is the read
/// half of the zero-copy persistence plane.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// A single object (get responses).
    Object(Arc<Value>),
    /// A collection (list responses): the `<Kind>List` envelope kind and
    /// the item handles, in key order.
    List {
        /// The list kind (`PodList`, `DeploymentList`, …).
        kind: String,
        /// The stored objects' shared trees.
        items: Vec<Arc<Value>>,
    },
    /// One batch of a watch stream: the events published since the client's
    /// cursor (ending with a bookmark), plus the cursor to resume from. The
    /// events' object payloads are the stored trees — shared handles, like
    /// every other read.
    WatchBatch {
        /// The batch kind (`PodWatchBatch`, `DeploymentWatchBatch`, …).
        kind: String,
        /// The delivered events, in revision order.
        events: Vec<crate::WatchEvent>,
        /// Resume cursor: pass as `resourceVersion` on the next watch.
        cursor: u64,
    },
}

impl ResponseBody {
    /// The object tree, for single-object responses.
    pub fn object(&self) -> Option<&Arc<Value>> {
        match self {
            ResponseBody::Object(value) => Some(value),
            _ => None,
        }
    }

    /// The item handles, for collection responses.
    pub fn items(&self) -> Option<&[Arc<Value>]> {
        match self {
            ResponseBody::List { items, .. } => Some(items),
            _ => None,
        }
    }

    /// The delivered events and resume cursor, for watch responses.
    pub fn watch_events(&self) -> Option<(&[crate::WatchEvent], u64)> {
        match self {
            ResponseBody::WatchBatch { events, cursor, .. } => Some((events, *cursor)),
            _ => None,
        }
    }

    /// Render the body as one owned document — the wire shape (`kind:
    /// <Kind>List` + `items:` for collections, `events:` + `resourceVersion`
    /// for watch batches). This **copies** the shared trees; it is the
    /// reference implementation the streaming serializer
    /// ([`ResponseBody::to_wire`]) is pinned byte-identical against, not the
    /// serving path.
    pub fn to_value(&self) -> Value {
        match self {
            ResponseBody::Object(value) => (**value).clone(),
            ResponseBody::List { kind, items } => {
                let mut body = kf_yaml::Mapping::new();
                body.insert("kind", Value::from(kind.as_str()));
                body.insert(
                    "items",
                    Value::Seq(items.iter().map(|item| (**item).clone()).collect()),
                );
                Value::Map(body)
            }
            ResponseBody::WatchBatch {
                kind,
                events,
                cursor,
            } => {
                let mut body = kf_yaml::Mapping::new();
                body.insert("kind", Value::from(kind.as_str()));
                body.insert("resourceVersion", Value::from(*cursor as i64));
                body.insert(
                    "events",
                    Value::Seq(events.iter().map(watch_event_value).collect()),
                );
                Value::Map(body)
            }
        }
    }

    /// Serialize the body to its wire text **straight from the shared item
    /// handles** — no envelope tree, no deep copies. Byte-identical to
    /// rendering [`ResponseBody::to_value`] with [`kf_yaml::to_yaml`] /
    /// [`kf_yaml::to_json`] (pinned by test), which is what it replaces:
    /// the last place the read path copied whole documents.
    pub fn to_wire(&self, format: BodyFormat) -> String {
        match format {
            BodyFormat::Json => self.to_wire_json(),
            // Responses have no bytes to sniff: `Auto` falls back to the
            // canonical YAML rendering.
            _ => self.to_wire_yaml(),
        }
    }

    fn to_wire_yaml(&self) -> String {
        let mut out = String::new();
        match self {
            ResponseBody::Object(value) => return kf_yaml::to_yaml(value),
            ResponseBody::List { kind, items } => {
                kf_yaml::emit_entry("kind", &Value::from(kind.as_str()), 0, &mut out);
                if items.is_empty() {
                    kf_yaml::emit_entry("items", &Value::empty_seq(), 0, &mut out);
                } else {
                    out.push_str("items:\n");
                    for item in items {
                        kf_yaml::emit_seq_item(item, 2, &mut out);
                    }
                }
            }
            ResponseBody::WatchBatch {
                kind,
                events,
                cursor,
            } => {
                kf_yaml::emit_entry("kind", &Value::from(kind.as_str()), 0, &mut out);
                kf_yaml::emit_entry("resourceVersion", &Value::from(*cursor as i64), 0, &mut out);
                if events.is_empty() {
                    kf_yaml::emit_entry("events", &Value::empty_seq(), 0, &mut out);
                } else {
                    out.push_str("events:\n");
                    for event in events {
                        // The event envelope in the emitter's compact
                        // sequence form: first entry on the dash line, the
                        // rest at the same column, the object's stored tree
                        // emitted in place.
                        out.push_str("  - ");
                        kf_yaml::emit_entry_inline(
                            "type",
                            &Value::from(event.kind.as_str()),
                            4,
                            &mut out,
                        );
                        kf_yaml::emit_entry(
                            "revision",
                            &Value::from(event.revision as i64),
                            4,
                            &mut out,
                        );
                        if let Some(object) = &event.object {
                            kf_yaml::emit_entry("object", object, 4, &mut out);
                        }
                    }
                }
            }
        }
        out
    }

    fn to_wire_json(&self) -> String {
        let mut out = String::new();
        match self {
            ResponseBody::Object(value) => kf_yaml::write_json(value, &mut out),
            ResponseBody::List { kind, items } => {
                out.push_str("{\"kind\":");
                kf_yaml::write_json(&Value::from(kind.as_str()), &mut out);
                out.push_str(",\"items\":[");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    kf_yaml::write_json(item, &mut out);
                }
                out.push_str("]}");
            }
            ResponseBody::WatchBatch {
                kind,
                events,
                cursor,
            } => {
                out.push_str("{\"kind\":");
                kf_yaml::write_json(&Value::from(kind.as_str()), &mut out);
                out.push_str(",\"resourceVersion\":");
                out.push_str(&cursor.to_string());
                out.push_str(",\"events\":[");
                for (i, event) in events.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"type\":\"");
                    out.push_str(event.kind.as_str());
                    out.push_str("\",\"revision\":");
                    out.push_str(&event.revision.to_string());
                    if let Some(object) = &event.object {
                        out.push_str(",\"object\":");
                        kf_yaml::write_json(object, &mut out);
                    }
                    out.push('}');
                }
                out.push_str("]}");
            }
        }
        out
    }
}

/// The owned wire envelope of one watch event (the [`ResponseBody::to_value`]
/// reference shape): `type`, `revision`, and the object tree when present.
fn watch_event_value(event: &crate::WatchEvent) -> Value {
    let mut map = kf_yaml::Mapping::new();
    map.insert("type", Value::from(event.kind.as_str()));
    map.insert("revision", Value::from(event.revision as i64));
    if let Some(object) = &event.object {
        map.insert("object", (**object).clone());
    }
    Value::Map(map)
}

impl From<Value> for ResponseBody {
    fn from(value: Value) -> Self {
        ResponseBody::Object(Arc::new(value))
    }
}

impl From<Arc<Value>> for ResponseBody {
    fn from(value: Arc<Value>) -> Self {
        ResponseBody::Object(value)
    }
}

/// The response to an [`ApiRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApiResponse {
    /// Status class.
    pub status: ResponseStatus,
    /// Human-readable message (for errors: the denial reason, logged by the
    /// proxy for auditing and forensics).
    pub message: String,
    /// Response body, when the request returns objects — shared handles to
    /// the stored trees, never copies.
    pub body: Option<ResponseBody>,
}

impl ApiResponse {
    /// A success response with a message.
    pub fn ok(message: impl Into<String>) -> Self {
        ApiResponse {
            status: ResponseStatus::Ok,
            message: message.into(),
            body: None,
        }
    }

    /// A `201 Created` response.
    pub fn created(message: impl Into<String>) -> Self {
        ApiResponse {
            status: ResponseStatus::Created,
            message: message.into(),
            body: None,
        }
    }

    /// An error response with the given status.
    pub fn error(status: ResponseStatus, message: impl Into<String>) -> Self {
        ApiResponse {
            status,
            message: message.into(),
            body: None,
        }
    }

    /// Attach a response body, builder style.
    pub fn with_body(mut self, body: impl Into<ResponseBody>) -> Self {
        self.body = Some(body.into());
        self
    }

    /// Whether the response is a success (2xx).
    pub fn is_success(&self) -> bool {
        matches!(self.status, ResponseStatus::Ok | ResponseStatus::Created)
    }

    /// Whether the request was rejected by authorization or policy (403).
    pub fn is_denied(&self) -> bool {
        self.status == ResponseStatus::Forbidden
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pod() -> K8sObject {
        K8sObject::from_yaml(
            "apiVersion: v1\nkind: Pod\nmetadata:\n  name: web\nspec:\n  containers:\n    - name: c\n      image: nginx\n",
        )
        .unwrap()
    }

    #[test]
    fn create_requests_default_the_namespace() {
        let req = ApiRequest::create("alice", &pod());
        assert_eq!(req.namespace, "default");
        assert_eq!(req.verb, Verb::Create);
        assert_eq!(req.name, "web");
        assert!(req.body.is_some());
    }

    #[test]
    fn raw_requests_carry_bytes_and_replay_cheaply() {
        let object = pod();
        let req = ApiRequest::create_raw("alice", &object);
        let bytes = req.body.raw().expect("raw body");
        assert_eq!(&bytes[..], object.to_yaml().as_bytes());
        // Cloning a raw request shares the buffer; no re-serialization.
        let cloned = req.clone();
        assert_eq!(cloned.body.raw().unwrap().len(), bytes.len());
        // The raw body materializes back to the same document.
        let tree = req.body.materialize().unwrap().unwrap();
        assert!(tree.loosely_equals(object.body()));
        assert_eq!(req.object().unwrap().name(), "web");
    }

    #[test]
    fn materialize_rejects_malformed_raw_bodies() {
        let bad = ApiRequest {
            body: RequestBody::Raw(Bytes::from("a: 1\n   broken\n"), BodyFormat::Yaml),
            ..ApiRequest::get("alice", ResourceKind::Pod, "default", "web")
        };
        assert!(bad.body.materialize().is_err());
        let multi = ApiRequest {
            body: RequestBody::Raw(Bytes::from("kind: Pod\n---\nkind: Pod\n"), BodyFormat::Yaml),
            ..ApiRequest::get("alice", ResourceKind::Pod, "default", "web")
        };
        assert!(multi.body.materialize().is_err());
        let bad_json = ApiRequest {
            body: RequestBody::Raw(Bytes::from("{\"kind\": }"), BodyFormat::Json),
            ..ApiRequest::get("alice", ResourceKind::Pod, "default", "web")
        };
        assert!(bad_json.body.materialize().is_err());
    }

    #[test]
    fn into_raw_serializes_tree_bodies_once() {
        let req = ApiRequest::create("alice", &pod()).into_raw();
        assert!(req.body.raw().is_some());
        assert_eq!(req.body.format(), Some(BodyFormat::Yaml));
        let get = ApiRequest::get("alice", ResourceKind::Pod, "default", "web").into_raw();
        assert!(get.body.is_none());
    }

    #[test]
    fn json_raw_requests_carry_bytes_and_materialize_back() {
        let object = pod();
        let req = ApiRequest::create_raw_json("alice", &object);
        assert_eq!(req.body.format(), Some(BodyFormat::Json));
        let bytes = req.body.raw().expect("raw body");
        assert_eq!(bytes.first(), Some(&b'{'), "JSON bodies start at `{{`");
        // The raw JSON body materializes back to the same document the YAML
        // form produces.
        let tree = req.body.materialize().unwrap().unwrap();
        assert!(tree.loosely_equals(object.body()));
        assert_eq!(req.object().unwrap().name(), "web");
        // Auto-format bodies detect JSON from the first significant byte.
        let auto = ApiRequest {
            body: RequestBody::Raw(bytes.clone(), BodyFormat::Auto),
            ..req.clone()
        };
        let tree = auto.body.materialize().unwrap().unwrap();
        assert!(tree.loosely_equals(object.body()));
    }

    #[test]
    fn content_type_negotiates_the_raw_body_format() {
        let object = pod();
        // Raw constructors declare their canonical media type…
        let yaml = ApiRequest::create_raw("alice", &object);
        assert_eq!(yaml.content_type.as_deref(), Some("application/yaml"));
        assert_eq!(yaml.wire_format(), Some(BodyFormat::Yaml));
        let json = ApiRequest::create_raw_json("alice", &object);
        assert_eq!(json.content_type.as_deref(), Some("application/json"));
        assert_eq!(json.wire_format(), Some(BodyFormat::Json));
        // …and an explicit header overrides an Auto-tagged body.
        let auto = ApiRequest {
            body: RequestBody::Raw(json.body.raw().unwrap().clone(), BodyFormat::Auto),
            ..json.clone()
        }
        .with_content_type("application/json;stream=watch");
        assert_eq!(auto.wire_format(), Some(BodyFormat::Json));
        assert!(auto
            .materialize_body()
            .unwrap()
            .unwrap()
            .loosely_equals(object.body()));
        // A media type naming neither encoding falls back to the body tag
        // (Auto → first-byte detection).
        let unknown = auto.with_content_type("application/vnd.kubernetes.protobuf");
        assert_eq!(unknown.wire_format(), Some(BodyFormat::Auto));
        assert!(unknown
            .materialize_body()
            .unwrap()
            .unwrap()
            .loosely_equals(object.body()));
        // Body-less requests have nothing to negotiate.
        assert_eq!(
            ApiRequest::get("alice", ResourceKind::Pod, "default", "web")
                .with_content_type("application/json")
                .wire_format(),
            None
        );
    }

    #[test]
    fn tree_requests_share_the_object_tree() {
        let object = pod();
        let req = ApiRequest::create("alice", &object);
        let body = req.body.tree().expect("tree body");
        assert!(
            std::sync::Arc::ptr_eq(body, object.shared_body()),
            "request construction must not deep-clone the manifest"
        );
        // The parsed-back object shares it too.
        let parsed = req.object().unwrap();
        assert!(std::sync::Arc::ptr_eq(parsed.shared_body(), body));
    }

    #[test]
    fn response_bodies_are_shared_handles() {
        let tree = Arc::new(kf_yaml::parse("kind: Pod\nmetadata:\n  name: x\n").unwrap());
        let response = ApiResponse::ok("ok").with_body(Arc::clone(&tree));
        let body = response.body.as_ref().unwrap();
        assert!(Arc::ptr_eq(body.object().unwrap(), &tree));
        assert!(body.items().is_none());
        let list = ApiResponse::ok("ok").with_body(ResponseBody::List {
            kind: "PodList".to_owned(),
            items: vec![Arc::clone(&tree), Arc::clone(&tree)],
        });
        let body = list.body.as_ref().unwrap();
        assert_eq!(body.items().unwrap().len(), 2);
        assert!(Arc::ptr_eq(&body.items().unwrap()[0], &tree));
        // The streaming serializer carries the wire shape without touching
        // the reference (deep-copying) renderer.
        let rendered = kf_yaml::parse(&body.to_wire(BodyFormat::Yaml)).unwrap();
        assert_eq!(rendered.get("kind").unwrap().as_str(), Some("PodList"));
        assert_eq!(rendered.get("items").unwrap().as_seq().unwrap().len(), 2);
    }

    /// Every [`ResponseBody`] shape a server can produce, for the wire
    /// serializer pin below.
    fn response_body_corpus() -> Vec<ResponseBody> {
        let pod = Arc::new(
            kf_yaml::parse(
                "apiVersion: v1\nkind: Pod\nmetadata:\n  name: web\n  labels:\n    app: \"1\"\nspec:\n  containers:\n    - name: c\n      image: nginx\n      ports:\n        - containerPort: 80\n",
            )
            .unwrap(),
        );
        let svc = Arc::new(kf_yaml::parse("kind: Service\nmetadata:\n  name: s\n").unwrap());
        let added = crate::WatchEvent {
            kind: crate::WatchEventKind::Added,
            revision: 1,
            namespace: "default".into(),
            name: "web".into(),
            object: Some(Arc::clone(&pod)),
        };
        let deleted = crate::WatchEvent {
            kind: crate::WatchEventKind::Deleted,
            revision: 5,
            namespace: "default".into(),
            name: "s".into(),
            object: Some(Arc::clone(&svc)),
        };
        vec![
            ResponseBody::Object(Arc::clone(&pod)),
            ResponseBody::List {
                kind: "PodList".into(),
                items: vec![Arc::clone(&pod), Arc::clone(&svc)],
            },
            ResponseBody::List {
                kind: "PodList".into(),
                items: Vec::new(),
            },
            ResponseBody::WatchBatch {
                kind: "PodWatchBatch".into(),
                events: vec![added, deleted, crate::WatchEvent::bookmark(7)],
                cursor: 7,
            },
            ResponseBody::WatchBatch {
                kind: "PodWatchBatch".into(),
                events: Vec::new(),
                cursor: 0,
            },
        ]
    }

    #[test]
    fn streaming_wire_serializer_matches_the_owned_reference_byte_for_byte() {
        for body in response_body_corpus() {
            let reference = body.to_value();
            assert_eq!(
                body.to_wire(BodyFormat::Yaml),
                kf_yaml::to_yaml(&reference),
                "YAML wire bytes diverged for {body:?}"
            );
            assert_eq!(
                body.to_wire(BodyFormat::Json),
                kf_yaml::to_json(&reference),
                "JSON wire bytes diverged for {body:?}"
            );
            // Auto has no bytes to sniff on the response side: canonical YAML.
            assert_eq!(
                body.to_wire(BodyFormat::Auto),
                body.to_wire(BodyFormat::Yaml)
            );
        }
    }

    #[test]
    fn watch_batch_accessors_expose_events_and_cursor() {
        let batch = response_body_corpus().remove(3);
        let (events, cursor) = batch.watch_events().unwrap();
        assert_eq!(cursor, 7);
        assert_eq!(events.len(), 3);
        assert!(batch.object().is_none());
        assert!(batch.items().is_none());
        let object = ResponseBody::Object(Arc::new(kf_yaml::parse("a: 1\n").unwrap()));
        assert!(object.watch_events().is_none());
    }

    #[test]
    fn paths_follow_api_conventions() {
        let req = ApiRequest::create("alice", &pod());
        assert_eq!(req.path(), "/api/v1/namespaces/default/pods/web");
        assert_eq!(req.http_method(), "POST");
        let list = ApiRequest::list("alice", ResourceKind::Deployment, "prod");
        assert_eq!(list.path(), "/apis/apps/v1/namespaces/prod/deployments");
        assert_eq!(list.http_method(), "GET");
    }

    #[test]
    fn payload_size_reflects_the_encoded_body() {
        let req = ApiRequest::create("alice", &pod());
        assert!(req.payload_size() > 50);
        let get = ApiRequest::get("alice", ResourceKind::Pod, "default", "web");
        assert_eq!(get.payload_size(), 0);
    }

    #[test]
    fn object_parses_back_from_the_body() {
        let req = ApiRequest::create("alice", &pod());
        let object = req.object().unwrap();
        assert_eq!(object.name(), "web");
        assert!(
            ApiRequest::get("alice", ResourceKind::Pod, "default", "web")
                .object()
                .is_none()
        );
    }

    #[test]
    fn response_status_classes() {
        assert!(ApiResponse::ok("fine").is_success());
        assert!(ApiResponse::created("made").is_success());
        let denied = ApiResponse::error(ResponseStatus::Forbidden, "no");
        assert!(denied.is_denied());
        assert!(!denied.is_success());
        assert_eq!(ResponseStatus::Forbidden.code(), 403);
        assert_eq!(ResponseStatus::Created.code(), 201);
    }
}
