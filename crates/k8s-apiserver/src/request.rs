//! The API request/response model.

use std::sync::Arc;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use k8s_model::{K8sObject, ResourceKind, Verb};
use kf_yaml::{BodyFormat, Value};

/// The payload of an API request as it travels through the admission path.
///
/// Mutating requests historically carried a pre-parsed [`Value`] tree; the
/// wire-faithful path carries the raw bytes instead — YAML or JSON, tagged
/// with their [`BodyFormat`] — so the enforcement proxy can validate **while
/// parsing** and a malicious payload is never materialized before the first
/// policy check. The tree variant is kept for the legacy path and is
/// `Arc`-shared, so request construction, cloning and audit snapshots stop
/// paying per-request deep copies of the document.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum RequestBody {
    /// No payload (read-only verbs).
    #[default]
    None,
    /// A pre-parsed, shared document tree (the legacy in-process path).
    Tree(Arc<Value>),
    /// The raw wire bytes of the payload, with their serialization format
    /// ([`BodyFormat::Auto`] defers detection to the consumer).
    Raw(Bytes, BodyFormat),
}

impl RequestBody {
    /// Whether the request carries no payload.
    pub fn is_none(&self) -> bool {
        matches!(self, RequestBody::None)
    }

    /// Whether the request carries a payload (tree or raw).
    pub fn is_some(&self) -> bool {
        !self.is_none()
    }

    /// The shared document tree, if the body is the pre-parsed variant.
    pub fn tree(&self) -> Option<&Arc<Value>> {
        match self {
            RequestBody::Tree(value) => Some(value),
            _ => None,
        }
    }

    /// The raw wire bytes, if the body is the raw variant.
    pub fn raw(&self) -> Option<&Bytes> {
        match self {
            RequestBody::Raw(bytes, _) => Some(bytes),
            _ => None,
        }
    }

    /// The declared wire format, if the body is the raw variant.
    pub fn format(&self) -> Option<BodyFormat> {
        match self {
            RequestBody::Raw(_, format) => Some(*format),
            _ => None,
        }
    }

    /// Materialize the payload as a shared document tree: `Tree` bodies are
    /// a cheap `Arc` clone, `Raw` bodies are parsed by their declared format
    /// (a raw body must be one well-formed YAML or JSON document).
    ///
    /// # Errors
    ///
    /// Returns a description of the defect when a raw body is not valid
    /// UTF-8, does not parse, or contains more than one document.
    pub fn materialize(&self) -> Result<Option<Arc<Value>>, String> {
        match self {
            RequestBody::None => Ok(None),
            RequestBody::Tree(value) => Ok(Some(Arc::clone(value))),
            RequestBody::Raw(bytes, format) => {
                let text = std::str::from_utf8(bytes)
                    .map_err(|_| "request body is not valid UTF-8".to_owned())?;
                match format.resolve(text) {
                    BodyFormat::Json => kf_yaml::parse_json(text)
                        .map(|doc| Some(Arc::new(doc)))
                        .map_err(|e| e.to_string()),
                    _ => {
                        let mut docs = kf_yaml::parse_documents(text).map_err(|e| e.to_string())?;
                        if docs.len() != 1 {
                            return Err(format!(
                                "expected a single YAML document, found {}",
                                docs.len()
                            ));
                        }
                        Ok(Some(Arc::new(docs.remove(0))))
                    }
                }
            }
        }
    }
}

impl From<Value> for RequestBody {
    fn from(value: Value) -> Self {
        RequestBody::Tree(Arc::new(value))
    }
}

/// An authenticated request to the (simulated) API server.
///
/// This mirrors what the KubeFence proxy sees on the wire: the HTTP verb and
/// resource path (user, verb, kind, namespace, name) and the YAML payload
/// carrying the object specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApiRequest {
    /// Authenticated user issuing the request.
    pub user: String,
    /// Request verb.
    pub verb: Verb,
    /// Target resource kind (endpoint).
    pub kind: ResourceKind,
    /// Target namespace (empty for cluster-scoped kinds).
    pub namespace: String,
    /// Target object name (empty for collection operations such as `list`).
    pub name: String,
    /// The object specification carried by mutating requests.
    pub body: RequestBody,
}

impl ApiRequest {
    /// A `create` request for an object (pre-parsed tree body).
    pub fn create(user: &str, object: &K8sObject) -> Self {
        Self::mutating(user, Verb::Create, object)
    }

    /// An `update` request for an object (pre-parsed tree body).
    pub fn update(user: &str, object: &K8sObject) -> Self {
        Self::mutating(user, Verb::Update, object)
    }

    /// A `create` request carrying the object as raw YAML wire bytes — what
    /// a YAML-speaking client puts on the network. The manifest is
    /// serialized once; replaying the request clones only the byte buffer
    /// handle.
    pub fn create_raw(user: &str, object: &K8sObject) -> Self {
        Self::mutating(user, Verb::Create, object).into_raw()
    }

    /// An `update` request carrying the object as raw YAML wire bytes.
    pub fn update_raw(user: &str, object: &K8sObject) -> Self {
        Self::mutating(user, Verb::Update, object).into_raw()
    }

    /// A `create` request carrying the object as raw JSON wire bytes — the
    /// dominant format real API clients submit.
    pub fn create_raw_json(user: &str, object: &K8sObject) -> Self {
        Self::mutating(user, Verb::Create, object).into_raw_json()
    }

    /// An `update` request carrying the object as raw JSON wire bytes.
    pub fn update_raw_json(user: &str, object: &K8sObject) -> Self {
        Self::mutating(user, Verb::Update, object).into_raw_json()
    }

    /// Convert a tree-bodied request into a raw YAML-bodied one by
    /// serializing the payload (a no-op for body-less and already-raw
    /// requests).
    pub fn into_raw(mut self) -> Self {
        if let RequestBody::Tree(value) = &self.body {
            self.body = RequestBody::Raw(Bytes::from(kf_yaml::to_yaml(value)), BodyFormat::Yaml);
        }
        self
    }

    /// Convert a tree-bodied request into a raw JSON-bodied one by
    /// serializing the payload (a no-op for body-less and already-raw
    /// requests).
    pub fn into_raw_json(mut self) -> Self {
        if let RequestBody::Tree(value) = &self.body {
            self.body = RequestBody::Raw(Bytes::from(kf_yaml::to_json(value)), BodyFormat::Json);
        }
        self
    }

    fn mutating(user: &str, verb: Verb, object: &K8sObject) -> Self {
        let namespace = if object.kind().is_namespaced() && object.namespace().is_empty() {
            "default".to_owned()
        } else {
            object.namespace().to_owned()
        };
        ApiRequest {
            user: user.to_owned(),
            verb,
            kind: object.kind(),
            namespace,
            name: object.name().to_owned(),
            body: RequestBody::Tree(Arc::new(object.body().clone())),
        }
    }

    /// A `get` request for a named object.
    pub fn get(user: &str, kind: ResourceKind, namespace: &str, name: &str) -> Self {
        ApiRequest {
            user: user.to_owned(),
            verb: Verb::Get,
            kind,
            namespace: namespace.to_owned(),
            name: name.to_owned(),
            body: RequestBody::None,
        }
    }

    /// A `list` request for a collection.
    pub fn list(user: &str, kind: ResourceKind, namespace: &str) -> Self {
        ApiRequest {
            user: user.to_owned(),
            verb: Verb::List,
            kind,
            namespace: namespace.to_owned(),
            name: String::new(),
            body: RequestBody::None,
        }
    }

    /// A `delete` request for a named object.
    pub fn delete(user: &str, kind: ResourceKind, namespace: &str, name: &str) -> Self {
        ApiRequest {
            user: user.to_owned(),
            verb: Verb::Delete,
            kind,
            namespace: namespace.to_owned(),
            name: name.to_owned(),
            body: RequestBody::None,
        }
    }

    /// The URL path targeted by the request.
    pub fn path(&self) -> String {
        let collection = self.kind.collection_path(&self.namespace);
        if self.name.is_empty() {
            collection
        } else {
            format!("{collection}/{}", self.name)
        }
    }

    /// The HTTP method corresponding to the verb.
    pub fn http_method(&self) -> &'static str {
        self.verb.http_method()
    }

    /// The encoded request payload (empty for body-less requests); used by
    /// the latency model to account for serialization and transfer cost.
    /// Raw bodies are already encoded — the call is a cheap handle clone.
    pub fn payload(&self) -> Bytes {
        match &self.body {
            RequestBody::None => Bytes::new(),
            RequestBody::Tree(body) => Bytes::from(kf_yaml::to_yaml(body)),
            RequestBody::Raw(bytes, _) => bytes.clone(),
        }
    }

    /// Payload size in bytes.
    pub fn payload_size(&self) -> usize {
        self.payload().len()
    }

    /// Interpret the request body as a Kubernetes object, if present.
    /// Tree bodies deep-clone; raw bodies parse — both materialize a fresh
    /// object, which is why the enforcement hot path avoids this call.
    pub fn object(&self) -> Option<K8sObject> {
        let body = self.body.materialize().ok()??;
        K8sObject::from_value((*body).clone()).ok()
    }
}

/// Response status classes used by the simulated server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResponseStatus {
    /// 200 — request served.
    Ok,
    /// 201 — object created.
    Created,
    /// 400 — malformed request body.
    BadRequest,
    /// 403 — denied by authorization or by the KubeFence proxy.
    Forbidden,
    /// 404 — object not found.
    NotFound,
    /// 409 — conflict (e.g. create over an existing object).
    Conflict,
}

impl ResponseStatus {
    /// The numeric HTTP status code.
    pub fn code(&self) -> u16 {
        match self {
            ResponseStatus::Ok => 200,
            ResponseStatus::Created => 201,
            ResponseStatus::BadRequest => 400,
            ResponseStatus::Forbidden => 403,
            ResponseStatus::NotFound => 404,
            ResponseStatus::Conflict => 409,
        }
    }
}

/// The response to an [`ApiRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApiResponse {
    /// Status class.
    pub status: ResponseStatus,
    /// Human-readable message (for errors: the denial reason, logged by the
    /// proxy for auditing and forensics).
    pub message: String,
    /// Response body, when the request returns objects.
    pub body: Option<Value>,
}

impl ApiResponse {
    /// A success response with a message.
    pub fn ok(message: impl Into<String>) -> Self {
        ApiResponse {
            status: ResponseStatus::Ok,
            message: message.into(),
            body: None,
        }
    }

    /// A `201 Created` response.
    pub fn created(message: impl Into<String>) -> Self {
        ApiResponse {
            status: ResponseStatus::Created,
            message: message.into(),
            body: None,
        }
    }

    /// An error response with the given status.
    pub fn error(status: ResponseStatus, message: impl Into<String>) -> Self {
        ApiResponse {
            status,
            message: message.into(),
            body: None,
        }
    }

    /// Attach a response body, builder style.
    pub fn with_body(mut self, body: Value) -> Self {
        self.body = Some(body);
        self
    }

    /// Whether the response is a success (2xx).
    pub fn is_success(&self) -> bool {
        matches!(self.status, ResponseStatus::Ok | ResponseStatus::Created)
    }

    /// Whether the request was rejected by authorization or policy (403).
    pub fn is_denied(&self) -> bool {
        self.status == ResponseStatus::Forbidden
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pod() -> K8sObject {
        K8sObject::from_yaml(
            "apiVersion: v1\nkind: Pod\nmetadata:\n  name: web\nspec:\n  containers:\n    - name: c\n      image: nginx\n",
        )
        .unwrap()
    }

    #[test]
    fn create_requests_default_the_namespace() {
        let req = ApiRequest::create("alice", &pod());
        assert_eq!(req.namespace, "default");
        assert_eq!(req.verb, Verb::Create);
        assert_eq!(req.name, "web");
        assert!(req.body.is_some());
    }

    #[test]
    fn raw_requests_carry_bytes_and_replay_cheaply() {
        let object = pod();
        let req = ApiRequest::create_raw("alice", &object);
        let bytes = req.body.raw().expect("raw body");
        assert_eq!(&bytes[..], object.to_yaml().as_bytes());
        // Cloning a raw request shares the buffer; no re-serialization.
        let cloned = req.clone();
        assert_eq!(cloned.body.raw().unwrap().len(), bytes.len());
        // The raw body materializes back to the same document.
        let tree = req.body.materialize().unwrap().unwrap();
        assert!(tree.loosely_equals(object.body()));
        assert_eq!(req.object().unwrap().name(), "web");
    }

    #[test]
    fn materialize_rejects_malformed_raw_bodies() {
        let bad = ApiRequest {
            body: RequestBody::Raw(Bytes::from("a: 1\n   broken\n"), BodyFormat::Yaml),
            ..ApiRequest::get("alice", ResourceKind::Pod, "default", "web")
        };
        assert!(bad.body.materialize().is_err());
        let multi = ApiRequest {
            body: RequestBody::Raw(Bytes::from("kind: Pod\n---\nkind: Pod\n"), BodyFormat::Yaml),
            ..ApiRequest::get("alice", ResourceKind::Pod, "default", "web")
        };
        assert!(multi.body.materialize().is_err());
        let bad_json = ApiRequest {
            body: RequestBody::Raw(Bytes::from("{\"kind\": }"), BodyFormat::Json),
            ..ApiRequest::get("alice", ResourceKind::Pod, "default", "web")
        };
        assert!(bad_json.body.materialize().is_err());
    }

    #[test]
    fn into_raw_serializes_tree_bodies_once() {
        let req = ApiRequest::create("alice", &pod()).into_raw();
        assert!(req.body.raw().is_some());
        assert_eq!(req.body.format(), Some(BodyFormat::Yaml));
        let get = ApiRequest::get("alice", ResourceKind::Pod, "default", "web").into_raw();
        assert!(get.body.is_none());
    }

    #[test]
    fn json_raw_requests_carry_bytes_and_materialize_back() {
        let object = pod();
        let req = ApiRequest::create_raw_json("alice", &object);
        assert_eq!(req.body.format(), Some(BodyFormat::Json));
        let bytes = req.body.raw().expect("raw body");
        assert_eq!(bytes.first(), Some(&b'{'), "JSON bodies start at `{{`");
        // The raw JSON body materializes back to the same document the YAML
        // form produces.
        let tree = req.body.materialize().unwrap().unwrap();
        assert!(tree.loosely_equals(object.body()));
        assert_eq!(req.object().unwrap().name(), "web");
        // Auto-format bodies detect JSON from the first significant byte.
        let auto = ApiRequest {
            body: RequestBody::Raw(bytes.clone(), BodyFormat::Auto),
            ..req.clone()
        };
        let tree = auto.body.materialize().unwrap().unwrap();
        assert!(tree.loosely_equals(object.body()));
    }

    #[test]
    fn paths_follow_api_conventions() {
        let req = ApiRequest::create("alice", &pod());
        assert_eq!(req.path(), "/api/v1/namespaces/default/pods/web");
        assert_eq!(req.http_method(), "POST");
        let list = ApiRequest::list("alice", ResourceKind::Deployment, "prod");
        assert_eq!(list.path(), "/apis/apps/v1/namespaces/prod/deployments");
        assert_eq!(list.http_method(), "GET");
    }

    #[test]
    fn payload_size_reflects_the_encoded_body() {
        let req = ApiRequest::create("alice", &pod());
        assert!(req.payload_size() > 50);
        let get = ApiRequest::get("alice", ResourceKind::Pod, "default", "web");
        assert_eq!(get.payload_size(), 0);
    }

    #[test]
    fn object_parses_back_from_the_body() {
        let req = ApiRequest::create("alice", &pod());
        let object = req.object().unwrap();
        assert_eq!(object.name(), "web");
        assert!(
            ApiRequest::get("alice", ResourceKind::Pod, "default", "web")
                .object()
                .is_none()
        );
    }

    #[test]
    fn response_status_classes() {
        assert!(ApiResponse::ok("fine").is_success());
        assert!(ApiResponse::created("made").is_success());
        let denied = ApiResponse::error(ResponseStatus::Forbidden, "no");
        assert!(denied.is_denied());
        assert!(!denied.is_success());
        assert_eq!(ResponseStatus::Forbidden.code(), 403);
        assert_eq!(ResponseStatus::Created.code(), 201);
    }
}
