//! The server's graceful-degradation surface: serving policy under storage
//! failure, bounded-admission overload protection, and the aggregated
//! health report.
//!
//! The durability state machine lives in [`crate::persist`]; this module is
//! what the *serving path* does about it. Two knobs:
//!
//! * [`DegradePolicy`] — whether a degraded store keeps accepting writes
//!   from memory (`FailOpen`, the availability default) or rejects mutating
//!   verbs with `503` until durability is re-proven (`FailClosed`, the
//!   etcd-like consistency stance). Reads, lists and watches are served in
//!   either policy and in every durability state — they come from memory
//!   and are correct regardless of what the disk is doing.
//! * [`AdmissionGate`] — a bounded in-flight counter with a deadline
//!   budget. A request that cannot be admitted before its deadline is shed
//!   with `429`, which is the same backpressure contract the watch plane
//!   applies to slow consumers (evict → `Gone` → re-list) moved to the
//!   front door, and the same semaphore shape as the informer fleet's
//!   `RelistGate` (bound the stampede, don't queue it unboundedly).
//!
//! [`HealthReport`] aggregates both with the store's
//! [`DurabilityStatus`](crate::persist::DurabilityStatus) so an operator —
//! or the chaos workload asserting recovery invariants — observes every
//! transition from one surface. See `docs/robustness.md`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::persist::DurabilityStatus;

/// What the serving path does with mutating requests while the store's
/// durability is degraded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradePolicy {
    /// Keep serving writes from memory; durability is demoted to
    /// best-effort until the WAL recovers (availability over durability).
    /// The health surface still reports the gap — the policy changes the
    /// serving behaviour, never the bookkeeping.
    #[default]
    FailOpen,
    /// Reject mutating verbs with `503 Service Unavailable` while the
    /// durability state is not `Healthy`; reads, lists and watches keep
    /// serving (durability over availability).
    FailClosed,
}

impl std::fmt::Display for DegradePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DegradePolicy::FailOpen => "fail-open",
            DegradePolicy::FailClosed => "fail-closed",
        })
    }
}

#[derive(Debug, Default)]
struct GateState {
    in_flight: usize,
    waiting: usize,
}

/// A bounded-admission gate: at most `max_in_flight` requests execute at
/// once, and a request unable to start within its deadline budget is shed.
///
/// Same discipline as the informer fleet's `RelistGate`: a mutex-guarded
/// counter plus a condvar, permits released by RAII drop. Poisoning is
/// recovered (a panicking request must not wedge admission for everyone
/// else), matching the store's lock hygiene.
#[derive(Debug)]
pub struct AdmissionGate {
    max_in_flight: usize,
    deadline: Duration,
    state: Mutex<GateState>,
    freed: Condvar,
    admitted: AtomicU64,
    shed: AtomicU64,
    peak: AtomicUsize,
}

impl AdmissionGate {
    /// A gate admitting at most `max_in_flight` concurrent requests
    /// (clamped to at least 1), each willing to wait up to `deadline` for a
    /// slot before being shed.
    pub fn new(max_in_flight: usize, deadline: Duration) -> AdmissionGate {
        AdmissionGate {
            max_in_flight: max_in_flight.max(1),
            deadline,
            state: Mutex::new(GateState::default()),
            freed: Condvar::new(),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            peak: AtomicUsize::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, GateState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Try to enter the gate, blocking up to the deadline budget for a free
    /// slot. `Ok` carries the RAII permit whose drop frees the slot; `Err`
    /// means the request was shed (the caller answers `429`).
    ///
    /// # Errors
    ///
    /// [`ShedError`] when no slot freed within the deadline.
    pub fn admit(&self) -> Result<AdmissionPermit<'_>, ShedError> {
        let deadline = Instant::now() + self.deadline;
        let mut state = self.lock();
        while state.in_flight >= self.max_in_flight {
            let now = Instant::now();
            if now >= deadline {
                self.shed.fetch_add(1, Ordering::Relaxed);
                return Err(ShedError {
                    in_flight: state.in_flight,
                    waited: self.deadline,
                });
            }
            state.waiting += 1;
            let (next, _timeout) = self
                .freed
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            state = next;
            state.waiting -= 1;
        }
        state.in_flight += 1;
        self.peak.fetch_max(state.in_flight, Ordering::Relaxed);
        self.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(AdmissionPermit { gate: self })
    }

    /// The concurrency bound.
    pub fn max_in_flight(&self) -> usize {
        self.max_in_flight
    }

    /// Requests admitted since construction.
    pub fn admitted_total(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Requests shed (deadline expired waiting) since construction.
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Requests currently executing.
    pub fn in_flight(&self) -> usize {
        self.lock().in_flight
    }

    /// Requests currently blocked waiting for a slot.
    pub fn waiting(&self) -> usize {
        self.lock().waiting
    }

    /// High-water mark of concurrent in-flight requests.
    pub fn peak_in_flight(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }
}

/// RAII admission permit — dropping it frees the slot and wakes one waiter.
#[derive(Debug)]
pub struct AdmissionPermit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        let mut state = self.gate.lock();
        state.in_flight = state.in_flight.saturating_sub(1);
        drop(state);
        self.gate.freed.notify_one();
    }
}

/// Why a request was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedError {
    /// In-flight count observed when the deadline expired.
    pub in_flight: usize,
    /// The deadline budget that elapsed.
    pub waited: Duration,
}

impl std::fmt::Display for ShedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shed after {:?} waiting on {} in-flight requests",
            self.waited, self.in_flight
        )
    }
}

/// A point-in-time health summary of the server: the store's durability
/// status, the serving policy reacting to it, and the admission gate's
/// load counters.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// The store's durability status (state, gap, latched error,
    /// transition count, lost records).
    pub durability: DurabilityStatus,
    /// The degradation policy the serving path applies.
    pub policy: DegradePolicy,
    /// Mutating requests rejected with `503` under `FailClosed`.
    pub rejected_writes: u64,
    /// Requests admitted through the gate (0 when no gate is configured).
    pub admitted_total: u64,
    /// Requests shed with `429` (0 when no gate is configured).
    pub shed_total: u64,
    /// Requests currently executing (0 when no gate is configured).
    pub in_flight: usize,
    /// Requests currently queued at the gate (0 when no gate is
    /// configured).
    pub waiting: usize,
    /// High-water mark of concurrent requests (0 when no gate is
    /// configured).
    pub peak_in_flight: usize,
    /// The gate's concurrency bound, `None` when admission is unbounded.
    pub max_in_flight: Option<usize>,
    /// Shared fsyncs issued by group-commit leaders (0 unless the WAL runs
    /// `FsyncPolicy::Group`).
    pub fsync_batches: u64,
    /// Mean records proven per shared fsync — the group-commit
    /// amortization factor (0.0 before the first batch).
    pub avg_group_size: f64,
    /// Store shards the most recent checkpoint claimed and rewrote (0
    /// before the first checkpoint, and for backends without incremental
    /// checkpoints).
    pub checkpoint_dirty_shards: usize,
}

impl HealthReport {
    /// Whether the server is fully healthy: durability proven (or
    /// explicitly not configured) and nothing latched.
    pub fn healthy(&self) -> bool {
        self.durability.latched.is_none()
            && self.durability.state == crate::persist::DurabilityState::Healthy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn gate_admits_up_to_the_bound_and_sheds_past_the_deadline() {
        let gate = AdmissionGate::new(2, Duration::from_millis(5));
        let a = gate.admit().expect("first");
        let b = gate.admit().expect("second");
        assert_eq!(gate.in_flight(), 2);
        let shed = gate.admit().expect_err("third sheds");
        assert_eq!(shed.in_flight, 2);
        assert_eq!(gate.shed_total(), 1);
        drop(a);
        let c = gate.admit().expect("slot freed");
        drop(b);
        drop(c);
        assert_eq!(gate.in_flight(), 0);
        assert_eq!(gate.admitted_total(), 3);
        assert_eq!(gate.peak_in_flight(), 2);
    }

    #[test]
    fn waiters_are_woken_when_a_permit_drops() {
        let gate = Arc::new(AdmissionGate::new(1, Duration::from_secs(5)));
        let held = gate.admit().expect("holder");
        let waiter = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || gate.admit().map(|_| ()).is_ok())
        };
        // Give the waiter time to park, then free the slot.
        while gate.waiting() == 0 {
            std::thread::yield_now();
        }
        drop(held);
        assert!(waiter.join().expect("waiter thread"), "waiter admitted");
    }

    #[test]
    fn degrade_policy_displays_its_knob_spellings() {
        assert_eq!(DegradePolicy::FailOpen.to_string(), "fail-open");
        assert_eq!(DegradePolicy::FailClosed.to_string(), "fail-closed");
        assert_eq!(DegradePolicy::default(), DegradePolicy::FailOpen);
    }
}
