//! # k8s-apiserver — the simulated Kubernetes API server
//!
//! The paper evaluates KubeFence against a real two-node cluster; this crate
//! provides the substitute described in `DESIGN.md`: an in-process API server
//! that exposes exactly the surface KubeFence interacts with — authenticated
//! REST-style requests carrying YAML object specifications — and implements
//! the behaviours the experiments depend on:
//!
//! * [`ApiRequest`] / [`ApiResponse`] — the request/response model (verb,
//!   resource path, body, payload size);
//! * [`ObjectStore`] — an etcd-like versioned in-memory store;
//! * [`WatchEvent`] / [`WatchSubscription`] — the revision-indexed watch
//!   plane: every write is published into a bounded per-kind journal
//!   (sub-sharded by namespace hash, batched publication on multi-write
//!   paths), so `Verb::Watch` streams incremental events (with
//!   `Gone`-on-compaction semantics) instead of answering with a full list;
//! * [`WatchSubscriber`] / [`WatchDispatcher`] / [`WatchHub`] — the
//!   push-notify fabric: per-subscriber bounded delivery queues fanned out
//!   to inside the publication critical section (same-object coalescing,
//!   slow-consumer eviction → `Gone` → re-list), wake signals that let pull
//!   subscriptions block instead of poll, and an epoll-style readiness
//!   dispatcher for informer fleets;
//! * [`ApiServer`] — request handling: authorization through an optional
//!   [`k8s_rbac::RbacPolicySet`], object validation, persistence, audit
//!   logging, and **CVE-trigger simulation** (a request whose specification
//!   exercises a vulnerable feature records an exploitation event);
//! * [`LatencyModel`] — the calibrated request-latency model used to report
//!   deployment round-trip times (Table IV);
//! * [`RequestHandler`] — the trait shared by the API server and any
//!   man-in-the-middle component (the KubeFence proxy) placed in front of it.
//!
//! ```
//! use k8s_apiserver::{ApiRequest, ApiServer, RequestHandler};
//! use k8s_model::K8sObject;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let server = ApiServer::new();
//! let pod = K8sObject::from_yaml(
//!     "apiVersion: v1\nkind: Pod\nmetadata:\n  name: web\nspec:\n  containers:\n    - name: web\n      image: nginx\n",
//! )?;
//! let response = server.handle(&ApiRequest::create("admin", &pod));
//! assert!(response.is_success());
//! assert_eq!(server.store().len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod health;
mod latency;
pub mod persist;
mod request;
mod server;
pub mod storage_io;
mod store;
mod vuln;
mod watch;

pub use health::{AdmissionGate, AdmissionPermit, DegradePolicy, HealthReport, ShedError};
pub use latency::{LatencyModel, LatencyProfile};
pub use persist::{
    segment_file, CheckpointReport, DurabilityState, DurabilityStatus, DurabilityTransition,
    FsyncPolicy, GroupTicket, LatchedError, ManifestData, ManifestEntry, PersistConfig,
    Persistence, RecoveryReport, RetryPolicy, SegmentData, StorageErrorKind, TornTail, Wal,
    WalRecord, MANIFEST_FILE, MANIFEST_PREV_FILE,
};
pub use request::{ApiRequest, ApiResponse, RequestBody, ResponseBody, ResponseStatus};
pub use server::{ApiServer, ExploitEvent, PushWatch, RequestHandler, WatchHub};
pub use storage_io::{
    FaultKind, FaultOp, FaultSchedule, FaultyIo, PlannedFault, RealIo, StorageIo,
};
pub use store::{BaselineStore, ObjectStore, StoreBackend, StoredObject};
pub use vuln::VulnerabilityOracle;
pub use watch::{
    namespace_shard, WatchDelta, WatchDispatcher, WatchError, WatchEvent, WatchEventKind,
    WatchSubscriber, WatchSubscription, DEFAULT_JOURNAL_CAPACITY, DEFAULT_JOURNAL_SHARDS,
    DEFAULT_SUBSCRIBER_QUEUE_CAPACITY,
};
