//! Ablation studies for the design choices called out in DESIGN.md:
//!
//! * coverage-based variant exploration vs the exhaustive cartesian product;
//! * tree-based validation vs a flat (field-name-only) check;
//! * the effect of disabling the security best-practice locks.

use criterion::{criterion_group, criterion_main, Criterion};

use k8s_apiserver::ApiServer;
use kf_attacks::AttackExecutor;
use kf_workloads::Operator;
use kubefence::schema_gen::ValuesSchemaGenerator;
use kubefence::{
    ConfigurationExplorer, EnforcementProxy, GeneratorConfig, PolicyGenerator, SecurityLocks,
};

/// Ablation 1 — variant strategy: paper's per-option coverage vs exhaustive
/// cross product.
fn ablation_variant_strategy() {
    println!("\n=== Ablation: configuration-space exploration strategy ===\n");
    println!(
        "{:<12} {:>18} {:>22}",
        "Operator", "coverage variants", "exhaustive variants"
    );
    for operator in Operator::ALL {
        let schema = ValuesSchemaGenerator::default().generate(operator.chart().values());
        let explorer = ConfigurationExplorer::new();
        println!(
            "{:<12} {:>18} {:>22}",
            operator.name(),
            explorer.variants(&schema).len(),
            explorer.exhaustive_variants(&schema).len()
        );
    }
    println!("\ncoverage exploration keeps rendering linear in the longest enumeration, while");
    println!("the cross product grows exponentially with the number of boolean/enum fields.");
}

/// Ablation 2 — flat vs tree validation: a flat check only looks at field
/// *names*, so nested injections that reuse legitimate names slip through.
fn ablation_flat_vs_tree() {
    println!("\n=== Ablation: tree-based vs flat validation ===\n");
    let operator = Operator::Nginx;
    let validator = kf_bench::validator_for(operator);
    let objects = operator.workload().default_objects();
    let allowed_names: std::collections::BTreeSet<String> = validator
        .kinds()
        .into_iter()
        .flat_map(|kind| validator.field_paths(kind))
        .filter_map(|path| path.rsplit('.').next().map(str::to_owned))
        .collect();

    let mut flat_missed = 0usize;
    let mut tree_caught = 0usize;
    let catalog = kf_attacks::catalog();
    for spec in &catalog {
        let Some(base) = objects.iter().find(|o| spec.applies_to(o.kind())) else {
            continue;
        };
        let Some(malicious) = spec.inject(base) else {
            continue;
        };
        let tree_blocks = !validator.allows(&malicious);
        // Flat check: every *leaf field name* in the request must be a known
        // field name somewhere in the policy (no structure, no values).
        let flat_blocks = malicious.field_paths().iter().any(|path| {
            let leaf = path
                .rsplit('.')
                .next()
                .unwrap_or(path)
                .trim_end_matches("[]");
            !leaf.is_empty() && !allowed_names.contains(leaf)
        });
        if tree_blocks {
            tree_caught += 1;
        }
        if tree_blocks && !flat_blocks {
            flat_missed += 1;
            println!(
                "  {}: blocked by tree validation, missed by the flat field-name check",
                spec.id
            );
        }
    }
    println!(
        "\ntree validation blocks {tree_caught}/{} catalog entries; the flat check misses {flat_missed} of them.",
        catalog.len()
    );
}

/// Ablation 3 — security locks: without them, misconfigurations that reuse
/// chart-declared fields (e.g. `runAsNonRoot: false`) are no longer caught.
fn ablation_security_locks() {
    println!("\n=== Ablation: security best-practice locks on/off ===\n");
    println!(
        "{:<12} {:>22} {:>22}",
        "Operator", "misconf blocked (locks)", "misconf blocked (none)"
    );
    for operator in Operator::ALL {
        let executor = AttackExecutor::new(
            &operator.user(),
            operator.namespace(),
            operator.workload().default_objects(),
        );
        let with_locks = kf_bench::validator_for(operator);
        let without_locks = PolicyGenerator::new(GeneratorConfig {
            security_locks: SecurityLocks::none(),
            ..GeneratorConfig::for_release(operator.release_name())
        })
        .generate(&operator.chart())
        .expect("policy generation");

        let locked = AttackExecutor::summarize(
            &executor.execute(&EnforcementProxy::new(ApiServer::new(), with_locks)),
        );
        let unlocked = AttackExecutor::summarize(
            &executor.execute(&EnforcementProxy::new(ApiServer::new(), without_locks)),
        );
        println!(
            "{:<12} {:>22} {:>22}",
            operator.name(),
            format!(
                "{}/{}",
                locked.misconfig_mitigated, locked.misconfig_attempted
            ),
            format!(
                "{}/{}",
                unlocked.misconfig_mitigated, unlocked.misconfig_attempted
            ),
        );
    }
}

fn bench(c: &mut Criterion) {
    ablation_variant_strategy();
    ablation_flat_vs_tree();
    ablation_security_locks();

    // Timing comparison of the two exploration strategies for the widest
    // chart.
    let schema = ValuesSchemaGenerator::default().generate(Operator::Sonarqube.chart().values());
    let explorer = ConfigurationExplorer::new();
    let mut group = c.benchmark_group("ablation_exploration");
    group.bench_function("coverage_variants_sonarqube", |b| {
        b.iter(|| criterion::black_box(explorer.variants(&schema)))
    });
    group.bench_function("exhaustive_variants_sonarqube", |b| {
        b.iter(|| criterion::black_box(explorer.exhaustive_variants(&schema)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
