//! Microbenchmarks of the proxy's validation path: how long a single request
//! takes to validate against a workload validator, for compliant and
//! malicious manifests of different sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use kf_attacks::catalog;
use kf_bench::validator_for;
use kf_workloads::Operator;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("validation");
    for operator in [Operator::Nginx, Operator::Postgresql, Operator::Sonarqube] {
        let validator = validator_for(operator);
        let objects = operator.workload().default_objects();
        // Compliant manifests of the workload.
        group.bench_with_input(
            BenchmarkId::new("legitimate_deployment", operator.name()),
            &objects,
            |b, objects| {
                b.iter(|| {
                    for object in objects {
                        criterion::black_box(validator.validate(object));
                    }
                })
            },
        );
        // The full malicious catalog injected into this workload.
        let malicious: Vec<_> = catalog()
            .into_iter()
            .filter_map(|spec| {
                objects
                    .iter()
                    .find(|o| spec.applies_to(o.kind()))
                    .and_then(|base| spec.inject(base))
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("malicious_catalog", operator.name()),
            &malicious,
            |b, malicious| {
                b.iter(|| {
                    for object in malicious {
                        criterion::black_box(validator.validate(object));
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
