//! The zero-copy persistence plane vs the deep-clone baseline, end-to-end
//! through the full API server (RBAC → admission → store → audit).
//!
//! PRs 1–3 made the *enforcement* plane allocation-free; this benchmark
//! measures the *persistence* plane refactor that followed: an accepted
//! mutating request shares one `Arc<Value>` from the request body through
//! [`k8s_apiserver::ObjectStore`], the audit trail and every subsequent
//! read, while the preserved [`k8s_apiserver::BaselineStore`] replays the
//! pre-refactor discipline — deep-clone on admission, deep-clone on every
//! `get`, snapshot-clone on every `list`. Both servers run the **identical**
//! request-handling code; only the store's copy behaviour differs, so the
//! measured delta is the copies and nothing else.
//!
//! Two deterministic mixed pools (`kf_workloads::MixRatio`) are replayed
//! from 1, 4 and 8 threads against both servers:
//!
//! * **write-heavy** (8 creates : 1 get : 1 list) — deployment churn; the
//!   win is admission-to-store sharing;
//! * **read-heavy** (1 create : 8 gets : 1 list, the "operator reconcile"
//!   shape) — steady-state traffic; the win is handle-returning reads.
//!
//! Every user is subject to a learned RBAC policy (audit2rbac over an
//! attack-free replay), so authorization is genuinely evaluated per
//! request. The acceptance criterion is zero-copy ≥ 1.2x baseline req/s on
//! at least one mix at 8 threads. Passing `--smoke` (or `KF_BENCH_SMOKE=1`)
//! runs a tiny fixed configuration so CI can execute the harness on every
//! push.

use criterion::{criterion_group, criterion_main, Criterion};

use k8s_apiserver::{ApiServer, BaselineStore, RequestHandler, StoreBackend};
use k8s_rbac::{audit2rbac, Audit2RbacOptions, RbacPolicySet};
use kf_bench::replay_requests;
use kf_workloads::{MixRatio, Operator, ThroughputDriver, ThroughputReport};

const THREAD_COUNTS: [usize; 3] = [1, 4, 8];
const FULL_REQUESTS_PER_THREAD: usize = 2_000;

fn requests_per_thread() -> usize {
    replay_requests(FULL_REQUESTS_PER_THREAD)
}

/// The two measured traffic shapes.
fn mixes() -> [(&'static str, MixRatio); 2] {
    [
        ("write-heavy", MixRatio::WRITE_HEAVY),
        ("read-heavy", MixRatio::OPERATOR_RECONCILE),
    ]
}

/// Learn one RBAC policy covering every operator's mixed traffic: replay
/// the pool once against a permissive learning server, then run audit2rbac
/// per user and merge the role objects — the paper's baseline-hardening
/// recipe, extended to reads.
fn learned_policy(driver: &ThroughputDriver) -> RbacPolicySet {
    let mut learning = ApiServer::new();
    for operator in Operator::ALL {
        learning = learning.with_admin(&operator.user());
    }
    driver.seed(&learning);
    for request in driver.requests() {
        learning.handle(request);
    }
    let log = learning.audit_log();
    let mut merged = RbacPolicySet::new();
    for operator in Operator::ALL {
        let policy = audit2rbac(
            log.events(),
            &operator.user(),
            &Audit2RbacOptions::default(),
        );
        for role in policy.roles() {
            merged.add_role(role.clone());
        }
        for binding in policy.bindings() {
            merged.add_binding(binding.clone());
        }
    }
    merged
}

/// A server over `store`, guarded by the learned policy and pre-seeded so
/// read traffic hits stored objects from the first request.
fn prepared_server<S: StoreBackend>(
    store: S,
    policy: &RbacPolicySet,
    driver: &ThroughputDriver,
) -> ApiServer<S> {
    let server = ApiServer::with_store(store);
    driver.seed(&server);
    server.set_rbac_policy(Some(policy.clone()));
    server
}

fn row(label: &str, report: &ThroughputReport) {
    println!(
        "{label:<26} {:>2} threads  {:>12.0} req/s   p50 {:>9.1} µs   p99 {:>9.1} µs   ({} admitted / {} denied)",
        report.threads,
        report.requests_per_sec(),
        report.p50.as_nanos() as f64 / 1e3,
        report.p99.as_nanos() as f64 / 1e3,
        report.admitted,
        report.denied,
    );
}

fn print_scaling_table() {
    println!("\n=== Server throughput: zero-copy persistence vs deep-clone baseline ===");
    println!(
        "(full ApiServer per request: RBAC -> admission -> store -> audit; {} requests/thread)",
        requests_per_thread()
    );
    let mut best_speedup_at_8 = 0.0f64;
    for (label, mix) in mixes() {
        let driver = ThroughputDriver::for_operators_mixed(&Operator::ALL, mix);
        let policy = learned_policy(&driver);
        println!(
            "\n--- {label} mix ({}; {} requests in pool) ---",
            mix.label(),
            driver.requests().len()
        );
        for threads in THREAD_COUNTS {
            let zero_copy = prepared_server(k8s_apiserver::ObjectStore::new(), &policy, &driver);
            let zc = driver.run(&zero_copy, threads, requests_per_thread());
            let baseline = prepared_server(BaselineStore::new(), &policy, &driver);
            let base = driver.run(&baseline, threads, requests_per_thread());
            assert_eq!(
                zc.admitted, base.admitted,
                "both stores must admit identical traffic"
            );
            assert_eq!(
                zc.denied, 0,
                "seeded mixed traffic under the learned policy is fully authorized"
            );
            row(&format!("zero-copy/{label}"), &zc);
            row(&format!("baseline/{label}"), &base);
            let speedup = zc.requests_per_sec() / base.requests_per_sec().max(1e-9);
            println!("{:<26} {threads:>2} threads  {speedup:>11.2}x", "speedup");
            if threads == 8 {
                best_speedup_at_8 = best_speedup_at_8.max(speedup);
            }
        }
    }
    println!(
        "\nbest 8-thread speedup: {best_speedup_at_8:.2}x  (acceptance: >= 1.2x on some mix)  {}",
        if best_speedup_at_8 >= 1.2 {
            "PASS"
        } else {
            "FAIL"
        }
    );
}

fn bench(c: &mut Criterion) {
    print_scaling_table();
    if kf_bench::smoke_mode() {
        // Smoke mode proves the harness runs and prints real req/s; the
        // criterion micro-loops are skipped to keep the CI step fast.
        return;
    }
    // Criterion-tracked single-request latency of the two stores under the
    // read-heavy mix, so regressions show up per-iteration as well.
    let driver =
        ThroughputDriver::for_operators_mixed(&Operator::ALL, MixRatio::OPERATOR_RECONCILE);
    let policy = learned_policy(&driver);
    let mut group = c.benchmark_group("server_throughput");
    let zero_copy = prepared_server(k8s_apiserver::ObjectStore::new(), &policy, &driver);
    group.bench_function("read_heavy_zero_copy", |b| {
        b.iter(|| {
            for request in driver.requests() {
                criterion::black_box(zero_copy.handle(request).is_success());
            }
        })
    });
    let baseline = prepared_server(BaselineStore::new(), &policy, &driver);
    group.bench_function("read_heavy_baseline", |b| {
        b.iter(|| {
            for request in driver.requests() {
                criterion::black_box(baseline.handle(request).is_success());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
