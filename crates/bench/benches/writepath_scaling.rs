//! Write-path multicore scaling as a tracked artifact: per-thread curves
//! (req/s, events/s, p50/p99) for both store backends under the write-heavy
//! mix, emitted as `BENCH_writepath.json`.
//!
//! This is the measurement behind the write-path scale-out (namespace-
//! sharded journals + batched publication): the write-heavy mix (8 creates
//! : 1 get : 1 list) drives every create through RBAC → admission → store →
//! journal → audit, so the journal critical section is on the hot path of
//! 80% of the traffic. The bench replays the mix at 1/4/8 threads over the
//! zero-copy [`k8s_apiserver::ObjectStore`] and the deep-clone
//! [`k8s_apiserver::BaselineStore`], records sustained req/s, published
//! journal events/s and the p50/p99 `handle` latency, and writes the
//! curves as a schema-stamped JSON artifact.
//!
//! Invocations:
//!
//! * `cargo bench -p kf-bench --bench writepath_scaling` — full run;
//!   **regenerates `BENCH_writepath.json` at the repo root** (the committed
//!   perf trajectory; tier-1 and CI fail if the committed file goes stale
//!   relative to the schema).
//! * `-- --smoke` (or `KF_BENCH_SMOKE=1`) — tiny configuration for CI;
//!   writes `target/BENCH_writepath.smoke.json` instead so the committed
//!   artifact is never dirtied by a smoke run.
//! * `-- --compare <path>` — additionally prints per-thread deltas of this
//!   run against a committed baseline artifact (the CI job summary runs
//!   `--smoke --compare BENCH_writepath.json`). Slowdowns within
//!   `KF_BENCH_TOLERANCE` percent (default 10) are reported but not
//!   flagged, so single-core run-to-run drift doesn't read as regression.
//! * `KF_BENCH_JSON_OUT=<path>` — override the output path in any mode.
//! * `KF_JOURNAL_SHARDS=<n>` — build the zero-copy store with `n` journal
//!   sub-shards instead of the default; `KF_JOURNAL_SHARDS=1` reproduces
//!   the pre-sharding (one lock per kind) journal for a same-binary A/B of
//!   the scale-out itself.
//!
//! Stores are pre-populated through the batched bulk-load path
//! (`ThroughputDriver::seed_store` → `StoreBackend::apply_batch`), which is
//! itself part of the measured machinery.

use std::path::PathBuf;

use k8s_apiserver::{
    ApiServer, BaselineStore, ObjectStore, StoreBackend, DEFAULT_JOURNAL_CAPACITY,
};
use k8s_rbac::RbacPolicySet;
use kf_bench::{
    learned_mixed_policy, replay_requests, smoke_mode, BenchArtifact, CurvePoint, ScalingCurve,
};
use kf_workloads::{MixRatio, Operator, ThroughputDriver};

const THREAD_COUNTS: [usize; 3] = [1, 4, 8];
const FULL_REQUESTS_PER_THREAD: usize = 2_000;

/// The measured zero-copy store, honoring the `KF_JOURNAL_SHARDS` A/B knob.
fn zero_copy_store() -> ObjectStore {
    match std::env::var("KF_JOURNAL_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        Some(shards) => ObjectStore::with_journal_config(DEFAULT_JOURNAL_CAPACITY, shards),
        None => ObjectStore::new(),
    }
}

/// One (backend, threads) measurement: replay the pool, derive events/s
/// from the journal revision delta over the run's wall clock.
fn measure<S: StoreBackend>(
    store: S,
    policy: &RbacPolicySet,
    driver: &ThroughputDriver,
    threads: usize,
) -> CurvePoint {
    driver.seed_store(&store);
    let server = ApiServer::with_store(store);
    server.set_rbac_policy(Some(policy.clone()));
    let published_before = server.store().revision();
    let report = driver.run(&server, threads, replay_requests(FULL_REQUESTS_PER_THREAD));
    assert_eq!(report.denied, 0, "learned policy must authorize the pool");
    let published = server.store().revision() - published_before;
    CurvePoint {
        threads,
        req_per_sec: report.requests_per_sec(),
        events_per_sec: published as f64 / report.elapsed.as_secs_f64().max(1e-9),
        p50_us: report.p50.as_nanos() as f64 / 1e3,
        p99_us: report.p99.as_nanos() as f64 / 1e3,
    }
}

fn row(backend: &str, point: &CurvePoint) {
    println!(
        "{backend:<10} {:>2} threads  {:>12.0} req/s  {:>12.0} events/s   p50 {:>9.1} µs   p99 {:>9.1} µs",
        point.threads, point.req_per_sec, point.events_per_sec, point.p50_us, point.p99_us,
    );
}

/// Where this run's artifact goes: `KF_BENCH_JSON_OUT` if set, else the
/// repo root for full runs and `target/` for smoke runs.
fn output_path(smoke: bool) -> PathBuf {
    if let Ok(path) = std::env::var("KF_BENCH_JSON_OUT") {
        return PathBuf::from(path);
    }
    if smoke {
        BenchArtifact::repo_root_path("target/BENCH_writepath.smoke.json")
    } else {
        BenchArtifact::repo_root_path("BENCH_writepath.json")
    }
}

/// The `--compare <path>` argument, resolved against the CWD first and the
/// repo root second.
fn compare_path() -> Option<PathBuf> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--compare" {
            let name = args.next().expect("--compare takes a path");
            let direct = PathBuf::from(&name);
            return Some(if direct.exists() {
                direct
            } else {
                BenchArtifact::repo_root_path(&name)
            });
        }
    }
    None
}

fn main() {
    let smoke = smoke_mode();
    let mix = MixRatio::WRITE_HEAVY;
    println!("\n=== Write-path scaling: sharded journals + batched publication ===");
    println!(
        "(write-heavy mix {}; {} requests/thread; full ApiServer per request)",
        mix.label(),
        replay_requests(FULL_REQUESTS_PER_THREAD)
    );
    let driver = ThroughputDriver::for_operators_mixed(&Operator::ALL, mix);
    let policy = learned_mixed_policy(&driver);

    let mut artifact =
        BenchArtifact::new("writepath_scaling", if smoke { "smoke" } else { "full" });
    for backend in ["zero-copy", "baseline"] {
        println!("\n--- {backend} store ---");
        let mut points = Vec::new();
        for threads in THREAD_COUNTS {
            let point = if backend == "zero-copy" {
                measure(zero_copy_store(), &policy, &driver, threads)
            } else {
                measure(BaselineStore::new(), &policy, &driver, threads)
            };
            row(backend, &point);
            points.push(point);
        }
        artifact.curves.push(ScalingCurve {
            backend: backend.to_owned(),
            mix: mix.label(),
            axis: ScalingCurve::DEFAULT_AXIS.to_owned(),
            points,
        });
    }

    // Cross-backend speedup at each thread count, for the human table.
    let zero_copy = artifact.curve("zero-copy", &mix.label()).expect("measured");
    let baseline = artifact.curve("baseline", &mix.label()).expect("measured");
    println!();
    for (zc, base) in zero_copy.points.iter().zip(&baseline.points) {
        println!(
            "{:<10} {:>2} threads  {:>11.2}x zero-copy vs baseline",
            "speedup",
            zc.threads,
            zc.req_per_sec / base.req_per_sec.max(1e-9)
        );
    }

    let out = output_path(smoke);
    if let Some(parent) = out.parent() {
        std::fs::create_dir_all(parent).expect("output directory is creatable");
    }
    artifact.save(&out).expect("artifact is writable");
    println!("\nwrote {}", out.display());

    if let Some(path) = compare_path() {
        match BenchArtifact::load(&path) {
            Ok(committed) => {
                println!();
                print!(
                    "{}",
                    artifact.compare_with_tolerance(&committed, kf_bench::bench_tolerance())
                );
            }
            Err(error) => println!("\ncannot compare against {}: {error}", path.display()),
        }
    }
}
