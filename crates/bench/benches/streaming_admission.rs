//! Validate-while-parse vs tree-parse-then-validate on raw wire bytes, for
//! **both wire formats** (YAML and JSON).
//!
//! The streaming admission plane (`kubefence::stream`) tokenizes a raw
//! request body once and advances compiled-arena matchers as events arrive,
//! allocating no document tree on the accept path and synthesizing denial
//! reports from matcher state (no re-parse). This benchmark holds the
//! *validation* plane constant (both paths check against the same compiled
//! arenas) and varies only the *parsing* strategy:
//!
//! * **streaming** — `ValidatorSet::validate_raw_format`: validate while
//!   tokenizing;
//! * **tree** — `ValidatorSet::validate_raw_tree_format`: parse the full
//!   document into a `Value` tree, then validate it (the reference
//!   semantics).
//!
//! Three traffic classes per format are replayed from 1, 4 and 8 threads:
//!
//! * **accept** — every operator's legitimate manifests (the common case:
//!   the acceptance criterion is streaming ≥ tree at 8 threads here, for
//!   both formats);
//! * **deny-early** — the attack catalog's malicious manifests (the denial
//!   is decided at the first fatal violation and the report comes from
//!   matcher state; the acceptance criterion is streaming > tree here too,
//!   now that denials no longer re-parse);
//! * **unparsable** — truncated/corrupted payloads (the stream rejects at
//!   the defect; the tree path pays a full failed parse).
//!
//! A proxy-level run (EnforcementProxy vs BaselineProxy over a raw
//! `ThroughputDriver` pool) closes the loop end-to-end. Passing `--smoke`
//! (or `KF_BENCH_SMOKE=1`) runs a tiny fixed configuration so CI can
//! execute the harness on every push.

use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, Criterion};

use k8s_apiserver::ApiServer;
use kf_attacks::AttackExecutor;
use kf_bench::{replay_requests, validator_for};
use kf_workloads::{DeploymentDriver, Operator, ThroughputDriver};
use kubefence::{BaselineProxy, BodyFormat, EnforcementProxy, ValidatorSet};

const THREAD_COUNTS: [usize; 3] = [1, 4, 8];
const FULL_REQUESTS_PER_THREAD: usize = 2_000;

fn requests_per_thread() -> usize {
    replay_requests(FULL_REQUESTS_PER_THREAD)
}

fn validators() -> ValidatorSet {
    let mut set = ValidatorSet::new();
    for operator in Operator::ALL {
        set.push(validator_for(operator));
    }
    set
}

fn serialize(body: &kf_yaml::Value, format: BodyFormat) -> String {
    match format {
        BodyFormat::Json => kf_yaml::to_json(body),
        _ => kf_yaml::to_yaml(body),
    }
}

/// Every operator's legitimate manifests, as wire bytes of `format`.
fn accept_pool(format: BodyFormat) -> Vec<String> {
    Operator::ALL
        .iter()
        .flat_map(|operator| {
            DeploymentDriver::new(*operator)
                .objects()
                .iter()
                .map(|object| serialize(object.body(), format))
                .collect::<Vec<_>>()
        })
        .collect()
}

/// The attack catalog's malicious manifests, as wire bytes of `format`.
fn deny_pool(format: BodyFormat) -> Vec<String> {
    Operator::ALL
        .iter()
        .flat_map(|operator| {
            let driver = DeploymentDriver::new(*operator);
            AttackExecutor::new(
                &operator.user(),
                operator.namespace(),
                driver.objects().to_vec(),
            )
            .malicious_objects()
            .into_iter()
            .map(|(_spec, object)| serialize(object.body(), format))
            .collect::<Vec<_>>()
        })
        .collect()
}

/// Corrupted payloads: legitimate manifests truncated mid-token and with
/// structural damage — what malformed or hostile wire traffic looks like.
fn unparsable_pool(format: BodyFormat) -> Vec<String> {
    accept_pool(format)
        .into_iter()
        .enumerate()
        .map(|(i, text)| match (format, i % 3) {
            (BodyFormat::Json, 0) => text[..text.len() * 2 / 3].to_owned(),
            (BodyFormat::Json, 1) => text.replace("\":", "\""),
            (BodyFormat::Json, _) => format!("{text}{text}"),
            (_, 0) => text[..text.len() * 2 / 3].to_owned() + "\n  {truncated",
            (_, 1) => text.replace("kind:", "   kind:"),
            (_, _) => format!("{text}---\n{text}"),
        })
        .collect()
}

/// Replay `pool` from `threads` threads against one of the two raw paths;
/// returns sustained requests/sec and the admitted count (sanity).
fn replay(
    set: &ValidatorSet,
    pool: &[String],
    format: BodyFormat,
    threads: usize,
    streaming: bool,
) -> (f64, u64) {
    let per_thread = requests_per_thread();
    let admitted = AtomicU64::new(0);
    let started = std::time::Instant::now();
    std::thread::scope(|scope| {
        for thread in 0..threads {
            let admitted = &admitted;
            scope.spawn(move || {
                let offset = thread * pool.len() / threads.max(1);
                let mut local = 0u64;
                for i in 0..per_thread {
                    let text = &pool[(offset + i) % pool.len()];
                    let verdict = if streaming {
                        set.validate_raw_format(text, format)
                    } else {
                        set.validate_raw_tree_format(text, format)
                    };
                    if verdict.is_admitted() {
                        local += 1;
                    }
                }
                admitted.fetch_add(local, Ordering::Relaxed);
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    let total = (threads * per_thread) as f64;
    (total / elapsed, admitted.into_inner())
}

fn print_scaling_table() {
    let set = validators();
    println!("\n=== Streaming admission: validate-while-parse vs tree-parse-then-validate ===");
    for format in [BodyFormat::Yaml, BodyFormat::Json] {
        let pools: [(&str, Vec<String>); 3] = [
            ("accept", accept_pool(format)),
            ("deny-early", deny_pool(format)),
            ("unparsable", unparsable_pool(format)),
        ];
        let mut accept_stream_at_8 = 0.0f64;
        let mut accept_tree_at_8 = 0.0f64;
        for (label, pool) in &pools {
            println!(
                "\n--- {} {label} traffic ({} distinct payloads, {} requests/thread) ---",
                format.name(),
                pool.len(),
                requests_per_thread()
            );
            for threads in THREAD_COUNTS {
                let (stream_rps, stream_admitted) = replay(&set, pool, format, threads, true);
                let (tree_rps, tree_admitted) = replay(&set, pool, format, threads, false);
                assert_eq!(
                    stream_admitted, tree_admitted,
                    "verdict parity must hold under replay"
                );
                println!(
                    "{}/{label:<12} {threads} threads   streaming {stream_rps:>12.0} req/s   tree {tree_rps:>12.0} req/s   ({:.2}x)",
                    format.name(),
                    stream_rps / tree_rps.max(1e-9)
                );
                if *label == "accept" && threads == 8 {
                    accept_stream_at_8 = stream_rps;
                    accept_tree_at_8 = tree_rps;
                }
            }
        }
        println!(
            "\n8-thread {} accept verdict: streaming {accept_stream_at_8:.0} req/s vs tree {accept_tree_at_8:.0} req/s  ({:.2}x)  {}",
            format.name(),
            accept_stream_at_8 / accept_tree_at_8.max(1e-9),
            if accept_stream_at_8 >= accept_tree_at_8 {
                "PASS"
            } else {
                "FAIL"
            }
        );
    }
}

fn print_proxy_table() {
    println!("\n=== End-to-end: raw traffic through the proxies (8 threads) ===");
    let server = || {
        let mut server = ApiServer::new();
        for operator in Operator::ALL {
            server = server.with_admin(&operator.user());
        }
        server
    };
    for (label, driver) in [
        ("yaml", ThroughputDriver::for_operators_raw(&Operator::ALL)),
        (
            "json",
            ThroughputDriver::for_operators_raw_json(&Operator::ALL),
        ),
    ] {
        let streaming = EnforcementProxy::with_validators(server(), validators());
        let report = driver.run(&streaming, 8, requests_per_thread());
        println!(
            "{label} enforcement (streaming)      {:>12.0} req/s   p50 {:>9.1} µs   p99 {:>9.1} µs   ({} admitted / {} denied)",
            report.requests_per_sec(),
            report.p50.as_nanos() as f64 / 1e3,
            report.p99.as_nanos() as f64 / 1e3,
            report.admitted,
            report.denied,
        );
        let baseline = BaselineProxy::with_validators(server(), validators());
        let report = driver.run(&baseline, 8, requests_per_thread());
        println!(
            "{label} baseline (parse-then-tree)   {:>12.0} req/s   p50 {:>9.1} µs   p99 {:>9.1} µs   ({} admitted / {} denied)",
            report.requests_per_sec(),
            report.p50.as_nanos() as f64 / 1e3,
            report.p99.as_nanos() as f64 / 1e3,
            report.admitted,
            report.denied,
        );
    }
}

fn bench(c: &mut Criterion) {
    print_scaling_table();
    print_proxy_table();
    if kf_bench::smoke_mode() {
        // Smoke mode proves the harness runs and prints real req/s; the
        // criterion micro-loops are skipped to keep the CI step fast.
        return;
    }
    // Criterion-tracked single-payload latency of both raw paths and both
    // formats, so regressions show up in per-iteration numbers as well.
    let set = validators();
    let mut group = c.benchmark_group("streaming_admission");
    for format in [BodyFormat::Yaml, BodyFormat::Json] {
        let accept = accept_pool(format);
        let deny = deny_pool(format);
        group.bench_function(format!("validate_raw_accept_{}", format.name()), |b| {
            b.iter(|| {
                for text in &accept {
                    criterion::black_box(set.validate_raw_format(text, format).is_admitted());
                }
            })
        });
        group.bench_function(format!("validate_raw_tree_accept_{}", format.name()), |b| {
            b.iter(|| {
                for text in &accept {
                    criterion::black_box(set.validate_raw_tree_format(text, format).is_admitted());
                }
            })
        });
        group.bench_function(format!("validate_raw_deny_{}", format.name()), |b| {
            b.iter(|| {
                for text in &deny {
                    criterion::black_box(set.validate_raw_format(text, format).is_admitted());
                }
            })
        });
        group.bench_function(format!("validate_raw_tree_deny_{}", format.name()), |b| {
            b.iter(|| {
                for text in &deny {
                    criterion::black_box(set.validate_raw_tree_format(text, format).is_admitted());
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
