//! Validate-while-parse vs tree-parse-then-validate on raw wire bytes.
//!
//! The streaming admission plane (`kubefence::stream`) tokenizes a raw
//! request body once and advances compiled-arena matchers as events arrive,
//! allocating no document tree on the accept path. This benchmark holds the
//! *validation* plane constant (both paths check against the same compiled
//! arenas) and varies only the *parsing* strategy:
//!
//! * **streaming** — `ValidatorSet::validate_raw`: validate while
//!   tokenizing, early-deny at the first fatal violation;
//! * **tree** — `ValidatorSet::validate_raw_tree`: parse the full document
//!   into a `Value` tree, then validate it (the reference semantics).
//!
//! Three traffic classes are replayed from 1, 4 and 8 threads:
//!
//! * **accept** — every operator's legitimate manifests (the common case:
//!   the acceptance criterion is streaming > tree at 8 threads here);
//! * **deny-early** — the attack catalog's malicious manifests (the stream
//!   stops at the deciding event, then re-parses once for the audit report);
//! * **unparsable** — truncated/corrupted payloads (the stream rejects at
//!   the defect; the tree path pays a full failed parse).
//!
//! A proxy-level run (EnforcementProxy vs BaselineProxy over a raw
//! `ThroughputDriver` pool) closes the loop end-to-end.

use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, Criterion};

use k8s_apiserver::ApiServer;
use kf_attacks::AttackExecutor;
use kf_bench::validator_for;
use kf_workloads::{DeploymentDriver, Operator, ThroughputDriver};
use kubefence::{BaselineProxy, EnforcementProxy, ValidatorSet};

const THREAD_COUNTS: [usize; 3] = [1, 4, 8];
const REQUESTS_PER_THREAD: usize = 2_000;

fn validators() -> ValidatorSet {
    let mut set = ValidatorSet::new();
    for operator in Operator::ALL {
        set.push(validator_for(operator));
    }
    set
}

/// Every operator's legitimate manifests, as wire bytes.
fn accept_pool() -> Vec<String> {
    Operator::ALL
        .iter()
        .flat_map(|operator| {
            DeploymentDriver::new(*operator)
                .objects()
                .iter()
                .map(|object| object.to_yaml())
                .collect::<Vec<_>>()
        })
        .collect()
}

/// The attack catalog's malicious manifests, as wire bytes.
fn deny_pool() -> Vec<String> {
    Operator::ALL
        .iter()
        .flat_map(|operator| {
            let driver = DeploymentDriver::new(*operator);
            AttackExecutor::new(
                &operator.user(),
                operator.namespace(),
                driver.objects().to_vec(),
            )
            .malicious_objects()
            .into_iter()
            .map(|(_spec, object)| object.to_yaml())
            .collect::<Vec<_>>()
        })
        .collect()
}

/// Corrupted payloads: legitimate manifests truncated mid-token and with
/// indentation damage — what malformed or hostile wire traffic looks like.
fn unparsable_pool() -> Vec<String> {
    accept_pool()
        .into_iter()
        .enumerate()
        .map(|(i, text)| match i % 3 {
            0 => text[..text.len() * 2 / 3].to_owned() + "\n  {truncated",
            1 => text.replace("kind:", "   kind:"),
            _ => format!("{text}---\n{text}"),
        })
        .collect()
}

/// Replay `pool` from `threads` threads against one of the two raw paths;
/// returns sustained requests/sec and the admitted count (sanity).
fn replay(set: &ValidatorSet, pool: &[String], threads: usize, streaming: bool) -> (f64, u64) {
    let admitted = AtomicU64::new(0);
    let started = std::time::Instant::now();
    std::thread::scope(|scope| {
        for thread in 0..threads {
            let admitted = &admitted;
            scope.spawn(move || {
                let offset = thread * pool.len() / threads.max(1);
                let mut local = 0u64;
                for i in 0..REQUESTS_PER_THREAD {
                    let text = &pool[(offset + i) % pool.len()];
                    let verdict = if streaming {
                        set.validate_raw(text)
                    } else {
                        set.validate_raw_tree(text)
                    };
                    if verdict.is_admitted() {
                        local += 1;
                    }
                }
                admitted.fetch_add(local, Ordering::Relaxed);
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    let total = (threads * REQUESTS_PER_THREAD) as f64;
    (total / elapsed, admitted.into_inner())
}

fn print_scaling_table() {
    let set = validators();
    let pools: [(&str, Vec<String>); 3] = [
        ("accept", accept_pool()),
        ("deny-early", deny_pool()),
        ("unparsable", unparsable_pool()),
    ];
    println!("\n=== Streaming admission: validate-while-parse vs tree-parse-then-validate ===");
    let mut accept_stream_at_8 = 0.0f64;
    let mut accept_tree_at_8 = 0.0f64;
    for (label, pool) in &pools {
        println!(
            "\n--- {label} traffic ({} distinct payloads, {} requests/thread) ---",
            pool.len(),
            REQUESTS_PER_THREAD
        );
        for threads in THREAD_COUNTS {
            let (stream_rps, stream_admitted) = replay(&set, pool, threads, true);
            let (tree_rps, tree_admitted) = replay(&set, pool, threads, false);
            assert_eq!(
                stream_admitted, tree_admitted,
                "verdict parity must hold under replay"
            );
            println!(
                "{label:<12} {threads} threads   streaming {stream_rps:>12.0} req/s   tree {tree_rps:>12.0} req/s   ({:.2}x)",
                stream_rps / tree_rps.max(1e-9)
            );
            if *label == "accept" && threads == 8 {
                accept_stream_at_8 = stream_rps;
                accept_tree_at_8 = tree_rps;
            }
        }
    }
    println!(
        "\n8-thread accept verdict: streaming {accept_stream_at_8:.0} req/s vs tree {accept_tree_at_8:.0} req/s  ({:.2}x)  {}",
        accept_stream_at_8 / accept_tree_at_8.max(1e-9),
        if accept_stream_at_8 > accept_tree_at_8 {
            "PASS"
        } else {
            "FAIL"
        }
    );
}

fn print_proxy_table() {
    println!("\n=== End-to-end: raw traffic through the proxies (8 threads) ===");
    let driver = ThroughputDriver::for_operators_raw(&Operator::ALL);
    let server = || {
        let mut server = ApiServer::new();
        for operator in Operator::ALL {
            server = server.with_admin(&operator.user());
        }
        server
    };
    let streaming = EnforcementProxy::with_validators(server(), validators());
    let report = driver.run(&streaming, 8, REQUESTS_PER_THREAD);
    println!(
        "enforcement (streaming)      {:>12.0} req/s   p50 {:>9.1} µs   p99 {:>9.1} µs   ({} admitted / {} denied)",
        report.requests_per_sec(),
        report.p50.as_nanos() as f64 / 1e3,
        report.p99.as_nanos() as f64 / 1e3,
        report.admitted,
        report.denied,
    );
    let baseline = BaselineProxy::with_validators(server(), validators());
    let report = driver.run(&baseline, 8, REQUESTS_PER_THREAD);
    println!(
        "baseline (parse-then-tree)   {:>12.0} req/s   p50 {:>9.1} µs   p99 {:>9.1} µs   ({} admitted / {} denied)",
        report.requests_per_sec(),
        report.p50.as_nanos() as f64 / 1e3,
        report.p99.as_nanos() as f64 / 1e3,
        report.admitted,
        report.denied,
    );
}

fn bench(c: &mut Criterion) {
    print_scaling_table();
    print_proxy_table();
    // Criterion-tracked single-payload latency of both raw paths, so
    // regressions show up in per-iteration numbers as well.
    let set = validators();
    let accept = accept_pool();
    let deny = deny_pool();
    let mut group = c.benchmark_group("streaming_admission");
    group.bench_function("validate_raw_accept", |b| {
        b.iter(|| {
            for text in &accept {
                criterion::black_box(set.validate_raw(text).is_admitted());
            }
        })
    });
    group.bench_function("validate_raw_tree_accept", |b| {
        b.iter(|| {
            for text in &accept {
                criterion::black_box(set.validate_raw_tree(text).is_admitted());
            }
        })
    });
    group.bench_function("validate_raw_deny", |b| {
        b.iter(|| {
            for text in &deny {
                criterion::black_box(set.validate_raw(text).is_admitted());
            }
        })
    });
    group.bench_function("validate_raw_tree_deny", |b| {
        b.iter(|| {
            for text in &deny {
                criterion::black_box(set.validate_raw_tree(text).is_admitted());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
