//! Table IV: average deployment round-trip time, RBAC (no proxy) vs KubeFence
//! (proxy interposed), over 10 repetitions per workload, plus the proxy's
//! resource footprint (§VI-E).
//!
//! The processing time of every request is measured in-process; the network
//! and API-server costs come from the calibrated latency model (see
//! `k8s_apiserver::LatencyProfile` and DESIGN.md).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use k8s_apiserver::{ApiServer, LatencyModel, RequestHandler};
use kf_bench::{mean_and_stddev, validator_for};
use kf_workloads::{DeploymentDriver, Operator};
use kubefence::EnforcementProxy;

const REPETITIONS: usize = 10;

fn deployment_rtt<H: RequestHandler>(
    driver: &DeploymentDriver,
    handler: &H,
    latency: &mut LatencyModel,
    with_proxy: bool,
) -> Duration {
    let mut total = Duration::ZERO;
    for request in driver.requests() {
        let started = std::time::Instant::now();
        let response = handler.handle(&request);
        total += started.elapsed() + latency.direct_request(request.payload_size());
        if with_proxy {
            total += latency.proxy_overhead(request.payload_size());
        }
        assert!(response.is_success(), "{}", response.message);
    }
    total
}

fn print_table4() {
    println!("\n=== Table IV: RBAC vs KubeFence average request latency (10 repetitions) ===\n");
    println!(
        "{:<12} {:>18} {:>20} {:>18}",
        "Operator", "RBAC RTT (ms)", "KubeFence RTT (ms)", "Increase"
    );
    for operator in Operator::ALL {
        let driver = DeploymentDriver::new(operator);
        let validator = validator_for(operator);
        let mut baseline = Vec::new();
        let mut kubefence = Vec::new();
        for repetition in 0..REPETITIONS {
            let mut latency = LatencyModel::new(Default::default(), 1 + repetition as u64);
            let server = ApiServer::new().with_admin(&operator.user());
            baseline
                .push(deployment_rtt(&driver, &server, &mut latency, false).as_secs_f64() * 1e3);

            let mut latency = LatencyModel::new(Default::default(), 1 + repetition as u64);
            let proxy = EnforcementProxy::new(
                ApiServer::new().with_admin(&operator.user()),
                validator.clone(),
            );
            kubefence.push(deployment_rtt(&driver, &proxy, &mut latency, true).as_secs_f64() * 1e3);
        }
        let (base_mean, base_std) = mean_and_stddev(&baseline);
        let (kf_mean, kf_std) = mean_and_stddev(&kubefence);
        println!(
            "{:<12} {:>12.1}±{:<5.1} {:>14.1}±{:<5.1} {:>8.1} ms ({:.2}%)",
            operator.name(),
            base_mean,
            base_std,
            kf_mean,
            kf_std,
            kf_mean - base_mean,
            100.0 * (kf_mean - base_mean) / base_mean
        );
    }
    println!("\n(paper: +26.6 ms to +84.6 ms, i.e. 12.6%–26.6% over baselines of 168–386 ms)");

    let validator = validator_for(Operator::Sonarqube);
    println!(
        "proxy footprint: SonarQube validator = {:.1} KiB across {} kinds",
        validator.to_yaml().len() as f64 / 1024.0,
        validator.kinds().len()
    );
}

fn bench(c: &mut Criterion) {
    print_table4();
    // The measured component of the overhead: proxy validation + forwarding
    // of a full deployment, compared with the bare server.
    let operator = Operator::Postgresql;
    let driver = DeploymentDriver::new(operator);
    let mut group = c.benchmark_group("table4");
    group.bench_function("deploy_direct_postgresql", |b| {
        b.iter(|| {
            let server = ApiServer::new().with_admin(&operator.user());
            criterion::black_box(driver.deploy(&server));
        })
    });
    let validator = validator_for(operator);
    group.bench_function("deploy_through_kubefence_postgresql", |b| {
        b.iter(|| {
            let proxy = EnforcementProxy::new(
                ApiServer::new().with_admin(&operator.user()),
                validator.clone(),
            );
            criterion::black_box(driver.deploy(&proxy));
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
