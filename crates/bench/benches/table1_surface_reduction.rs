//! Table I: restrictable fields and attack-surface reduction achievable by
//! KubeFence vs RBAC, per workload.

use criterion::{criterion_group, criterion_main, Criterion};

use kf_bench::validator_for;
use kf_workloads::Operator;
use kubefence::AttackSurfaceAnalyzer;

fn print_table1() {
    let analyzer = AttackSurfaceAnalyzer::new();
    let validators: Vec<_> = Operator::ALL.iter().map(|o| validator_for(*o)).collect();
    let report = analyzer.analyze_all(&validators);
    println!("\n=== Table I: attack surface reduction achievable by KubeFence vs RBAC ===\n");
    println!("{}", report.to_table());
    println!(
        "(paper: RBAC 20.73%–79.54%, KubeFence 96.44%–98.85%, average improvement ≈ 35 points)"
    );
}

fn bench(c: &mut Criterion) {
    print_table1();
    c.bench_function("table1/full_policy_generation_nginx", |b| {
        b.iter(|| criterion::black_box(validator_for(Operator::Nginx)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
