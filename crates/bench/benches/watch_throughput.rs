//! Watch-driven reconcile vs poll-list reconcile, end-to-end through the
//! full API server (RBAC → admission → store+journal → audit).
//!
//! PR 4 made reads zero-copy; this benchmark measures the watch plane that
//! followed: `Verb::Watch` is a real incremental event stream over store
//! revisions, so an informer that has seeded its cache pays only for the
//! deltas since its cursor — while the pre-watch-plane discipline re-lists
//! the whole collection (and rebuilds its cache) on every reconcile tick.
//!
//! The [`kf_workloads::InformerDriver`] replays the `WATCH_HEAVY` mix
//! (2 creates : 1 get : 1 list : 12 reconcile ticks per cycle) from 1, 4
//! and 8 threads against both persistence planes:
//!
//! * **zero-copy** ([`k8s_apiserver::ObjectStore`]) — delivered events share
//!   the stored trees (`Arc` handles, no per-subscriber copies);
//! * **baseline** ([`k8s_apiserver::BaselineStore`]) — the same journal
//!   mechanics, but every delivered event deep-clones its tree and every
//!   list deep-clones its items.
//!
//! Both strategies face identical background churn; the measured delta is
//! purely how caches stay fresh. Every user is subject to a learned RBAC
//! policy (audit2rbac over an attack-free replay **including watch
//! traffic**), so the hardened surface genuinely covers the watch verb.
//! The acceptance criterion is watch-delta ≥ 1.3x poll-list req/s at 4+
//! threads on the zero-copy store. Passing `--smoke` (or `KF_BENCH_SMOKE=1`)
//! runs a tiny fixed configuration so CI can execute the harness per push.

use criterion::{criterion_group, criterion_main, Criterion};

use k8s_apiserver::{ApiServer, BaselineStore, ObjectStore, RequestHandler, StoreBackend};
use k8s_rbac::{audit2rbac, Audit2RbacOptions, RbacPolicySet};
use kf_bench::replay_requests;
use kf_workloads::{InformerDriver, MixRatio, Operator, ReconcileReport, ReconcileStrategy};

const THREAD_COUNTS: [usize; 3] = [1, 4, 8];
const FULL_CYCLES_PER_THREAD: usize = 120;

/// Collection scale: every chart object replicated this many times, so a
/// watched collection holds tens of objects — the populated-cluster regime
/// where per-tick re-listing visibly loses to delta streaming.
const COLLECTION_SCALE: usize = 24;

fn cycles_per_thread() -> usize {
    // Reuse the shared smoke scaling; cycles are ~16 requests each, so the
    // full run replays ~2k requests per thread per strategy.
    replay_requests(FULL_CYCLES_PER_THREAD)
}

/// Learn one RBAC policy covering every operator's watch-heavy traffic:
/// seed + replay the mixed pool (create/get/list **and** watch) against a
/// permissive learning server, then audit2rbac per user and merge — the
/// paper's baseline-hardening recipe, extended to the watch verb.
fn learned_policy(driver: &InformerDriver) -> RbacPolicySet {
    let mut learning = ApiServer::new();
    for operator in Operator::ALL {
        learning = learning.with_admin(&operator.user());
    }
    driver.seed(&learning);
    for request in driver.background_pool() {
        learning.handle(request);
    }
    for (user, kind, namespace) in driver.targets() {
        learning.handle(&k8s_apiserver::ApiRequest::watch(
            user, *kind, namespace, None,
        ));
    }
    let log = learning.audit_log();
    let mut merged = RbacPolicySet::new();
    for operator in Operator::ALL {
        let policy = audit2rbac(
            log.events(),
            &operator.user(),
            &Audit2RbacOptions::default(),
        );
        for role in policy.roles() {
            merged.add_role(role.clone());
        }
        for binding in policy.bindings() {
            merged.add_binding(binding.clone());
        }
    }
    merged
}

/// A server over `store`, guarded by the learned policy and pre-seeded so
/// reconciles and reads hit a populated collection from the first tick.
fn prepared_server<S: StoreBackend>(
    store: S,
    policy: &RbacPolicySet,
    driver: &InformerDriver,
) -> ApiServer<S> {
    let server = ApiServer::with_store(store);
    driver.seed(&server);
    server.set_rbac_policy(Some(policy.clone()));
    server
}

fn row(label: &str, report: &ReconcileReport) {
    println!(
        "{label:<28} {:>2} threads  {:>12.0} req/s  {:>12.0} events/s   ({} ticks, {} relists, {} cached)",
        report.threads,
        report.requests_per_sec(),
        report.events_per_sec(),
        report.reconcile_ticks,
        report.relists,
        report.cached_objects,
    );
}

fn print_scaling_table() {
    let mix = MixRatio::WATCH_HEAVY;
    let driver = InformerDriver::with_scale(&Operator::ALL, mix, COLLECTION_SCALE);
    let policy = learned_policy(&driver);
    println!("\n=== Watch throughput: watch-driven reconcile vs poll-list reconcile ===");
    println!(
        "({} mix over {} watched collections at scale {COLLECTION_SCALE}; {} cycles/thread; full server per request)",
        mix.label(),
        driver.targets().len(),
        cycles_per_thread()
    );
    let mut worst_speedup_at_4_plus = f64::INFINITY;
    for (store_label, baseline_store) in [("zero-copy", false), ("baseline", true)] {
        println!("\n--- {store_label} store ---");
        for threads in THREAD_COUNTS {
            let reports: Vec<ReconcileReport> =
                [ReconcileStrategy::PollList, ReconcileStrategy::WatchDelta]
                    .into_iter()
                    .map(|strategy| {
                        if baseline_store {
                            let server = prepared_server(BaselineStore::new(), &policy, &driver);
                            driver.run(&server, threads, cycles_per_thread(), strategy)
                        } else {
                            let server = prepared_server(ObjectStore::new(), &policy, &driver);
                            driver.run(&server, threads, cycles_per_thread(), strategy)
                        }
                    })
                    .collect();
            let (poll, watch) = (&reports[0], &reports[1]);
            assert!(
                watch.cached_objects > 0 && poll.cached_objects > 0,
                "reconciles must converge to live caches"
            );
            row(&format!("poll-list/{store_label}"), poll);
            row(&format!("watch-delta/{store_label}"), watch);
            let speedup = watch.requests_per_sec() / poll.requests_per_sec().max(1e-9);
            println!("{:<28} {threads:>2} threads  {speedup:>11.2}x", "speedup");
            if threads >= 4 && !baseline_store {
                worst_speedup_at_4_plus = worst_speedup_at_4_plus.min(speedup);
            }
        }
    }
    println!(
        "\nworst zero-copy speedup at 4+ threads: {worst_speedup_at_4_plus:.2}x  (acceptance: >= 1.3x)  {}",
        if worst_speedup_at_4_plus >= 1.3 {
            "PASS"
        } else {
            "FAIL"
        }
    );
}

fn bench(c: &mut Criterion) {
    print_scaling_table();
    if kf_bench::smoke_mode() {
        // Smoke mode proves the harness runs and prints real req/s and
        // events/s; the criterion micro-loops are skipped to keep CI fast.
        return;
    }
    // Criterion-tracked single-tick latency of the two reconcile
    // disciplines over the zero-copy store, so regressions show up
    // per-iteration as well.
    let driver =
        InformerDriver::with_scale(&Operator::ALL, MixRatio::WATCH_HEAVY, COLLECTION_SCALE);
    let policy = learned_policy(&driver);
    let mut group = c.benchmark_group("watch_throughput");
    for (name, strategy) in [
        ("reconcile_watch_delta", ReconcileStrategy::WatchDelta),
        ("reconcile_poll_list", ReconcileStrategy::PollList),
    ] {
        let server = prepared_server(ObjectStore::new(), &policy, &driver);
        group.bench_function(name, |b| {
            b.iter(|| criterion::black_box(driver.run(&server, 1, 4, strategy).total_requests))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
