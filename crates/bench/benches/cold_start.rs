//! Cold start as a tracked artifact: write throughput with the WAL on vs
//! the in-memory store, recovery time from snapshot + WAL replay vs
//! rebuilding state from scratch, and ahead-of-time validator loading vs
//! re-running the policy pipeline — emitted as `BENCH_coldstart.json`.
//!
//! This is the measurement behind the durable persistence plane. Three
//! curve families share the artifact schema:
//!
//! * **durable/`<fsync>`** (`always`, `batch:64`, `os`) — a WAL-backed
//!   [`k8s_apiserver::ObjectStore`] populated with N pods through the
//!   single-write path (one framed, policy-fsync'd append per write), then
//!   crashed and reopened. `req_per_sec` is populate throughput,
//!   `events_per_sec` the replay rate, `p50_us`/`p99_us` the recovery
//!   wall-clock (they are the same number here: one cold start is one
//!   sample, not a distribution).
//! * **in-memory/rebuild** — the same population against a plain store,
//!   with "recovery" being the only option an in-memory deployment has:
//!   re-apply every object from the source manifests.
//! * **policy/aot-load vs policy/recompile** — enforcement state for the
//!   five operators restored from the AOT arena cache
//!   ([`kubefence::load_validator_set`]) vs regenerated chart-to-validator
//!   and recompiled; `events_per_sec` counts validators brought up.
//!
//! Invocations:
//!
//! * `cargo bench -p kf-bench --bench cold_start` — full run; **regenerates
//!   `BENCH_coldstart.json` at the repo root** (the committed trajectory;
//!   tier-1 and CI fail if it goes stale).
//! * `-- --smoke` (or `KF_BENCH_SMOKE=1`) — tiny object tiers for CI;
//!   writes `target/BENCH_coldstart.smoke.json` instead.
//! * `-- --compare <path>` — prints per-tier deltas against a committed
//!   baseline, with slowdowns inside `KF_BENCH_TOLERANCE` percent
//!   (default 10) reported but not flagged.
//! * `KF_WAL_FSYNC=<always|os|batch:N>` — restrict the durable curves to a
//!   single fsync policy (exploration runs; the committed artifact carries
//!   all three).
//! * `KF_BENCH_JSON_OUT=<path>` — override the output path in any mode.

use std::path::PathBuf;
use std::time::Instant;

use k8s_apiserver::persist::{FsyncPolicy, PersistConfig, Persistence};
use k8s_apiserver::{ObjectStore, StoreBackend};
use k8s_model::K8sObject;
use kf_bench::{bench_tolerance, smoke_mode, BenchArtifact, CurvePoint, ScalingCurve};
use kf_workloads::Operator;
use kubefence::{GeneratorConfig, PolicyGenerator, ValidatorSet};

/// Object-count tiers (stored pods at crash time).
const FULL_TIERS: [usize; 3] = [1_000, 5_000, 20_000];
const SMOKE_TIERS: [usize; 2] = [100, 400];

const NAMESPACE: &str = "bench";

fn tiers() -> Vec<usize> {
    if smoke_mode() {
        SMOKE_TIERS.to_vec()
    } else {
        FULL_TIERS.to_vec()
    }
}

/// The fsync policies the durable curves measure, label + parsed form.
/// `KF_WAL_FSYNC` narrows the sweep to one policy for exploration runs.
fn fsync_policies() -> Vec<(String, FsyncPolicy)> {
    if let Ok(text) = std::env::var("KF_WAL_FSYNC") {
        let policy = FsyncPolicy::parse(&text)
            .unwrap_or_else(|| panic!("KF_WAL_FSYNC={text:?} is not always|os|batch:N"));
        return vec![(text, policy)];
    }
    vec![
        ("always".to_owned(), FsyncPolicy::Always),
        ("batch:64".to_owned(), FsyncPolicy::Batch(64)),
        ("os".to_owned(), FsyncPolicy::Os),
    ]
}

/// N distinct pods with realistic field footprints.
fn object_pool(count: usize) -> Vec<K8sObject> {
    (0..count)
        .map(|i| {
            K8sObject::from_yaml(&format!(
                "apiVersion: v1\nkind: Pod\nmetadata:\n  name: cold-{i}\n  namespace: \
                 {NAMESPACE}\n  labels:\n    app: coldstart\n    replica: \"{i}\"\nspec:\n  \
                 containers:\n    - name: app\n      image: nginx:1.25\n      ports:\n        \
                 - containerPort: 80\n",
            ))
            .expect("template pod parses")
        })
        .collect()
}

fn temp_dir(label: &str, tier: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "kf-coldstart-{label}-{tier}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Durable cold start: populate through the WAL'd single-write path, make
/// the tail durable, crash, reopen. One point per object tier.
fn measure_durable(label: &str, policy: FsyncPolicy, count: usize) -> CurvePoint {
    let dir = temp_dir(label, count);
    let objects = object_pool(count);

    let write_elapsed;
    {
        let (store, persistence, _) =
            Persistence::open(PersistConfig::new(&dir).with_fsync(policy))
                .expect("persistence directory opens");
        let start = Instant::now();
        for object in &objects {
            store.upsert(object.clone());
        }
        persistence.wal().sync().expect("WAL tail syncs");
        write_elapsed = start.elapsed().as_secs_f64().max(1e-9);
        // Crash: drop without a checkpoint. Recovery below replays the WAL.
    }

    let start = Instant::now();
    let (store, _persistence, report) =
        Persistence::open(PersistConfig::new(&dir).with_fsync(policy)).expect("recovery opens");
    let recovery = start.elapsed();
    assert_eq!(
        StoreBackend::len(&store),
        count,
        "replay must restore every object"
    );
    let recovery_secs = recovery.as_secs_f64().max(1e-9);
    let recovery_us = recovery.as_micros() as f64;
    std::fs::remove_dir_all(&dir).ok();
    CurvePoint {
        threads: count,
        req_per_sec: count as f64 / write_elapsed,
        events_per_sec: (report.snapshot_objects + report.replayed) as f64 / recovery_secs,
        p50_us: recovery_us,
        p99_us: recovery_us,
    }
}

/// In-memory cold start: same population, and the only recovery an
/// in-memory deployment has — re-apply everything from source.
fn measure_in_memory(count: usize) -> CurvePoint {
    let objects = object_pool(count);
    let store = ObjectStore::new();
    let start = Instant::now();
    for object in &objects {
        store.upsert(object.clone());
    }
    let write_elapsed = start.elapsed().as_secs_f64().max(1e-9);

    let rebuilt = ObjectStore::new();
    let start = Instant::now();
    for object in &objects {
        rebuilt.upsert(object.clone());
    }
    let recovery = start.elapsed();
    let recovery_secs = recovery.as_secs_f64().max(1e-9);
    let recovery_us = recovery.as_micros() as f64;
    CurvePoint {
        threads: count,
        req_per_sec: count as f64 / write_elapsed,
        events_per_sec: count as f64 / recovery_secs,
        p50_us: recovery_us,
        p99_us: recovery_us,
    }
}

/// The five operators' validators, generated from their charts (the cold
/// path the AOT cache exists to skip). The compiled arena is forced so the
/// recompile timing includes lowering, not just tree merging.
fn generate_validator_set() -> ValidatorSet {
    let generator = PolicyGenerator::new(GeneratorConfig::default());
    let mut set = ValidatorSet::new();
    for operator in Operator::ALL {
        let validator = generator
            .generate(&operator.chart())
            .expect("operator charts generate validators");
        validator.compiled();
        set.push(validator);
    }
    set
}

/// Policy cold start: AOT arena load vs full regeneration. `threads` is the
/// operator count; one point per mix.
fn measure_policy() -> (CurvePoint, CurvePoint) {
    let start = Instant::now();
    let set = generate_validator_set();
    let recompile = start.elapsed();

    let path = std::env::temp_dir().join(format!("kf-coldstart-aot-{}.kfaot", std::process::id()));
    kubefence::save_validator_set(&path, &set).expect("AOT cache saves");
    let start = Instant::now();
    let loaded = kubefence::load_validator_set(&path)
        .expect("AOT cache loads")
        .expect("AOT cache present");
    let aot = start.elapsed();
    assert_eq!(loaded.validators().len(), Operator::ALL.len());
    std::fs::remove_file(&path).ok();

    let point = |elapsed: std::time::Duration| {
        let secs = elapsed.as_secs_f64().max(1e-9);
        let us = elapsed.as_micros() as f64;
        CurvePoint {
            threads: Operator::ALL.len(),
            req_per_sec: 1.0 / secs,
            events_per_sec: Operator::ALL.len() as f64 / secs,
            p50_us: us,
            p99_us: us,
        }
    };
    (point(aot), point(recompile))
}

fn row(backend: &str, mix: &str, point: &CurvePoint) {
    println!(
        "{backend:<10} {mix:<9} {:>6} objs  write {:>9.0} req/s  replay {:>9.0} objs/s   \
         recovery {:>11.1} µs",
        point.threads, point.req_per_sec, point.events_per_sec, point.p50_us,
    );
}

fn output_path(smoke: bool) -> PathBuf {
    if let Ok(path) = std::env::var("KF_BENCH_JSON_OUT") {
        return PathBuf::from(path);
    }
    if smoke {
        BenchArtifact::repo_root_path("target/BENCH_coldstart.smoke.json")
    } else {
        BenchArtifact::repo_root_path("BENCH_coldstart.json")
    }
}

fn compare_path() -> Option<PathBuf> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--compare" {
            let name = args.next().expect("--compare takes a path");
            let direct = PathBuf::from(&name);
            return Some(if direct.exists() {
                direct
            } else {
                BenchArtifact::repo_root_path(&name)
            });
        }
    }
    None
}

fn main() {
    let smoke = smoke_mode();
    println!("\n=== Cold start: WAL'd write path, snapshot + replay recovery, AOT policies ===");
    println!("(object tiers {:?}, fsync policies {:?})", tiers(), {
        let labels: Vec<String> = fsync_policies().into_iter().map(|(l, _)| l).collect();
        labels
    });

    let mut artifact = BenchArtifact::new("cold_start", if smoke { "smoke" } else { "full" });

    for (label, policy) in fsync_policies() {
        println!("\n--- durable store, fsync {label} ---");
        let mut points = Vec::new();
        for count in tiers() {
            let point = measure_durable(&label, policy, count);
            row("durable", &label, &point);
            points.push(point);
        }
        artifact.curves.push(ScalingCurve {
            backend: "durable".to_owned(),
            mix: label,
            axis: "objects".to_owned(),
            points,
        });
    }

    println!("\n--- in-memory store, rebuild-from-source recovery ---");
    let mut points = Vec::new();
    for count in tiers() {
        let point = measure_in_memory(count);
        row("in-memory", "rebuild", &point);
        points.push(point);
    }
    artifact.curves.push(ScalingCurve {
        backend: "in-memory".to_owned(),
        mix: "rebuild".to_owned(),
        axis: "objects".to_owned(),
        points,
    });

    println!("\n--- policy plane: AOT arena load vs chart-to-validator regeneration ---");
    let (aot, recompile) = measure_policy();
    println!(
        "policy     aot-load       {} validators   {:>11.1} µs",
        aot.threads, aot.p50_us
    );
    println!(
        "policy     recompile      {} validators   {:>11.1} µs   ({:.1}x slower than AOT)",
        recompile.threads,
        recompile.p50_us,
        recompile.p50_us / aot.p50_us.max(1e-9)
    );
    artifact.curves.push(ScalingCurve {
        backend: "policy".to_owned(),
        mix: "aot-load".to_owned(),
        axis: "validators".to_owned(),
        points: vec![aot],
    });
    artifact.curves.push(ScalingCurve {
        backend: "policy".to_owned(),
        mix: "recompile".to_owned(),
        axis: "validators".to_owned(),
        points: vec![recompile],
    });

    let out = output_path(smoke);
    if let Some(parent) = out.parent() {
        std::fs::create_dir_all(parent).expect("output directory is creatable");
    }
    artifact.save(&out).expect("artifact is writable");
    println!("\nwrote {}", out.display());

    if let Some(path) = compare_path() {
        match BenchArtifact::load(&path) {
            Ok(committed) => {
                println!();
                print!(
                    "{}",
                    artifact.compare_with_tolerance(&committed, bench_tolerance())
                );
            }
            Err(error) => println!("\ncannot compare against {}: {error}", path.display()),
        }
    }
}
