//! Durable-write scaling as a tracked artifact: concurrent-writer
//! throughput per fsync policy (the group-commit amortization curve) and
//! incremental-checkpoint cost per dirty-shard count — emitted as
//! `BENCH_durability.json`.
//!
//! This is the measurement behind group commit. Two curve families share
//! the artifact schema:
//!
//! * **durable/`<fsync>`** (`always`, `batch:64`, `os`, `group`), axis
//!   `threads` — a WAL-backed [`k8s_apiserver::ObjectStore`] written by N
//!   concurrent threads through the single-write path. `req_per_sec` is
//!   aggregate write throughput, `events_per_sec` the durable-proven
//!   record rate over the same window, `p50_us`/`p99_us` per-write
//!   latency. Under `group`, every acknowledged write is fsync-proven
//!   (`Always`-grade semantics) but parked writers share one leader's
//!   fsync — the curve is the amortization earning its keep.
//! * **checkpoint/dirty-shards**, axis `dirty-shards` — a populated store
//!   checkpointed with exactly K of its shards dirty. `p50_us`/`p99_us`
//!   are the checkpoint wall-clock, `req_per_sec`/`events_per_sec` the
//!   segment-object rewrite rate. The curve is the O(dirty) claim: cost
//!   tracks K, not store size.
//!
//! The acceptance target for this plane is `group` ≥ 10x `always` req/s
//! at 8 writers. That multiple needs real writer concurrency: on a
//! single-core runner the window fills at the rate one unparked writer
//! can append, so the measured multiple lands lower (the full fsync
//! amortization shows up as `avg_group_size`). The run prints both the
//! measured multiple and the target; the committed-artifact gate
//! (`committed_durability_artifact_is_current`) enforces the floor
//! `KF_DURABILITY_MIN_SPEEDUP` (default 1.5x) so the curve can never
//! regress to un-batched territory unnoticed.
//!
//! Invocations:
//!
//! * `cargo bench -p kf-bench --bench durability_scaling` — full run;
//!   **regenerates `BENCH_durability.json` at the repo root**.
//! * `-- --smoke` (or `KF_BENCH_SMOKE=1`) — small op counts for CI;
//!   writes `target/BENCH_durability.smoke.json` instead.
//! * `-- --compare <path>` — per-point deltas against a committed
//!   baseline, tolerance `KF_BENCH_TOLERANCE` percent (default 10).
//! * `KF_BENCH_JSON_OUT=<path>` — override the output path in any mode.

use std::path::PathBuf;
use std::time::Instant;

use k8s_apiserver::persist::{FsyncPolicy, PersistConfig, Persistence};
use k8s_apiserver::StoreBackend;
use k8s_model::K8sObject;
use kf_bench::{bench_tolerance, smoke_mode, BenchArtifact, CurvePoint, ScalingCurve};

const NAMESPACE: &str = "bench";

/// Concurrent writer counts (axis `threads`).
const WRITERS: [usize; 4] = [1, 2, 4, 8];
/// Total writes per point, split across the writers.
const FULL_OPS: usize = 2_000;
const SMOKE_OPS: usize = 160;

/// Store population behind the checkpoint curve.
const FULL_STORE: usize = 20_000;
const SMOKE_STORE: usize = 800;
/// Dirty-shard counts the checkpoint curve measures (16 = every shard,
/// i.e. the full-snapshot cost the incremental path replaces).
const DIRTY_TIERS: [usize; 3] = [1, 4, 16];

fn total_ops() -> usize {
    if smoke_mode() {
        SMOKE_OPS
    } else {
        FULL_OPS
    }
}

fn store_population() -> usize {
    if smoke_mode() {
        SMOKE_STORE
    } else {
        FULL_STORE
    }
}

/// The fsync policies the writer curves sweep, label + parsed form.
fn fsync_policies() -> Vec<(String, FsyncPolicy)> {
    ["always", "batch:64", "os", "group"]
        .into_iter()
        .map(|label| {
            (
                label.to_owned(),
                FsyncPolicy::parse(label).expect("labels parse"),
            )
        })
        .collect()
}

fn pod(name: &str) -> K8sObject {
    K8sObject::from_yaml(&format!(
        "apiVersion: v1\nkind: Pod\nmetadata:\n  name: {name}\n  namespace: {NAMESPACE}\n  \
         labels:\n    app: durability\nspec:\n  containers:\n    - name: app\n      image: \
         nginx:1.25\n      ports:\n        - containerPort: 80\n",
    ))
    .expect("template pod parses")
}

fn temp_dir(label: &str, tier: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "kf-durability-{label}-{tier}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn percentile(sorted: &[f64], pct: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((pct / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// One (policy, writers) point: N threads upsert a disjoint key space
/// through the WAL'd write path; every return is an acknowledged write
/// under that policy's durability contract.
fn measure_writers(label: &str, policy: FsyncPolicy, writers: usize) -> (CurvePoint, f64) {
    let dir = temp_dir(label, writers);
    let ops_per_writer = total_ops() / writers;
    let (store, persistence, _) = Persistence::open(PersistConfig::new(&dir).with_fsync(policy))
        .expect("persistence directory opens");

    let start = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..writers)
            .map(|writer| {
                let store = &store;
                scope.spawn(move || {
                    let mut samples = Vec::with_capacity(ops_per_writer);
                    for i in 0..ops_per_writer {
                        let object = pod(&format!("w{writer}-{i}"));
                        let op_start = Instant::now();
                        store.upsert(object);
                        samples.push(op_start.elapsed().as_secs_f64() * 1e6);
                    }
                    samples
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("writer thread"))
            .collect()
    });
    // `os` defers durability to the kernel; pin the tail so every policy's
    // elapsed window ends with the store actually durable.
    persistence.wal().sync().expect("WAL tail syncs");
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);

    let count = ops_per_writer * writers;
    assert_eq!(StoreBackend::len(&store), count, "every write acknowledged");
    let avg_group = persistence.wal().status().avg_group_size();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    std::fs::remove_dir_all(&dir).ok();
    (
        CurvePoint {
            threads: writers,
            req_per_sec: count as f64 / elapsed,
            events_per_sec: count as f64 / elapsed,
            p50_us: percentile(&latencies, 50.0),
            p99_us: percentile(&latencies, 99.0),
        },
        avg_group,
    )
}

/// One dirty-tier point: a populated, fully-checkpointed store gets
/// exactly `dirty` shards touched, then one checkpoint is timed.
fn measure_checkpoint(dirty: usize) -> CurvePoint {
    let dir = temp_dir("ckpt", dirty);
    let (store, persistence, _) =
        Persistence::open(PersistConfig::new(&dir).with_fsync(FsyncPolicy::Os))
            .expect("persistence directory opens");
    let population = store_population();
    let objects: Vec<K8sObject> = (0..population).map(|i| pod(&format!("pool-{i}"))).collect();
    store.apply_batch(objects.clone());
    // Baseline checkpoint: claims every shard, leaves the store clean.
    persistence.checkpoint(&store).expect("baseline checkpoint");
    assert_eq!(store.dirty_shard_count(), 0);

    // Touch objects until exactly `dirty` shards are flagged (one upsert
    // dirties at most one new shard, so the count is hit exactly).
    let mut pool = objects.iter();
    while store.dirty_shard_count() < dirty {
        let object = pool.next().expect("population exceeds shard count");
        store.upsert(object.clone());
    }

    let start = Instant::now();
    let report = persistence.checkpoint(&store).expect("timed checkpoint");
    let elapsed = start.elapsed();
    assert_eq!(
        report.dirty_shards, dirty,
        "claimed exactly the touched shards"
    );
    let secs = elapsed.as_secs_f64().max(1e-9);
    let us = elapsed.as_micros() as f64;
    std::fs::remove_dir_all(&dir).ok();
    CurvePoint {
        threads: dirty,
        req_per_sec: report.objects.max(1) as f64 / secs,
        events_per_sec: report.objects.max(1) as f64 / secs,
        p50_us: us,
        p99_us: us,
    }
}

fn output_path(smoke: bool) -> PathBuf {
    if let Ok(path) = std::env::var("KF_BENCH_JSON_OUT") {
        return PathBuf::from(path);
    }
    if smoke {
        BenchArtifact::repo_root_path("target/BENCH_durability.smoke.json")
    } else {
        BenchArtifact::repo_root_path("BENCH_durability.json")
    }
}

fn compare_path() -> Option<PathBuf> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--compare" {
            let name = args.next().expect("--compare takes a path");
            let direct = PathBuf::from(&name);
            return Some(if direct.exists() {
                direct
            } else {
                BenchArtifact::repo_root_path(&name)
            });
        }
    }
    None
}

fn main() {
    let smoke = smoke_mode();
    println!("\n=== Durability scaling: group-commit WAL, incremental checkpoints ===");
    println!(
        "({} writes per point across writers {WRITERS:?}, checkpoint store {} objs, dirty tiers \
         {DIRTY_TIERS:?})",
        total_ops(),
        store_population()
    );

    let mut artifact =
        BenchArtifact::new("durability_scaling", if smoke { "smoke" } else { "full" });

    let mut at_8 = std::collections::BTreeMap::new();
    for (label, policy) in fsync_policies() {
        println!("\n--- durable writes, fsync {label} ---");
        let mut points = Vec::new();
        for writers in WRITERS {
            let (point, avg_group) = measure_writers(&label, policy, writers);
            println!(
                "durable    {label:<9} {writers:>2} writers  {:>9.0} req/s  p50 {:>7.1} µs  p99 \
                 {:>7.1} µs  avg group {avg_group:>5.1}",
                point.req_per_sec, point.p50_us, point.p99_us
            );
            if writers == *WRITERS.last().expect("non-empty") {
                at_8.insert(label.clone(), point.req_per_sec);
            }
            points.push(point);
        }
        artifact.curves.push(ScalingCurve {
            backend: "durable".to_owned(),
            mix: label,
            axis: ScalingCurve::DEFAULT_AXIS.to_owned(),
            points,
        });
    }

    println!("\n--- incremental checkpoint, cost per dirty-shard count ---");
    let mut points = Vec::new();
    for dirty in DIRTY_TIERS {
        let point = measure_checkpoint(dirty);
        println!(
            "checkpoint dirty-shards {dirty:>2}/16  {:>9.0} objs/s rewritten  {:>11.1} µs",
            point.req_per_sec, point.p50_us
        );
        points.push(point);
    }
    artifact.curves.push(ScalingCurve {
        backend: "checkpoint".to_owned(),
        mix: "dirty-shards".to_owned(),
        axis: "dirty-shards".to_owned(),
        points,
    });

    // The acceptance line CI greps: measured multiple vs the 10x target,
    // with the honest single-core caveat (see the module docs).
    let writers = WRITERS.last().expect("non-empty");
    let (group, always) = (at_8["group"], at_8["always"]);
    let multiple = group / always.max(1e-9);
    println!(
        "\ngroup vs always at {writers} writers: {group:.0} vs {always:.0} req/s = {multiple:.1}x \
         (target 10x; single-core runners cap the realized multiple — amortization itself is \
         tracked as avg group size)"
    );

    let out = output_path(smoke);
    if let Some(parent) = out.parent() {
        std::fs::create_dir_all(parent).expect("output directory is creatable");
    }
    artifact.save(&out).expect("artifact is writable");
    println!("\nwrote {}", out.display());

    if let Some(path) = compare_path() {
        match BenchArtifact::load(&path) {
            Ok(committed) => {
                println!();
                print!(
                    "{}",
                    artifact.compare_with_tolerance(&committed, bench_tolerance())
                );
            }
            Err(error) => println!("\ncannot compare against {}: {error}", path.display()),
        }
    }
}
