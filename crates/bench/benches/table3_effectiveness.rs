//! Tables II and III: the catalog of malicious specifications and the number
//! of CVE exploits / misconfigurations mitigated by RBAC vs KubeFence for
//! every workload.

use criterion::{criterion_group, criterion_main, Criterion};

use k8s_apiserver::ApiServer;
use kf_attacks::AttackExecutor;
use kf_bench::{learned_rbac_policy, validator_for};
use kf_workloads::Operator;
use kubefence::EnforcementProxy;

fn executor_for(operator: Operator) -> AttackExecutor {
    AttackExecutor::new(
        &operator.user(),
        operator.namespace(),
        operator.workload().default_objects(),
    )
}

fn print_tables() {
    println!("\n=== Table II: catalog of K8s malicious specifications ===\n");
    println!("{}", kf_attacks::catalog::to_table());

    println!("\n=== Table III: mitigated CVEs and misconfigurations, RBAC vs KubeFence ===\n");
    println!(
        "{:<12} {:>12} {:>18} {:>16} {:>22}",
        "Workload", "CVEs (RBAC)", "CVEs (KubeFence)", "Misconf (RBAC)", "Misconf (KubeFence)"
    );
    for operator in Operator::ALL {
        let executor = executor_for(operator);

        let rbac_server = ApiServer::new();
        rbac_server.set_rbac_policy(Some(learned_rbac_policy(operator)));
        let rbac = AttackExecutor::summarize(&executor.execute(&rbac_server));

        let proxy = EnforcementProxy::new(ApiServer::new(), validator_for(operator));
        let kubefence = AttackExecutor::summarize(&executor.execute(&proxy));

        println!(
            "{:<12} {:>12} {:>18} {:>16} {:>22}",
            operator.name(),
            format!("{}/{}", rbac.cve_mitigated, rbac.cve_attempted),
            format!("{}/{}", kubefence.cve_mitigated, kubefence.cve_attempted),
            format!("{}/{}", rbac.misconfig_mitigated, rbac.misconfig_attempted),
            format!(
                "{}/{}",
                kubefence.misconfig_mitigated, kubefence.misconfig_attempted
            ),
        );
    }
    println!("\n(paper: RBAC mitigates 0, KubeFence mitigates all 15, for every workload)");
}

fn bench(c: &mut Criterion) {
    print_tables();
    let proxy = EnforcementProxy::new(ApiServer::new(), validator_for(Operator::Nginx));
    let executor = executor_for(Operator::Nginx);
    c.bench_function("table3/replay_catalog_through_proxy_nginx", |b| {
        b.iter(|| criterion::black_box(executor.execute(&proxy)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
