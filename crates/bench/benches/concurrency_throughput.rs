//! Concurrency scaling of the enforcement plane (Table IV, heavy-traffic
//! extension): mixed legitimate/attack traffic replayed from 1, 4 and 8
//! threads against
//!
//! * the **compiled** proxy — flat-arena validators, kind-indexed routing,
//!   atomic statistics, sharded denial ring ([`EnforcementProxy`]); and
//! * the **tree** baseline — the pre-refactor implementation with
//!   tree-walking validation and mutex-guarded bookkeeping
//!   ([`BaselineProxy`]),
//!
//! both in front of the sharded in-memory API server. For every cell the
//! sustained requests/sec and the p99 per-request validation latency are
//! reported; the acceptance criterion is that the compiled plane sustains
//! strictly more requests/sec than the baseline at 8 threads.

use criterion::{criterion_group, criterion_main, Criterion};

use k8s_apiserver::ApiServer;
use kf_bench::{replay_requests, validator_for};
use kf_workloads::{Operator, ThroughputDriver, ThroughputReport};
use kubefence::{BaselineProxy, EnforcementProxy, ValidatorSet};

const THREAD_COUNTS: [usize; 3] = [1, 4, 8];
const FULL_REQUESTS_PER_THREAD: usize = 2_000;

fn requests_per_thread() -> usize {
    // `--smoke` / KF_BENCH_SMOKE=1 shrinks the replay so CI can execute the
    // harness (and print real req/s) on every push.
    replay_requests(FULL_REQUESTS_PER_THREAD)
}

fn validators() -> ValidatorSet {
    let mut set = ValidatorSet::new();
    for operator in Operator::ALL {
        set.push(validator_for(operator));
    }
    set
}

fn server() -> ApiServer {
    let mut server = ApiServer::new();
    for operator in Operator::ALL {
        server = server.with_admin(&operator.user());
    }
    server
}

fn row(label: &str, report: &ThroughputReport) {
    println!(
        "{label:<28} {:>2} threads  {:>12.0} req/s   p50 {:>9.1} µs   p99 {:>9.1} µs   ({} admitted / {} denied)",
        report.threads,
        report.requests_per_sec(),
        report.p50.as_nanos() as f64 / 1e3,
        report.p99.as_nanos() as f64 / 1e3,
        report.admitted,
        report.denied,
    );
}

fn print_scaling_table() {
    println!("\n=== Concurrency scaling: compiled admission plane vs tree + mutex baseline ===");
    println!(
        "(mixed traffic from all {} operators: {} requests/pool, {} per thread)\n",
        Operator::ALL.len(),
        ThroughputDriver::for_operators(&Operator::ALL)
            .requests()
            .len(),
        requests_per_thread()
    );
    let driver = ThroughputDriver::for_operators(&Operator::ALL);
    let mut compiled_at_8 = 0.0f64;
    let mut tree_at_8 = 0.0f64;
    for threads in THREAD_COUNTS {
        let compiled = EnforcementProxy::with_validators(server(), validators());
        let report = driver.run(&compiled, threads, requests_per_thread());
        row("compiled + atomic proxy", &report);
        if threads == 8 {
            compiled_at_8 = report.requests_per_sec();
        }

        let baseline = BaselineProxy::with_validators(server(), validators());
        let report = driver.run(&baseline, threads, requests_per_thread());
        row("tree + mutex baseline", &report);
        if threads == 8 {
            tree_at_8 = report.requests_per_sec();
        }
        println!();
    }
    let speedup = compiled_at_8 / tree_at_8.max(1e-9);
    println!(
        "8-thread verdict: compiled {compiled_at_8:.0} req/s vs tree {tree_at_8:.0} req/s  ({speedup:.2}x)  {}",
        if compiled_at_8 > tree_at_8 { "PASS" } else { "FAIL" }
    );
}

fn bench(c: &mut Criterion) {
    print_scaling_table();
    if kf_bench::smoke_mode() {
        // Smoke mode proves the harness runs; skip the criterion loops.
        return;
    }
    // Criterion-tracked single-request latency of both validation planes, so
    // regressions show up in the per-iteration numbers as well.
    let driver = ThroughputDriver::for_operator(Operator::Sonarqube);
    let validators = ValidatorSet::single(validator_for(Operator::Sonarqube));
    let objects: Vec<_> = driver
        .requests()
        .iter()
        .filter_map(|request| request.object())
        .collect();
    let mut group = c.benchmark_group("concurrency");
    group.bench_function("validate_pool_compiled", |b| {
        b.iter(|| {
            for object in &objects {
                criterion::black_box(validators.validate(object).is_ok());
            }
        })
    });
    group.bench_function("validate_pool_tree_scan", |b| {
        b.iter(|| {
            for object in &objects {
                criterion::black_box(validators.validate_tree_scan(object).is_ok());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
