//! Figure 9: percentage of configurable fields used by each workload for each
//! API endpoint.

use criterion::{criterion_group, criterion_main, Criterion};

use kf_bench::validator_for;
use kf_workloads::Operator;
use kubefence::AttackSurfaceAnalyzer;

fn print_figure9() {
    let analyzer = AttackSurfaceAnalyzer::new();
    let validators: Vec<_> = Operator::ALL.iter().map(|o| validator_for(*o)).collect();
    let report = analyzer.analyze_all(&validators);
    println!("\n=== Figure 9: percentage of API usage across workloads and endpoints ===\n");
    println!("{}", report.to_heatmap());
}

fn bench(c: &mut Criterion) {
    print_figure9();
    let analyzer = AttackSurfaceAnalyzer::new();
    let validator = validator_for(Operator::Sonarqube);
    c.bench_function("fig9/analyze_sonarqube_surface", |b| {
        b.iter(|| criterion::black_box(analyzer.analyze(&validator)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
