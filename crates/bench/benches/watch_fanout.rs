//! Watch fan-out at informer scale as a tracked artifact: push-notify
//! delivery vs poll-based delivery at 100/1k/10k subscribers, both store
//! backends, emitted as `BENCH_watchfanout.json`.
//!
//! This is the measurement behind the push-notify watch fabric (per-shard
//! wake signals, bounded subscriber queues with same-object coalescing,
//! epoll-style readiness dispatch). One writer bursts updates over a small
//! hot set of pods in a single namespace while N watchers consume:
//!
//! * **push** — every watcher is a [`k8s_apiserver::WatchHub::subscribe_push`]
//!   subscription registered with one [`k8s_apiserver::WatchDispatcher`];
//!   four collector threads drain whichever subscriber the dispatcher
//!   surfaces. Delivery work happens only when the publication critical
//!   section fans an event out — no per-watcher polling requests at all.
//! * **poll** — every watcher holds a resume cursor and four poller threads
//!   round-robin full `Verb::Watch` requests through the server (the
//!   pre-fabric delivery discipline): each poll pays RBAC + audit + journal
//!   scan whether or not anything changed.
//!
//! Per delivered event the bench measures **delivery latency** — the wall
//! clock from the write that published the revision to the moment a watcher
//! drains it — via a revision-indexed timestamp slab, sampled on a stride
//! of subscribers. Events/s counts events actually handed to watchers, so
//! push numbers reflect coalescing (a watcher that takes the newest state
//! of a hot object skips the stale intermediates).
//!
//! Invocations:
//!
//! * `cargo bench -p kf-bench --bench watch_fanout` — full run;
//!   **regenerates `BENCH_watchfanout.json` at the repo root** (the
//!   committed trajectory; tier-1 and CI fail if it goes stale).
//! * `-- --smoke` (or `KF_BENCH_SMOKE=1`) — tiny subscriber tiers for CI;
//!   writes `target/BENCH_watchfanout.smoke.json` instead.
//! * `-- --compare <path>` — prints per-tier deltas against a committed
//!   baseline, with slowdowns inside `KF_BENCH_TOLERANCE` percent
//!   (default 10) reported but not flagged.
//! * `KF_BENCH_JSON_OUT=<path>` — override the output path in any mode.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use k8s_apiserver::{
    ApiRequest, ApiServer, BaselineStore, ObjectStore, RequestHandler, StoreBackend,
    WatchDispatcher, WatchHub,
};
use k8s_model::{K8sObject, ResourceKind};
use kf_bench::{bench_tolerance, smoke_mode, BenchArtifact, CurvePoint, ScalingCurve};

/// Subscriber tiers: informer-fleet sizes from the paper's scale argument.
const FULL_TIERS: [usize; 3] = [100, 1_000, 10_000];
const SMOKE_TIERS: [usize; 2] = [8, 32];

/// Distinct objects in the hot set — small enough that bursts coalesce,
/// large enough that queues see real interleaving.
const HOT_SET: usize = 48;

/// Collector/poller thread count (the container is a small shared box; the
/// contrast under test is delivery discipline, not thread scaling).
const DRAIN_THREADS: usize = 4;

/// Watchers sampled for delivery latency (stride over the tier).
const LATENCY_SAMPLE_SUBS: usize = 128;

const USER: &str = "admin";
const NAMESPACE: &str = "bench";
const KIND: ResourceKind = ResourceKind::Pod;

/// Writes per tier: scaled down as fan-out multiplies per-write work, so a
/// full run stays in CI-friendly wall-clock territory.
fn writes_for(subscribers: usize) -> usize {
    if smoke_mode() {
        60
    } else if subscribers >= 10_000 {
        150
    } else if subscribers >= 1_000 {
        600
    } else {
        1_500
    }
}

/// The writer's pacing: watch traffic is a stream, not one dense burst, so
/// the writer spreads its writes over a ~1.5 s window (writes × interval).
/// This measures steady-state delivery — how long a published revision
/// takes to reach every watcher while the fleet is attached — rather than
/// how fast one burst drains, which is the regime informer fleets live in.
fn write_interval(subscribers: usize) -> std::time::Duration {
    if smoke_mode() {
        std::time::Duration::from_micros(500)
    } else if subscribers >= 10_000 {
        std::time::Duration::from_millis(10)
    } else if subscribers >= 1_000 {
        std::time::Duration::from_micros(2_500)
    } else {
        std::time::Duration::from_millis(1)
    }
}

fn tiers() -> Vec<usize> {
    if smoke_mode() {
        SMOKE_TIERS.to_vec()
    } else {
        FULL_TIERS.to_vec()
    }
}

/// The hot set, pre-parsed once; writes clone a template (cheap: the body
/// is an `Arc` tree) and upsert it round-robin.
fn hot_set() -> Vec<K8sObject> {
    (0..HOT_SET)
        .map(|i| {
            K8sObject::from_yaml(&format!(
                "apiVersion: v1\nkind: Pod\nmetadata:\n  name: fanout-{i}\n  namespace: \
                 {NAMESPACE}\nspec:\n  containers:\n    - name: app\n      image: nginx\n",
            ))
            .expect("template pod parses")
        })
        .collect()
}

/// Revision-indexed publish timestamps. The writer stamps `slab[rev -
/// base - 1]` right after `upsert` returns; a consumer that races ahead of
/// the stamp spins (the window is the tail of the publication critical
/// section, nanoseconds).
struct StampSlab {
    base: u64,
    nanos: Vec<AtomicU64>,
    epoch: Instant,
}

impl StampSlab {
    fn new(base: u64, writes: usize) -> Self {
        StampSlab {
            base,
            nanos: (0..writes).map(|_| AtomicU64::new(0)).collect(),
            epoch: Instant::now(),
        }
    }

    fn stamp(&self, revision: u64) {
        let idx = (revision - self.base - 1) as usize;
        let now = self.epoch.elapsed().as_nanos() as u64;
        self.nanos[idx].store(now.max(1), Ordering::Release);
    }

    /// Delivery latency in nanoseconds for a measured revision, `None` for
    /// revisions outside the measured window (backfill, foreign writes).
    fn latency(&self, revision: u64) -> Option<u64> {
        if revision <= self.base {
            return None;
        }
        let idx = (revision - self.base - 1) as usize;
        if idx >= self.nanos.len() {
            return None;
        }
        let mut published = self.nanos[idx].load(Ordering::Acquire);
        while published == 0 {
            std::thread::yield_now();
            published = self.nanos[idx].load(Ordering::Acquire);
        }
        Some((self.epoch.elapsed().as_nanos() as u64).saturating_sub(published))
    }
}

fn percentile_us(samples: &mut [u64], pct: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_unstable();
    let idx = ((samples.len() as f64 * pct).ceil() as usize).clamp(1, samples.len()) - 1;
    samples[idx] as f64 / 1e3
}

/// The writer: streams `writes` upserts over the hot set on an absolute
/// schedule (start + i×interval, no drift accumulation), stamping each
/// assigned revision.
fn run_writer<S: StoreBackend>(
    store: &S,
    templates: &[K8sObject],
    writes: usize,
    interval: std::time::Duration,
    slab: &StampSlab,
) {
    let start = Instant::now();
    for i in 0..writes {
        let due = interval * i as u32;
        if let Some(wait) = due.checked_sub(start.elapsed()) {
            std::thread::sleep(wait);
        }
        let (revision, _) = store.upsert(templates[i % templates.len()].clone());
        slab.stamp(revision);
    }
}

/// Push delivery: N dispatcher-registered subscriptions drained by
/// [`DRAIN_THREADS`] collectors, events/s and sampled delivery latency.
fn measure_push<S: StoreBackend>(server: &ApiServer<S>, subscribers: usize) -> CurvePoint {
    let writes = writes_for(subscribers);
    let interval = write_interval(subscribers);
    let templates = hot_set();
    // Materialize the hot set once so pushes after the first lap are
    // updates, then snapshot the measured window's base revision.
    for template in &templates {
        server.store().upsert(template.clone());
    }
    let base = server.store().revision();
    let final_revision = base + writes as u64;
    let slab = StampSlab::new(base, writes);

    let dispatcher = WatchDispatcher::new();
    let stride = (subscribers / LATENCY_SAMPLE_SUBS).max(1);
    let watchers: Vec<_> = (0..subscribers)
        .map(|token| {
            let push = server
                .subscribe_push(&ApiRequest::watch(USER, KIND, NAMESPACE, Some(base)))
                .expect("admin watch subscription is authorized");
            dispatcher.register(&push.subscriber, token);
            (
                push.subscriber,
                AtomicBool::new(false),
                Mutex::new(Vec::<u64>::new()),
            )
        })
        .collect();

    let delivered = AtomicU64::new(0);
    let finished = AtomicUsize::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        scope.spawn(|| run_writer(server.store(), &templates, writes, interval, &slab));
        for _ in 0..DRAIN_THREADS {
            scope.spawn(|| {
                while finished.load(Ordering::Acquire) < subscribers {
                    let Some(token) = dispatcher.next_ready(std::time::Duration::from_millis(20))
                    else {
                        continue;
                    };
                    let (subscriber, done, samples) = &watchers[token];
                    if done.load(Ordering::Acquire) {
                        continue;
                    }
                    // Hot-set churn coalesces well inside the queue bound,
                    // so eviction cannot fire here; Err is terminal either
                    // way and the watcher just stops counting.
                    let Ok(events) = subscriber.try_recv() else {
                        if !done.swap(true, Ordering::AcqRel) {
                            finished.fetch_add(1, Ordering::AcqRel);
                        }
                        continue;
                    };
                    let mut saw_final = false;
                    for event in &events {
                        delivered.fetch_add(1, Ordering::Relaxed);
                        if token % stride == 0 {
                            if let Some(nanos) = slab.latency(event.revision) {
                                samples.lock().unwrap().push(nanos);
                            }
                        }
                        saw_final |= event.revision >= final_revision;
                    }
                    if saw_final && !done.swap(true, Ordering::AcqRel) {
                        finished.fetch_add(1, Ordering::AcqRel);
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);

    let mut samples: Vec<u64> = watchers
        .iter()
        .flat_map(|(_, _, s)| s.lock().unwrap().clone())
        .collect();
    CurvePoint {
        threads: subscribers,
        // Push delivery issues no polling traffic: the writer's upserts
        // are the only requests in the measured window.
        req_per_sec: writes as f64 / elapsed,
        events_per_sec: delivered.load(Ordering::Relaxed) as f64 / elapsed,
        p50_us: percentile_us(&mut samples, 0.50),
        p99_us: percentile_us(&mut samples, 0.99),
    }
}

/// Poll delivery: N cursors advanced by full watch requests, round-robined
/// from [`DRAIN_THREADS`] pollers — every poll is a complete server
/// round-trip whether or not events are pending.
fn measure_poll<S: StoreBackend>(server: &ApiServer<S>, subscribers: usize) -> CurvePoint {
    let writes = writes_for(subscribers);
    let interval = write_interval(subscribers);
    let templates = hot_set();
    for template in &templates {
        server.store().upsert(template.clone());
    }
    let base = server.store().revision();
    let final_revision = base + writes as u64;
    let slab = StampSlab::new(base, writes);
    let stride = (subscribers / LATENCY_SAMPLE_SUBS).max(1);

    let delivered = AtomicU64::new(0);
    let polls = AtomicU64::new(0);
    let all_samples = Mutex::new(Vec::<u64>::new());
    let start = Instant::now();
    std::thread::scope(|scope| {
        scope.spawn(|| run_writer(server.store(), &templates, writes, interval, &slab));
        let (slab, delivered, polls, all_samples) = (&slab, &delivered, &polls, &all_samples);
        for poller in 0..DRAIN_THREADS {
            scope.spawn(move || {
                // Static partition: this poller owns every DRAIN_THREADSth
                // watcher, so cursors need no cross-thread sharing.
                let mut cursors: Vec<(usize, u64)> = (poller..subscribers)
                    .step_by(DRAIN_THREADS)
                    .map(|token| (token, base))
                    .collect();
                let mut samples = Vec::new();
                while !cursors.is_empty() {
                    cursors.retain_mut(|(token, cursor)| {
                        polls.fetch_add(1, Ordering::Relaxed);
                        let response =
                            server.handle(&ApiRequest::watch(USER, KIND, NAMESPACE, Some(*cursor)));
                        let Some((events, resume)) =
                            response.body.as_ref().and_then(|b| b.watch_events())
                        else {
                            return false;
                        };
                        for event in events {
                            if event.object.is_none() {
                                continue; // bookmark
                            }
                            delivered.fetch_add(1, Ordering::Relaxed);
                            if *token % stride == 0 {
                                if let Some(nanos) = slab.latency(event.revision) {
                                    samples.push(nanos);
                                }
                            }
                        }
                        *cursor = resume;
                        *cursor < final_revision
                    });
                }
                all_samples.lock().unwrap().extend(samples);
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);

    let mut samples = all_samples.into_inner().unwrap();
    CurvePoint {
        threads: subscribers,
        req_per_sec: (writes as u64 + polls.load(Ordering::Relaxed)) as f64 / elapsed,
        events_per_sec: delivered.load(Ordering::Relaxed) as f64 / elapsed,
        p50_us: percentile_us(&mut samples, 0.50),
        p99_us: percentile_us(&mut samples, 0.99),
    }
}

fn row(backend: &str, mix: &str, point: &CurvePoint) {
    println!(
        "{backend:<10} {mix:<5} {:>6} subs  {:>10.0} req/s  {:>11.0} events/s   p50 {:>10.1} µs   p99 {:>12.1} µs",
        point.threads, point.req_per_sec, point.events_per_sec, point.p50_us, point.p99_us,
    );
}

fn output_path(smoke: bool) -> PathBuf {
    if let Ok(path) = std::env::var("KF_BENCH_JSON_OUT") {
        return PathBuf::from(path);
    }
    if smoke {
        BenchArtifact::repo_root_path("target/BENCH_watchfanout.smoke.json")
    } else {
        BenchArtifact::repo_root_path("BENCH_watchfanout.json")
    }
}

fn compare_path() -> Option<PathBuf> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--compare" {
            let name = args.next().expect("--compare takes a path");
            let direct = PathBuf::from(&name);
            return Some(if direct.exists() {
                direct
            } else {
                BenchArtifact::repo_root_path(&name)
            });
        }
    }
    None
}

fn main() {
    let smoke = smoke_mode();
    println!("\n=== Watch fan-out: push-notify fabric vs poll delivery ===");
    println!(
        "({} hot objects, {} drain threads, tiers {:?}; delivery latency sampled on ≤{} watchers)",
        HOT_SET,
        DRAIN_THREADS,
        tiers(),
        LATENCY_SAMPLE_SUBS
    );

    let mut artifact = BenchArtifact::new("watch_fanout", if smoke { "smoke" } else { "full" });
    for backend in ["zero-copy", "baseline"] {
        for mix in ["push", "poll"] {
            println!("\n--- {backend} store, {mix} delivery ---");
            let mut points = Vec::new();
            for subscribers in tiers() {
                let point = match (backend, mix) {
                    ("zero-copy", "push") => measure_push(
                        &ApiServer::with_store(ObjectStore::new()).with_admin(USER),
                        subscribers,
                    ),
                    ("zero-copy", "poll") => measure_poll(
                        &ApiServer::with_store(ObjectStore::new()).with_admin(USER),
                        subscribers,
                    ),
                    ("baseline", "push") => measure_push(
                        &ApiServer::with_store(BaselineStore::new()).with_admin(USER),
                        subscribers,
                    ),
                    _ => measure_poll(
                        &ApiServer::with_store(BaselineStore::new()).with_admin(USER),
                        subscribers,
                    ),
                };
                row(backend, mix, &point);
                points.push(point);
            }
            artifact.curves.push(ScalingCurve {
                backend: backend.to_owned(),
                mix: mix.to_owned(),
                axis: "subscribers".to_owned(),
                points,
            });
        }
    }

    // Push-vs-poll contrast per backend and tier, for the human table.
    println!();
    for backend in ["zero-copy", "baseline"] {
        let push = artifact.curve(backend, "push").expect("measured");
        let poll = artifact.curve(backend, "poll").expect("measured");
        for (p, q) in push.points.iter().zip(&poll.points) {
            println!(
                "{:<10} {:>6} subs  {:>7.2}x events/s  {:>8.2}x better p99 (push vs poll)",
                backend,
                p.threads,
                p.events_per_sec / q.events_per_sec.max(1e-9),
                q.p99_us / p.p99_us.max(1e-9),
            );
        }
    }

    let out = output_path(smoke);
    if let Some(parent) = out.parent() {
        std::fs::create_dir_all(parent).expect("output directory is creatable");
    }
    artifact.save(&out).expect("artifact is writable");
    println!("\nwrote {}", out.display());

    if let Some(path) = compare_path() {
        match BenchArtifact::load(&path) {
            Ok(committed) => {
                println!();
                print!(
                    "{}",
                    artifact.compare_with_tolerance(&committed, bench_tolerance())
                );
            }
            Err(error) => println!("\ncannot compare against {}: {error}", path.display()),
        }
    }
}
