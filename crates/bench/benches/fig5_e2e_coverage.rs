//! Figure 5: number of e2e tests per category that interact with the
//! vulnerable files of each CVE, plus the headline ratios (29/6,580 overall,
//! 21/960 outside storage).

use criterion::{criterion_group, criterion_main, Criterion};

use k8s_model::cve::CveDatabase;
use kf_workloads::e2e::{E2eCategory, E2eCorpus};

fn print_figure5() {
    let corpus = E2eCorpus::generate();
    let database = CveDatabase::new();
    println!("\n=== Figure 5: e2e tests covering vulnerable code, per CVE and category ===\n");
    println!("{}", corpus.to_matrix_text());
    let covering = corpus.tests_covering_vulnerable_code();
    let outside_storage = covering
        .iter()
        .filter(|t| t.category != E2eCategory::Storage)
        .count();
    println!(
        "tests covering vulnerable code: {} / {} ({:.2}%)",
        covering.len(),
        corpus.total_tests(),
        100.0 * covering.len() as f64 / corpus.total_tests() as f64
    );
    println!(
        "excluding the storage category: {} / {}",
        outside_storage,
        corpus.total_tests() - E2eCategory::Storage.test_count()
    );
    println!(
        "CVEs never reached by any e2e test: {} / {}",
        corpus.uncovered_cve_count(&database),
        database.len()
    );
}

fn bench(c: &mut Criterion) {
    print_figure5();
    c.bench_function("fig5/generate_corpus_and_matrix", |b| {
        b.iter(|| {
            let corpus = E2eCorpus::generate();
            criterion::black_box(corpus.coverage_matrix());
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
