//! Tracked perf-trajectory artifacts: machine-readable scaling curves the
//! benches emit, commit at the repo root (`BENCH_writepath.json`), and
//! compare against across PRs.
//!
//! README tables show a snapshot; the JSON artifact is the **trajectory**:
//! per-thread curves (req/s, events/s, p50/p99) per store backend and
//! traffic mix, stamped with a schema version so CI can detect a committed
//! artifact that predates the current schema. Everything is serialized
//! through `kf_yaml`'s JSON support — no external serializer.
//!
//! Layout (schema version [`BENCH_SCHEMA_VERSION`]):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "bench": "writepath_scaling",
//!   "mode": "full",
//!   "curves": [
//!     { "backend": "zero-copy", "mix": "c8:g1:l1", "axis": "threads",
//!       "points": [ { "threads": 1, "req_per_sec": ..., "events_per_sec": ...,
//!                     "p50_us": ..., "p99_us": ... }, ... ] }
//!   ]
//! }
//! ```
//!
//! `axis` names what `points[].threads` scales over — `"threads"` for the
//! writer-scaling benches, `"objects"` for store-size tiers, and so on.
//! Artifacts written before the label existed parse with the `"threads"`
//! default, so the schema version did not need to change.

use std::path::{Path, PathBuf};

use kf_yaml::{Mapping, Value};

/// Version of the artifact layout. Bump when fields change shape; the
/// staleness check (`kf-bench` unit tests + the CI parity job) fails any
/// committed `BENCH_*.json` whose stamp disagrees, forcing a regeneration
/// with the documented bench invocation.
pub const BENCH_SCHEMA_VERSION: i64 = 1;

/// One measured point of a scaling curve.
#[derive(Debug, Clone, PartialEq)]
pub struct CurvePoint {
    /// The scale value of this point — what it measures is named by the
    /// owning curve's [`ScalingCurve::axis`] (thread count, object tier,
    /// dirty-shard count, …). The field keeps its historical name for
    /// schema compatibility.
    pub threads: usize,
    /// Sustained requests per second across all threads.
    pub req_per_sec: f64,
    /// Watch-journal events published per second (write revisions over the
    /// run's wall clock) — the write plane's delivery-side throughput.
    pub events_per_sec: f64,
    /// Median per-request `handle` latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile per-request `handle` latency, microseconds.
    pub p99_us: f64,
}

/// A per-scale curve for one (backend, mix) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingCurve {
    /// Store backend label (`zero-copy` / `baseline`).
    pub backend: String,
    /// Mix label (`kf_workloads::MixRatio::label`, e.g. `c8:g1:l1`).
    pub mix: String,
    /// What [`CurvePoint::threads`] scales over (`"threads"`, `"objects"`,
    /// …). Defaults to `"threads"` when an older artifact omits it.
    pub axis: String,
    /// Points in ascending scale order.
    pub points: Vec<CurvePoint>,
}

impl ScalingCurve {
    /// The default axis label, and the implied one for artifacts written
    /// before the label existed.
    pub const DEFAULT_AXIS: &'static str = "threads";
}

/// A complete bench artifact: schema stamp, provenance, curves.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArtifact {
    /// Layout version, must equal [`BENCH_SCHEMA_VERSION`] to be current.
    pub schema_version: i64,
    /// Which bench produced it (`writepath_scaling`).
    pub bench: String,
    /// `full` for committed artifacts, `smoke` for CI smoke output.
    pub mode: String,
    /// The measured curves.
    pub curves: Vec<ScalingCurve>,
}

impl BenchArtifact {
    /// A fresh artifact stamped with the current schema version.
    pub fn new(bench: &str, mode: &str) -> Self {
        BenchArtifact {
            schema_version: BENCH_SCHEMA_VERSION,
            bench: bench.to_owned(),
            mode: mode.to_owned(),
            curves: Vec::new(),
        }
    }

    /// The repo-root path of a committed artifact (`BENCH_writepath.json`
    /// lives next to `README.md`, two levels above this crate).
    pub fn repo_root_path(file_name: &str) -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(file_name)
    }

    /// Serialize to pretty-stable JSON (insertion-ordered mappings).
    pub fn to_json(&self) -> String {
        let mut root = Mapping::new();
        root.insert("schema_version", Value::Int(self.schema_version));
        root.insert("bench", Value::from(self.bench.as_str()));
        root.insert("mode", Value::from(self.mode.as_str()));
        let curves: Vec<Value> = self
            .curves
            .iter()
            .map(|curve| {
                let mut c = Mapping::new();
                c.insert("backend", Value::from(curve.backend.as_str()));
                c.insert("mix", Value::from(curve.mix.as_str()));
                c.insert("axis", Value::from(curve.axis.as_str()));
                let points: Vec<Value> = curve
                    .points
                    .iter()
                    .map(|point| {
                        let mut p = Mapping::new();
                        p.insert("threads", Value::from(point.threads));
                        p.insert("req_per_sec", Value::Float(point.req_per_sec));
                        p.insert("events_per_sec", Value::Float(point.events_per_sec));
                        p.insert("p50_us", Value::Float(point.p50_us));
                        p.insert("p99_us", Value::Float(point.p99_us));
                        Value::Map(p)
                    })
                    .collect();
                c.insert("points", Value::Seq(points));
                Value::Map(c)
            })
            .collect();
        root.insert("curves", Value::Seq(curves));
        kf_yaml::to_json(&Value::Map(root))
    }

    /// Parse an artifact back out of its JSON form.
    ///
    /// # Errors
    ///
    /// A description of the first malformed or missing field.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let root = kf_yaml::parse_json(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let root = root.as_map().ok_or("artifact root must be an object")?;
        let field = |name: &str| root.get(name).ok_or(format!("missing field `{name}`"));
        let schema_version = field("schema_version")?
            .as_i64()
            .ok_or("schema_version must be an integer")?;
        let bench = field("bench")?
            .as_str()
            .ok_or("bench must be a string")?
            .to_owned();
        let mode = field("mode")?
            .as_str()
            .ok_or("mode must be a string")?
            .to_owned();
        let mut curves = Vec::new();
        for curve in field("curves")?.as_seq().ok_or("curves must be an array")? {
            let curve = curve.as_map().ok_or("curve must be an object")?;
            let mut points = Vec::new();
            for point in curve
                .get("points")
                .and_then(Value::as_seq)
                .ok_or("curve.points must be an array")?
            {
                let point = point.as_map().ok_or("point must be an object")?;
                let num = |name: &str| {
                    point
                        .get(name)
                        .and_then(Value::as_f64)
                        .ok_or(format!("point.{name} must be a number"))
                };
                points.push(CurvePoint {
                    threads: num("threads")? as usize,
                    req_per_sec: num("req_per_sec")?,
                    events_per_sec: num("events_per_sec")?,
                    p50_us: num("p50_us")?,
                    p99_us: num("p99_us")?,
                });
            }
            curves.push(ScalingCurve {
                backend: curve
                    .get("backend")
                    .and_then(Value::as_str)
                    .ok_or("curve.backend must be a string")?
                    .to_owned(),
                mix: curve
                    .get("mix")
                    .and_then(Value::as_str)
                    .ok_or("curve.mix must be a string")?
                    .to_owned(),
                axis: curve
                    .get("axis")
                    .and_then(Value::as_str)
                    .unwrap_or(ScalingCurve::DEFAULT_AXIS)
                    .to_owned(),
                points,
            });
        }
        Ok(BenchArtifact {
            schema_version,
            bench,
            mode,
            curves,
        })
    }

    /// Load and parse an artifact file.
    ///
    /// # Errors
    ///
    /// The I/O or parse failure, as text.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_json(&text)
    }

    /// Write the artifact as JSON (with a trailing newline, as committed
    /// files want).
    ///
    /// # Errors
    ///
    /// The underlying filesystem error.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, format!("{}\n", self.to_json()))
    }

    /// Whether a **committed** artifact is current: schema stamp matches
    /// and it was produced by a full (non-smoke) run.
    ///
    /// # Errors
    ///
    /// A description of what is stale, for the CI check's output.
    pub fn validate_committed(&self) -> Result<(), String> {
        if self.schema_version != BENCH_SCHEMA_VERSION {
            return Err(format!(
                "schema_version {} != current {} — regenerate with the documented bench \
                 invocation",
                self.schema_version, BENCH_SCHEMA_VERSION
            ));
        }
        if self.mode != "full" {
            return Err(format!(
                "mode `{}` — committed artifacts must come from a full run, not smoke",
                self.mode
            ));
        }
        if self.curves.is_empty() || self.curves.iter().any(|c| c.points.is_empty()) {
            return Err("artifact has empty curves".to_owned());
        }
        Ok(())
    }

    /// The curve for a (backend, mix) pair, if present.
    pub fn curve(&self, backend: &str, mix: &str) -> Option<&ScalingCurve> {
        self.curves
            .iter()
            .find(|c| c.backend == backend && c.mix == mix)
    }

    /// A per-thread delta table of `self` (current run) against `baseline`
    /// (the committed artifact), matched by (backend, mix, threads) —
    /// printed into the CI job summary by `--compare`. Positive deltas mean
    /// the current run is faster. Every negative delta is flagged; use
    /// [`BenchArtifact::compare_with_tolerance`] (fed by
    /// `kf_bench::bench_tolerance`) to suppress run-to-run drift.
    pub fn compare(&self, baseline: &BenchArtifact) -> String {
        self.compare_with_tolerance(baseline, 0.0)
    }

    /// [`BenchArtifact::compare`] with a drift allowance: throughput drops
    /// and p99 rises within `tolerance_pct` percent are reported but not
    /// flagged, so single-core run-to-run noise doesn't read as a
    /// regression. Rows with a metric beyond the allowance carry a
    /// trailing `<< beyond tolerance` marker, and the table ends with a
    /// one-line verdict CI can grep.
    pub fn compare_with_tolerance(&self, baseline: &BenchArtifact, tolerance_pct: f64) -> String {
        let mut out = String::new();
        let mut flagged = 0usize;
        out.push_str(&format!(
            "=== {} vs committed baseline (schema v{} vs v{}, tolerance ±{:.1}%) ===\n",
            self.bench, self.schema_version, baseline.schema_version, tolerance_pct
        ));
        for curve in &self.curves {
            let Some(reference) = baseline.curve(&curve.backend, &curve.mix) else {
                out.push_str(&format!(
                    "{}/{}: no baseline curve\n",
                    curve.backend, curve.mix
                ));
                continue;
            };
            for point in &curve.points {
                let Some(base) = reference.points.iter().find(|p| p.threads == point.threads)
                else {
                    out.push_str(&format!(
                        "{}/{} {:>2} threads: no baseline point\n",
                        curve.backend, curve.mix, point.threads
                    ));
                    continue;
                };
                let delta = |now: f64, then: f64| 100.0 * (now - then) / then.max(1e-9);
                let req = delta(point.req_per_sec, base.req_per_sec);
                let events = delta(point.events_per_sec, base.events_per_sec);
                let p99 = delta(point.p99_us, base.p99_us);
                // Lower req/s and events/s are slowdowns; higher p99 is.
                let beyond = req < -tolerance_pct || events < -tolerance_pct || p99 > tolerance_pct;
                out.push_str(&format!(
                    "{:<10} {:<10} {:>2} threads  req/s {:>12.0} ({:>+7.1}%)  events/s \
                     {:>12.0} ({:>+7.1}%)  p99 {:>9.1} µs ({:>+7.1}%){}\n",
                    curve.backend,
                    curve.mix,
                    point.threads,
                    point.req_per_sec,
                    req,
                    point.events_per_sec,
                    events,
                    point.p99_us,
                    p99,
                    if beyond { "  << beyond tolerance" } else { "" },
                ));
                flagged += usize::from(beyond);
            }
        }
        if flagged > 0 {
            out.push_str(&format!(
                "{flagged} point(s) beyond the ±{tolerance_pct:.1}% tolerance\n"
            ));
        } else {
            out.push_str(&format!(
                "all deltas within the ±{tolerance_pct:.1}% tolerance\n"
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchArtifact {
        let mut artifact = BenchArtifact::new("writepath_scaling", "full");
        artifact.curves.push(ScalingCurve {
            backend: "zero-copy".into(),
            mix: "c8:g1:l1".into(),
            axis: ScalingCurve::DEFAULT_AXIS.into(),
            points: vec![
                CurvePoint {
                    threads: 1,
                    req_per_sec: 100_000.0,
                    events_per_sec: 80_000.0,
                    p50_us: 8.0,
                    p99_us: 31.5,
                },
                CurvePoint {
                    threads: 8,
                    req_per_sec: 120_000.0,
                    events_per_sec: 96_000.0,
                    p50_us: 9.0,
                    p99_us: 60.0,
                },
            ],
        });
        artifact
    }

    #[test]
    fn artifacts_roundtrip_through_json() {
        let artifact = sample();
        let parsed = BenchArtifact::from_json(&artifact.to_json()).unwrap();
        assert_eq!(parsed, artifact);
        assert!(parsed.validate_committed().is_ok());
        assert!(parsed.curve("zero-copy", "c8:g1:l1").is_some());
        assert!(parsed.curve("baseline", "c8:g1:l1").is_none());
    }

    #[test]
    fn axis_defaults_to_threads_for_pre_label_artifacts() {
        // An artifact written before the axis label existed still parses,
        // and its curves read as per-thread.
        let mut artifact = sample();
        artifact.curves[0].axis = "objects".into();
        let json = artifact.to_json();
        assert!(json.contains("\"axis\""));
        let stripped = json.replace("\"axis\":\"objects\",", "");
        assert!(!stripped.contains("axis"), "label removed from the JSON");
        let parsed = BenchArtifact::from_json(&stripped).unwrap();
        assert_eq!(parsed.curves[0].axis, ScalingCurve::DEFAULT_AXIS);
        // And the explicit label round-trips.
        let parsed = BenchArtifact::from_json(&json).unwrap();
        assert_eq!(parsed.curves[0].axis, "objects");
    }

    #[test]
    fn staleness_is_detected() {
        let mut stale = sample();
        stale.schema_version = BENCH_SCHEMA_VERSION - 1;
        assert!(stale.validate_committed().unwrap_err().contains("schema"));
        let mut smoke = sample();
        smoke.mode = "smoke".into();
        assert!(smoke.validate_committed().unwrap_err().contains("smoke"));
        let mut empty = sample();
        empty.curves.clear();
        assert!(empty.validate_committed().is_err());
    }

    #[test]
    fn malformed_json_reports_the_field() {
        assert!(BenchArtifact::from_json("{").is_err());
        assert!(BenchArtifact::from_json("{\"schema_version\": 1}")
            .unwrap_err()
            .contains("bench"));
        assert!(BenchArtifact::from_json("[1]")
            .unwrap_err()
            .contains("object"));
    }

    #[test]
    fn compare_prints_per_thread_deltas() {
        let baseline = sample();
        let mut current = sample();
        current.curves[0].points[1].req_per_sec = 150_000.0;
        let table = current.compare(&baseline);
        assert!(table.contains("+25.0%"));
        assert!(table.contains("8 threads"));
        // Missing baseline curves are reported, not panicked on.
        let mut renamed = sample();
        renamed.curves[0].backend = "other".into();
        assert!(renamed.compare(&baseline).contains("no baseline curve"));
    }

    #[test]
    fn tolerance_suppresses_drift_but_flags_regressions() {
        let baseline = sample();
        let mut drifted = sample();
        // 5% slower everywhere: noise on a shared core, not a regression.
        for point in &mut drifted.curves[0].points {
            point.req_per_sec *= 0.95;
            point.events_per_sec *= 0.95;
            point.p99_us *= 1.05;
        }
        let table = drifted.compare_with_tolerance(&baseline, 10.0);
        assert!(table.contains("all deltas within"));
        assert!(!table.contains("beyond tolerance"));
        // The same drift IS flagged at zero tolerance (compare's default).
        assert!(drifted.compare(&baseline).contains("beyond tolerance"));
        // A real collapse punches through the allowance.
        let mut regressed = sample();
        regressed.curves[0].points[0].req_per_sec *= 0.5;
        let table = regressed.compare_with_tolerance(&baseline, 10.0);
        assert!(table.contains("<< beyond tolerance"));
        assert!(table.contains("1 point(s) beyond"));
    }

    /// The tracked-artifact gate for the push-notify watch fabric: the
    /// committed `BENCH_watchfanout.json` must exist, be current, cover
    /// push and poll delivery on both store backends at the standard
    /// subscriber counts, and show the fabric earning its keep — at 1k
    /// subscribers on the zero-copy backend, push delivery must sustain
    /// ≥ 2x poll events/s or ≥ 5x better p99 delivery latency.
    #[test]
    fn committed_watchfanout_artifact_is_current() {
        let path = BenchArtifact::repo_root_path("BENCH_watchfanout.json");
        let artifact = BenchArtifact::load(&path)
            .expect("BENCH_watchfanout.json must be committed at the repo root");
        artifact
            .validate_committed()
            .expect("committed artifact must be current — regenerate: cargo bench -p kf-bench --bench watch_fanout");
        assert_eq!(artifact.bench, "watch_fanout");
        for backend in ["zero-copy", "baseline"] {
            for mix in ["push", "poll"] {
                let curve = artifact
                    .curve(backend, mix)
                    .unwrap_or_else(|| panic!("missing {backend}/{mix} fan-out curve"));
                let subs: Vec<usize> = curve.points.iter().map(|p| p.threads).collect();
                assert_eq!(subs, vec![100, 1000, 10000], "standard subscriber counts");
                assert!(curve.points.iter().all(|p| p.req_per_sec > 0.0
                    && p.events_per_sec > 0.0
                    && p.p50_us > 0.0
                    && p.p99_us >= p.p50_us));
            }
        }
        let at = |mix: &str| {
            artifact
                .curve("zero-copy", mix)
                .and_then(|c| c.points.iter().find(|p| p.threads == 1000))
                .expect("zero-copy curves carry the 1k-subscriber point")
        };
        let (push, poll) = (at("push"), at("poll"));
        assert!(
            push.events_per_sec >= 2.0 * poll.events_per_sec || push.p99_us * 5.0 <= poll.p99_us,
            "push must beat poll at 1k subscribers: {:.0} vs {:.0} events/s, p99 {:.1} vs {:.1} µs",
            push.events_per_sec,
            poll.events_per_sec,
            push.p99_us,
            poll.p99_us
        );
    }

    /// The tracked-artifact gate for the durable persistence plane: the
    /// committed `BENCH_coldstart.json` must exist, be current, cover all
    /// three fsync policies plus the in-memory rebuild baseline at the
    /// standard object tiers, carry both policy-plane points, and show the
    /// AOT cache earning its keep — loading compiled arenas must be faster
    /// than re-running chart-to-validator generation.
    #[test]
    fn committed_coldstart_artifact_is_current() {
        let path = BenchArtifact::repo_root_path("BENCH_coldstart.json");
        let artifact = BenchArtifact::load(&path)
            .expect("BENCH_coldstart.json must be committed at the repo root");
        artifact
            .validate_committed()
            .expect("committed artifact must be current — regenerate: cargo bench -p kf-bench --bench cold_start");
        assert_eq!(artifact.bench, "cold_start");
        for (backend, mix) in [
            ("durable", "always"),
            ("durable", "batch:64"),
            ("durable", "os"),
            ("in-memory", "rebuild"),
        ] {
            let curve = artifact
                .curve(backend, mix)
                .unwrap_or_else(|| panic!("missing {backend}/{mix} cold-start curve"));
            assert_eq!(
                curve.axis, "objects",
                "cold-start tiers scale over objects, not threads"
            );
            let tiers: Vec<usize> = curve.points.iter().map(|p| p.threads).collect();
            assert_eq!(tiers, vec![1_000, 5_000, 20_000], "standard object tiers");
            assert!(curve.points.iter().all(|p| p.req_per_sec > 0.0
                && p.events_per_sec > 0.0
                && p.p50_us > 0.0
                && p.p99_us >= p.p50_us));
        }
        let policy_point = |mix: &str| {
            let curve = artifact
                .curve("policy", mix)
                .unwrap_or_else(|| panic!("missing policy/{mix} curve"));
            assert_eq!(curve.points.len(), 1, "policy curves are one-shot");
            assert!(curve.points[0].p50_us > 0.0);
            curve.points[0].clone()
        };
        let (aot, recompile) = (policy_point("aot-load"), policy_point("recompile"));
        assert!(
            aot.p50_us < recompile.p50_us,
            "AOT load ({:.1} µs) must beat policy regeneration ({:.1} µs)",
            aot.p50_us,
            recompile.p50_us
        );
    }

    /// The tracked-artifact gate for the group-commit WAL and incremental
    /// checkpoints: the committed `BENCH_durability.json` must exist, be
    /// current, cover all four fsync policies at the standard writer
    /// counts plus the dirty-shard checkpoint curve, and show both
    /// mechanisms earning their keep:
    ///
    /// * `group` must beat `always` req/s at 8 writers by at least
    ///   `KF_DURABILITY_MIN_SPEEDUP` (default 1.5x — the floor that
    ///   catches a regression to un-batched fsyncs; the plane's target is
    ///   10x, which needs real writer parallelism a single-core runner
    ///   cannot express, so the measured multiple is printed next to the
    ///   target rather than gated at it);
    /// * `group` must scale with writers (8-writer req/s ≥ 1.5x 1-writer —
    ///   the amortization signature `always` cannot produce);
    /// * a 1-dirty-shard checkpoint must run at least 2x faster than the
    ///   all-shards one over the same store (the O(dirty) claim).
    #[test]
    fn committed_durability_artifact_is_current() {
        let path = BenchArtifact::repo_root_path("BENCH_durability.json");
        let artifact = BenchArtifact::load(&path)
            .expect("BENCH_durability.json must be committed at the repo root");
        artifact
            .validate_committed()
            .expect("committed artifact must be current — regenerate: cargo bench -p kf-bench --bench durability_scaling");
        assert_eq!(artifact.bench, "durability_scaling");
        for mix in ["always", "batch:64", "os", "group"] {
            let curve = artifact
                .curve("durable", mix)
                .unwrap_or_else(|| panic!("missing durable/{mix} writer curve"));
            assert_eq!(curve.axis, ScalingCurve::DEFAULT_AXIS);
            let writers: Vec<usize> = curve.points.iter().map(|p| p.threads).collect();
            assert_eq!(writers, vec![1, 2, 4, 8], "standard writer counts");
            assert!(curve.points.iter().all(|p| p.req_per_sec > 0.0
                && p.events_per_sec > 0.0
                && p.p50_us > 0.0
                && p.p99_us >= p.p50_us));
        }
        let at = |mix: &str, writers: usize| {
            artifact
                .curve("durable", mix)
                .and_then(|c| c.points.iter().find(|p| p.threads == writers))
                .unwrap_or_else(|| panic!("missing durable/{mix} point at {writers} writers"))
                .req_per_sec
        };
        let floor = std::env::var("KF_DURABILITY_MIN_SPEEDUP")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(1.5);
        let multiple = at("group", 8) / at("always", 8).max(1e-9);
        println!(
            "group vs always at 8 writers: {multiple:.1}x measured (target 10x, gate floor \
             {floor:.1}x)"
        );
        assert!(
            multiple >= floor,
            "group ({:.0} req/s) must beat always ({:.0} req/s) at 8 writers by ≥ {floor:.1}x, \
             measured {multiple:.1}x — group commit stopped amortizing",
            at("group", 8),
            at("always", 8),
        );
        assert!(
            at("group", 8) >= 1.5 * at("group", 1),
            "group req/s must scale with writers ({:.0} at 8 vs {:.0} at 1): the shared-window \
             amortization is the mechanism under test",
            at("group", 8),
            at("group", 1),
        );
        let checkpoint = artifact
            .curve("checkpoint", "dirty-shards")
            .expect("missing checkpoint/dirty-shards curve");
        assert_eq!(checkpoint.axis, "dirty-shards");
        let tiers: Vec<usize> = checkpoint.points.iter().map(|p| p.threads).collect();
        assert_eq!(tiers, vec![1, 4, 16], "standard dirty tiers");
        let cost = |tier: usize| {
            checkpoint
                .points
                .iter()
                .find(|p| p.threads == tier)
                .expect("tier present")
                .p50_us
        };
        assert!(
            2.0 * cost(1) <= cost(16),
            "a 1-dirty-shard checkpoint ({:.0} µs) must be ≥ 2x faster than the all-shards one \
             ({:.0} µs): checkpoint cost must track the dirty set, not store size",
            cost(1),
            cost(16),
        );
    }

    /// The tracked-artifact gate: the committed `BENCH_writepath.json` at
    /// the repo root must exist, parse, carry the current schema version,
    /// come from a full run, and cover both store backends at the standard
    /// thread counts. Runs in tier-1 *and* as the CI parity job's
    /// staleness-check step.
    #[test]
    fn committed_writepath_artifact_is_current() {
        let path = BenchArtifact::repo_root_path("BENCH_writepath.json");
        let artifact = BenchArtifact::load(&path)
            .expect("BENCH_writepath.json must be committed at the repo root");
        artifact
            .validate_committed()
            .expect("committed artifact must be current — regenerate: cargo bench -p kf-bench --bench writepath_scaling");
        assert_eq!(artifact.bench, "writepath_scaling");
        for backend in ["zero-copy", "baseline"] {
            let curve = artifact
                .curve(backend, "c8:g1:l1")
                .unwrap_or_else(|| panic!("missing {backend} write-heavy curve"));
            let threads: Vec<usize> = curve.points.iter().map(|p| p.threads).collect();
            assert_eq!(threads, vec![1, 4, 8], "standard thread counts");
            assert!(curve.points.iter().all(|p| p.req_per_sec > 0.0
                && p.events_per_sec > 0.0
                && p.p50_us > 0.0
                && p.p99_us >= p.p50_us));
        }
    }
}
