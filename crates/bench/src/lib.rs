//! Shared helpers for the benchmark harness that regenerates every table and
//! figure of the paper's evaluation.
//!
//! Each benchmark target under `benches/` prints the rows/series of the
//! corresponding table or figure and, where meaningful, measures the
//! underlying operation with Criterion. See `EXPERIMENTS.md` for the
//! paper-vs-measured comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod artifact;

pub use artifact::{BenchArtifact, CurvePoint, ScalingCurve, BENCH_SCHEMA_VERSION};

use k8s_apiserver::{ApiServer, RequestHandler};
use k8s_rbac::{audit2rbac, Audit2RbacOptions, RbacPolicySet};
use kf_workloads::{DeploymentDriver, Operator, ThroughputDriver};
use kubefence::{GeneratorConfig, PolicyGenerator, Validator};

/// Generate the KubeFence validator for an operator, exactly as the
/// experiments do (release name = the operator's release).
pub fn validator_for(operator: Operator) -> Validator {
    PolicyGenerator::new(GeneratorConfig::for_release(operator.release_name()))
        .generate(&operator.chart())
        .expect("built-in charts generate valid policies")
}

/// Learn the per-operator least-privilege RBAC policy from an attack-free
/// deployment, as the paper does with audit logging + audit2rbac.
pub fn learned_rbac_policy(operator: Operator) -> RbacPolicySet {
    let learning_server = ApiServer::new().with_admin(&operator.user());
    DeploymentDriver::new(operator).deploy(&learning_server);
    audit2rbac(
        learning_server.audit_log().events(),
        &operator.user(),
        &Audit2RbacOptions::default(),
    )
}

/// Learn one RBAC policy covering every operator's traffic in `driver`'s
/// pool: replay it once against a permissive learning server, then run
/// audit2rbac per operator user and merge the role objects — the paper's
/// baseline-hardening recipe, extended to whatever verbs the pool contains.
/// Shared by the throughput-style benches so they authorize identically.
pub fn learned_mixed_policy(driver: &ThroughputDriver) -> RbacPolicySet {
    let mut learning = ApiServer::new();
    for operator in Operator::ALL {
        learning = learning.with_admin(&operator.user());
    }
    driver.seed(&learning);
    for request in driver.requests() {
        learning.handle(request);
    }
    let log = learning.audit_log();
    let mut merged = RbacPolicySet::new();
    for operator in Operator::ALL {
        let policy = audit2rbac(
            log.events(),
            &operator.user(),
            &Audit2RbacOptions::default(),
        );
        for role in policy.roles() {
            merged.add_role(role.clone());
        }
        for binding in policy.bindings() {
            merged.add_binding(binding.clone());
        }
    }
    merged
}

/// Whether the benches should run in **smoke mode**: a tiny, fixed-seed
/// configuration that executes every code path in seconds so CI can prove
/// the perf harness still runs (and print real req/s numbers) without
/// paying for a full measurement. Enabled by the `--smoke` argument
/// (`cargo bench --bench <name> -- --smoke`) or `KF_BENCH_SMOKE=1`.
pub fn smoke_mode() -> bool {
    std::env::args().any(|arg| arg == "--smoke")
        || std::env::var("KF_BENCH_SMOKE")
            .map(|v| v == "1")
            .unwrap_or(false)
}

/// The per-thread replay request count for throughput-style benches:
/// `full` normally, a tiny count in [`smoke_mode`].
pub fn replay_requests(full: usize) -> usize {
    if smoke_mode() {
        (full / 20).max(10)
    } else {
        full
    }
}

/// The regression tolerance (in percent) the `--compare` mode of the
/// artifact-emitting benches applies before flagging a slowdown:
/// `KF_BENCH_TOLERANCE` if set and parseable, else 10%. On the single
/// shared-core CI runner, run-to-run drift of a few percent is noise, not a
/// regression; raise the knob when a runner is especially contended, set it
/// to `0` to flag every negative delta.
pub fn bench_tolerance() -> f64 {
    std::env::var("KF_BENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|t| t.is_finite() && *t >= 0.0)
        .unwrap_or(10.0)
}

/// Mean and standard deviation of a sample set.
pub fn mean_and_stddev(samples: &[f64]) -> (f64, f64) {
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / samples.len() as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_produce_usable_artifacts() {
        let validator = validator_for(Operator::Nginx);
        assert!(!validator.kinds().is_empty());
        let policy = learned_rbac_policy(Operator::Nginx);
        assert!(policy.object_count() > 0);
        let (mean, std) = mean_and_stddev(&[1.0, 2.0, 3.0]);
        assert!((mean - 2.0).abs() < 1e-9);
        assert!(std > 0.0);
    }
}
