//! The RBAC authorization evaluator consulted by the API server.

use serde::{Deserialize, Serialize};

use k8s_model::{ResourceKind, Verb};

use crate::role::{Role, RoleBinding, RoleScope};

/// An authorization question: may `user` perform `verb` on `kind` in
/// `namespace` (optionally on a specific object `name`)?
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessReview {
    /// Authenticated user name.
    pub user: String,
    /// Requested verb.
    pub verb: Verb,
    /// Target resource kind.
    pub kind: ResourceKind,
    /// Target namespace (empty for cluster-scoped kinds).
    pub namespace: String,
    /// Target object name (empty for collection operations).
    pub name: String,
}

impl AccessReview {
    /// Build an access review.
    pub fn new(user: &str, verb: Verb, kind: ResourceKind, namespace: &str, name: &str) -> Self {
        AccessReview {
            user: user.to_owned(),
            verb,
            kind,
            namespace: namespace.to_owned(),
            name: name.to_owned(),
        }
    }
}

/// The outcome of an authorization check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessDecision {
    /// The request is allowed; the string names the role and binding that
    /// granted it.
    Allow {
        /// `binding/role` that granted the access.
        granted_by: String,
    },
    /// No rule allows the request.
    Deny {
        /// Human-readable reason.
        reason: String,
    },
}

impl AccessDecision {
    /// Whether the decision allows the request.
    pub fn is_allowed(&self) -> bool {
        matches!(self, AccessDecision::Allow { .. })
    }
}

/// A set of RBAC objects (roles, cluster roles and their bindings) forming the
/// effective policy of a cluster.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RbacPolicySet {
    roles: Vec<Role>,
    bindings: Vec<RoleBinding>,
}

impl RbacPolicySet {
    /// An empty policy set (denies everything for non-admin users).
    pub fn new() -> Self {
        RbacPolicySet::default()
    }

    /// Add a role (namespaced or cluster-scoped).
    pub fn add_role(&mut self, role: Role) {
        self.roles.push(role);
    }

    /// Add a binding (namespaced or cluster-scoped).
    pub fn add_binding(&mut self, binding: RoleBinding) {
        self.bindings.push(binding);
    }

    /// All roles.
    pub fn roles(&self) -> &[Role] {
        &self.roles
    }

    /// All bindings.
    pub fn bindings(&self) -> &[RoleBinding] {
        &self.bindings
    }

    /// Total number of RBAC objects (roles + bindings).
    pub fn object_count(&self) -> usize {
        self.roles.len() + self.bindings.len()
    }

    fn find_role(&self, name: &str, scope: RoleScope, namespace: &str) -> Option<&Role> {
        self.roles.iter().find(|r| {
            r.name == name
                && r.scope == scope
                && (scope == RoleScope::Cluster || r.namespace == namespace)
        })
    }

    /// Evaluate an access review against the policy set.
    ///
    /// The evaluation follows the upstream semantics: a namespaced
    /// RoleBinding grants access only inside its namespace (whether it
    /// references a Role or a ClusterRole), while a ClusterRoleBinding grants
    /// access in every namespace and at cluster scope.
    pub fn authorize(&self, review: &AccessReview) -> AccessDecision {
        let api_group = review.kind.api_group();
        let resource = review.kind.plural();
        let verb = review.verb.as_str();
        for binding in &self.bindings {
            if !binding.binds_user(&review.user) {
                continue;
            }
            // Namespaced bindings only apply within their own namespace.
            if binding.scope == RoleScope::Namespaced && binding.namespace != review.namespace {
                continue;
            }
            let role =
                match self.find_role(&binding.role_name, binding.role_scope, &binding.namespace) {
                    Some(role) => role,
                    None => continue,
                };
            if role.allows(&api_group, resource, verb, &review.name) {
                return AccessDecision::Allow {
                    granted_by: format!("{}/{}", binding.name, role.name),
                };
            }
        }
        AccessDecision::Deny {
            reason: format!(
                "no RBAC rule allows user \"{}\" to {} {} in namespace \"{}\"",
                review.user, verb, resource, review.namespace
            ),
        }
    }

    /// The set of (kind, verb) pairs a user may exercise in a namespace.
    /// Used by the attack-surface analysis to determine which endpoints RBAC
    /// leaves reachable.
    pub fn allowed_kinds(&self, user: &str, namespace: &str) -> Vec<(ResourceKind, Verb)> {
        let mut out = Vec::new();
        for kind in ResourceKind::ALL {
            for verb in Verb::ALL {
                let review = AccessReview::new(user, verb, kind, namespace, "");
                if self.authorize(&review).is_allowed() {
                    out.push((kind, verb));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::role::{PolicyRule, Subject};

    fn policy() -> RbacPolicySet {
        let mut set = RbacPolicySet::new();
        set.add_role(
            Role::namespaced("deployer", "prod")
                .with_rule(PolicyRule::for_kind(
                    ResourceKind::Deployment,
                    [Verb::Create, Verb::Get],
                ))
                .with_rule(PolicyRule::for_kind(ResourceKind::Service, [Verb::Create])),
        );
        set.add_binding(
            RoleBinding::namespaced("deployer-binding", "prod", "deployer")
                .with_subject(Subject::user("operator")),
        );
        set.add_role(
            Role::cluster("webhook-admin").with_rule(PolicyRule::for_kind(
                ResourceKind::ValidatingWebhookConfiguration,
                [Verb::Create],
            )),
        );
        set.add_binding(
            RoleBinding::cluster("webhook-admin-binding", "webhook-admin")
                .with_subject(Subject::user("operator")),
        );
        set
    }

    #[test]
    fn allows_granted_namespaced_access() {
        let set = policy();
        let review = AccessReview::new(
            "operator",
            Verb::Create,
            ResourceKind::Deployment,
            "prod",
            "",
        );
        assert!(set.authorize(&review).is_allowed());
    }

    #[test]
    fn denies_other_namespaces_and_users() {
        let set = policy();
        let other_ns = AccessReview::new(
            "operator",
            Verb::Create,
            ResourceKind::Deployment,
            "dev",
            "",
        );
        assert!(!set.authorize(&other_ns).is_allowed());
        let other_user = AccessReview::new(
            "mallory",
            Verb::Create,
            ResourceKind::Deployment,
            "prod",
            "",
        );
        assert!(!set.authorize(&other_user).is_allowed());
    }

    #[test]
    fn denies_unlisted_verbs_and_kinds() {
        let set = policy();
        let delete = AccessReview::new(
            "operator",
            Verb::Delete,
            ResourceKind::Deployment,
            "prod",
            "",
        );
        assert!(!set.authorize(&delete).is_allowed());
        let pods = AccessReview::new("operator", Verb::Create, ResourceKind::Pod, "prod", "");
        assert!(!set.authorize(&pods).is_allowed());
    }

    #[test]
    fn cluster_bindings_grant_cluster_scoped_access() {
        let set = policy();
        let review = AccessReview::new(
            "operator",
            Verb::Create,
            ResourceKind::ValidatingWebhookConfiguration,
            "",
            "",
        );
        assert!(set.authorize(&review).is_allowed());
    }

    #[test]
    fn rbac_does_not_inspect_request_bodies() {
        // This is the core limitation the paper exploits: the access review
        // carries no specification fields at all, so two requests that differ
        // only in (for example) `hostNetwork: true` are indistinguishable.
        let set = policy();
        let review = AccessReview::new(
            "operator",
            Verb::Create,
            ResourceKind::Deployment,
            "prod",
            "",
        );
        assert!(set.authorize(&review).is_allowed());
        // There is no API to express "allow Deployments but forbid
        // hostNetwork" — the review type has no field for it.
    }

    #[test]
    fn allowed_kinds_enumerates_the_reachable_surface() {
        let set = policy();
        let allowed = set.allowed_kinds("operator", "prod");
        assert!(allowed.contains(&(ResourceKind::Deployment, Verb::Create)));
        assert!(allowed.contains(&(ResourceKind::Service, Verb::Create)));
        assert!(!allowed.iter().any(|(k, _)| *k == ResourceKind::Pod));
    }

    #[test]
    fn empty_policy_denies_everything() {
        let set = RbacPolicySet::new();
        let review = AccessReview::new("anyone", Verb::Get, ResourceKind::Pod, "default", "");
        assert!(!set.authorize(&review).is_allowed());
        assert_eq!(set.object_count(), 0);
    }
}
