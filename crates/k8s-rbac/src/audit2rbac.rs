//! `audit2rbac`: infer the minimal RBAC policy covering a recorded workload.
//!
//! The paper configures the RBAC baseline by processing audit logs of an
//! attack-free run of each operator with Liggitt's `audit2rbac` tool, which
//! emits the least-privilege Role/ClusterRole and bindings for the observed
//! user. This module reimplements that inference: group the user's allowed
//! events by namespace and resource kind, collect the verbs actually used,
//! and emit one role + binding per namespace (plus a cluster role for
//! cluster-scoped resources).

use std::collections::BTreeMap;

use k8s_model::{ResourceKind, Verb};

use crate::audit::AuditEvent;
use crate::evaluator::RbacPolicySet;
use crate::role::{PolicyRule, Role, RoleBinding, Subject};

/// Options controlling the inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Audit2RbacOptions {
    /// Name prefix for the generated roles and bindings.
    pub name_prefix: String,
    /// Also cover events that were denied at recording time (off by default,
    /// matching the upstream tool).
    pub include_denied: bool,
}

impl Default for Audit2RbacOptions {
    fn default() -> Self {
        Audit2RbacOptions {
            name_prefix: "audit2rbac".to_owned(),
            include_denied: false,
        }
    }
}

/// Infer a least-privilege policy for `user` from audit events.
///
/// The result is the tightest policy RBAC can express for the observed
/// workload: exactly the (namespace, resource kind, verb) triples seen in the
/// log — and nothing about the request bodies.
pub fn audit2rbac(events: &[AuditEvent], user: &str, options: &Audit2RbacOptions) -> RbacPolicySet {
    // (namespace) -> (kind) -> set of verbs
    let mut namespaced: BTreeMap<String, BTreeMap<ResourceKind, Vec<Verb>>> = BTreeMap::new();
    let mut cluster_scoped: BTreeMap<ResourceKind, Vec<Verb>> = BTreeMap::new();

    for event in events {
        if event.user != user {
            continue;
        }
        if !event.allowed && !options.include_denied {
            continue;
        }
        if event.kind.is_namespaced() {
            let ns = if event.namespace.is_empty() {
                "default".to_owned()
            } else {
                event.namespace.clone()
            };
            let verbs = namespaced
                .entry(ns)
                .or_default()
                .entry(event.kind)
                .or_default();
            if !verbs.contains(&event.verb) {
                verbs.push(event.verb);
            }
        } else {
            let verbs = cluster_scoped.entry(event.kind).or_default();
            if !verbs.contains(&event.verb) {
                verbs.push(event.verb);
            }
        }
    }

    let mut policy = RbacPolicySet::new();
    let sanitized_user = user.replace([':', '/'], "-");

    for (namespace, kinds) in namespaced {
        let role_name = format!("{}-{}-{}", options.name_prefix, sanitized_user, namespace);
        let mut role = Role::namespaced(role_name.clone(), namespace.clone());
        for (kind, mut verbs) in kinds {
            verbs.sort();
            role = role.with_rule(PolicyRule::for_kind(kind, verbs));
        }
        policy.add_role(role);
        policy.add_binding(
            RoleBinding::namespaced(format!("{role_name}-binding"), namespace, role_name.clone())
                .with_subject(Subject::user(user)),
        );
    }

    if !cluster_scoped.is_empty() {
        let role_name = format!("{}-{}-cluster", options.name_prefix, sanitized_user);
        let mut role = Role::cluster(role_name.clone());
        for (kind, mut verbs) in cluster_scoped {
            verbs.sort();
            role = role.with_rule(PolicyRule::for_kind(kind, verbs));
        }
        policy.add_role(role);
        policy.add_binding(
            RoleBinding::cluster(format!("{role_name}-binding"), role_name)
                .with_subject(Subject::user(user)),
        );
    }

    policy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::AuditLog;
    use crate::evaluator::AccessReview;

    fn record_workload(log: &mut AuditLog) {
        for (verb, kind, ns, name) in [
            (Verb::Create, ResourceKind::Deployment, "prod", "web"),
            (Verb::Update, ResourceKind::Deployment, "prod", "web"),
            (Verb::Create, ResourceKind::Service, "prod", "web"),
            (Verb::Create, ResourceKind::ConfigMap, "prod", "web-config"),
            (
                Verb::Create,
                ResourceKind::ValidatingWebhookConfiguration,
                "",
                "hook",
            ),
        ] {
            log.record("operator", verb, kind, ns, name, true, None);
        }
        // Another user's traffic must not leak into the inferred policy.
        log.record(
            "intruder",
            Verb::Create,
            ResourceKind::Pod,
            "prod",
            "x",
            true,
            None,
        );
        // Denied events are ignored by default.
        log.record(
            "operator",
            Verb::Delete,
            ResourceKind::Secret,
            "prod",
            "s",
            false,
            None,
        );
    }

    #[test]
    fn inferred_policy_covers_exactly_the_observed_accesses() {
        let mut log = AuditLog::new();
        record_workload(&mut log);
        let policy = audit2rbac(log.events(), "operator", &Audit2RbacOptions::default());

        for (verb, kind) in [
            (Verb::Create, ResourceKind::Deployment),
            (Verb::Update, ResourceKind::Deployment),
            (Verb::Create, ResourceKind::Service),
            (Verb::Create, ResourceKind::ConfigMap),
        ] {
            let review = AccessReview::new("operator", verb, kind, "prod", "");
            assert!(
                policy.authorize(&review).is_allowed(),
                "{verb} {kind} must be allowed"
            );
        }
        let webhook = AccessReview::new(
            "operator",
            Verb::Create,
            ResourceKind::ValidatingWebhookConfiguration,
            "",
            "",
        );
        assert!(policy.authorize(&webhook).is_allowed());
    }

    #[test]
    fn inferred_policy_excludes_unobserved_kinds_verbs_and_users() {
        let mut log = AuditLog::new();
        record_workload(&mut log);
        let policy = audit2rbac(log.events(), "operator", &Audit2RbacOptions::default());

        // Pods were only touched by another user.
        let pods = AccessReview::new("operator", Verb::Create, ResourceKind::Pod, "prod", "");
        assert!(!policy.authorize(&pods).is_allowed());
        // Denied secret deletion is not included.
        let secrets = AccessReview::new("operator", Verb::Delete, ResourceKind::Secret, "prod", "");
        assert!(!policy.authorize(&secrets).is_allowed());
        // The other user gains nothing.
        let intruder = AccessReview::new("intruder", Verb::Create, ResourceKind::Pod, "prod", "");
        assert!(!policy.authorize(&intruder).is_allowed());
        // Unobserved verbs on observed kinds stay denied.
        let delete = AccessReview::new(
            "operator",
            Verb::Delete,
            ResourceKind::Deployment,
            "prod",
            "",
        );
        assert!(!policy.authorize(&delete).is_allowed());
    }

    #[test]
    fn include_denied_widens_the_policy() {
        let mut log = AuditLog::new();
        record_workload(&mut log);
        let options = Audit2RbacOptions {
            include_denied: true,
            ..Audit2RbacOptions::default()
        };
        let policy = audit2rbac(log.events(), "operator", &options);
        let secrets = AccessReview::new("operator", Verb::Delete, ResourceKind::Secret, "prod", "");
        assert!(policy.authorize(&secrets).is_allowed());
    }

    #[test]
    fn policy_objects_follow_naming_convention() {
        let mut log = AuditLog::new();
        record_workload(&mut log);
        let policy = audit2rbac(log.events(), "operator", &Audit2RbacOptions::default());
        assert!(policy
            .roles()
            .iter()
            .any(|r| r.name == "audit2rbac-operator-prod"));
        assert!(policy
            .bindings()
            .iter()
            .any(|b| b.name == "audit2rbac-operator-prod-binding"));
        assert!(policy.roles().iter().any(|r| r.name.ends_with("-cluster")));
    }

    #[test]
    fn empty_logs_produce_empty_policies() {
        let policy = audit2rbac(&[], "operator", &Audit2RbacOptions::default());
        assert_eq!(policy.object_count(), 0);
    }
}
