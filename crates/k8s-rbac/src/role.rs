//! RBAC object model: rules, roles, bindings and subjects.

use serde::{Deserialize, Serialize};

use k8s_model::{ResourceKind, Verb};
use kf_yaml::{Mapping, Value};

/// Whether a role/binding is namespaced (`Role`/`RoleBinding`) or
/// cluster-scoped (`ClusterRole`/`ClusterRoleBinding`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoleScope {
    /// Namespaced Role / RoleBinding.
    Namespaced,
    /// Cluster-scoped ClusterRole / ClusterRoleBinding.
    Cluster,
}

/// One RBAC rule: a set of API groups, resources and verbs (all supporting the
/// `*` wildcard), optionally restricted to specific resource names.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PolicyRule {
    /// API groups the rule applies to (`""` is the core group).
    pub api_groups: Vec<String>,
    /// Plural resource names (`pods`, `deployments`, …).
    pub resources: Vec<String>,
    /// Allowed verbs.
    pub verbs: Vec<String>,
    /// Optional restriction to specific object names.
    pub resource_names: Vec<String>,
}

impl PolicyRule {
    /// A rule allowing `verbs` on `resources` in `api_groups`.
    pub fn new<S: Into<String>>(
        api_groups: impl IntoIterator<Item = S>,
        resources: impl IntoIterator<Item = S>,
        verbs: impl IntoIterator<Item = S>,
    ) -> Self {
        PolicyRule {
            api_groups: api_groups.into_iter().map(Into::into).collect(),
            resources: resources.into_iter().map(Into::into).collect(),
            verbs: verbs.into_iter().map(Into::into).collect(),
            resource_names: Vec::new(),
        }
    }

    /// A rule allowing the given verbs on one resource kind.
    pub fn for_kind(kind: ResourceKind, verbs: impl IntoIterator<Item = Verb>) -> Self {
        PolicyRule {
            api_groups: vec![kind.api_group()],
            resources: vec![kind.plural().to_owned()],
            verbs: verbs.into_iter().map(|v| v.as_str().to_owned()).collect(),
            resource_names: Vec::new(),
        }
    }

    fn matches_list(list: &[String], value: &str) -> bool {
        list.iter().any(|item| item == "*" || item == value)
    }

    /// Whether the rule allows `verb` on `resource` in `api_group` for the
    /// given object name (empty name = collection access).
    pub fn matches(&self, api_group: &str, resource: &str, verb: &str, name: &str) -> bool {
        Self::matches_list(&self.api_groups, api_group)
            && Self::matches_list(&self.resources, resource)
            && Self::matches_list(&self.verbs, verb)
            && (self.resource_names.is_empty()
                || name.is_empty()
                || Self::matches_list(&self.resource_names, name))
    }
}

/// A Role or ClusterRole.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Role {
    /// Role name.
    pub name: String,
    /// Namespace (empty for cluster scope).
    pub namespace: String,
    /// Scope of the role.
    pub scope: RoleScope,
    /// The permission rules.
    pub rules: Vec<PolicyRule>,
}

impl Role {
    /// A namespaced Role.
    pub fn namespaced(name: impl Into<String>, namespace: impl Into<String>) -> Self {
        Role {
            name: name.into(),
            namespace: namespace.into(),
            scope: RoleScope::Namespaced,
            rules: Vec::new(),
        }
    }

    /// A ClusterRole.
    pub fn cluster(name: impl Into<String>) -> Self {
        Role {
            name: name.into(),
            namespace: String::new(),
            scope: RoleScope::Cluster,
            rules: Vec::new(),
        }
    }

    /// Append a rule, builder style.
    pub fn with_rule(mut self, rule: PolicyRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Whether any rule allows the access.
    pub fn allows(&self, api_group: &str, resource: &str, verb: &str, name: &str) -> bool {
        self.rules
            .iter()
            .any(|r| r.matches(api_group, resource, verb, name))
    }

    /// Render the role as a Kubernetes manifest (`Role` / `ClusterRole`).
    pub fn to_manifest(&self) -> Value {
        let kind = match self.scope {
            RoleScope::Namespaced => "Role",
            RoleScope::Cluster => "ClusterRole",
        };
        let mut metadata = Mapping::new();
        metadata.insert("name", Value::from(self.name.clone()));
        if self.scope == RoleScope::Namespaced {
            metadata.insert("namespace", Value::from(self.namespace.clone()));
        }
        let rules = self
            .rules
            .iter()
            .map(|rule| {
                let mut m = Mapping::new();
                m.insert(
                    "apiGroups",
                    Value::Seq(
                        rule.api_groups
                            .iter()
                            .map(|s| Value::from(s.clone()))
                            .collect(),
                    ),
                );
                m.insert(
                    "resources",
                    Value::Seq(
                        rule.resources
                            .iter()
                            .map(|s| Value::from(s.clone()))
                            .collect(),
                    ),
                );
                m.insert(
                    "verbs",
                    Value::Seq(rule.verbs.iter().map(|s| Value::from(s.clone())).collect()),
                );
                if !rule.resource_names.is_empty() {
                    m.insert(
                        "resourceNames",
                        Value::Seq(
                            rule.resource_names
                                .iter()
                                .map(|s| Value::from(s.clone()))
                                .collect(),
                        ),
                    );
                }
                Value::Map(m)
            })
            .collect();
        let mut root = Mapping::new();
        root.insert("apiVersion", Value::from("rbac.authorization.k8s.io/v1"));
        root.insert("kind", Value::from(kind));
        root.insert("metadata", Value::Map(metadata));
        root.insert("rules", Value::Seq(rules));
        Value::Map(root)
    }
}

/// The kind of a binding subject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SubjectKind {
    /// A human user (client certificate / OIDC identity).
    User,
    /// A user group.
    Group,
    /// A Kubernetes ServiceAccount.
    ServiceAccount,
}

/// A subject granted a role by a binding.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Subject {
    /// Subject kind.
    pub kind: SubjectKind,
    /// Subject name.
    pub name: String,
    /// Namespace (service accounts only).
    pub namespace: String,
}

impl Subject {
    /// A user subject.
    pub fn user(name: impl Into<String>) -> Self {
        Subject {
            kind: SubjectKind::User,
            name: name.into(),
            namespace: String::new(),
        }
    }

    /// A service-account subject.
    pub fn service_account(name: impl Into<String>, namespace: impl Into<String>) -> Self {
        Subject {
            kind: SubjectKind::ServiceAccount,
            name: name.into(),
            namespace: namespace.into(),
        }
    }

    /// Whether this subject matches an authenticated user name. Service
    /// accounts use the `system:serviceaccount:<ns>:<name>` convention.
    pub fn matches_user(&self, user: &str) -> bool {
        match self.kind {
            SubjectKind::User | SubjectKind::Group => self.name == user,
            SubjectKind::ServiceAccount => {
                user == format!("system:serviceaccount:{}:{}", self.namespace, self.name)
            }
        }
    }
}

/// A RoleBinding or ClusterRoleBinding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoleBinding {
    /// Binding name.
    pub name: String,
    /// Namespace (empty for ClusterRoleBindings).
    pub namespace: String,
    /// Scope of the binding.
    pub scope: RoleScope,
    /// Name of the bound role.
    pub role_name: String,
    /// Scope of the bound role (a RoleBinding may reference a ClusterRole).
    pub role_scope: RoleScope,
    /// The subjects granted the role.
    pub subjects: Vec<Subject>,
}

impl RoleBinding {
    /// A namespaced RoleBinding to a namespaced Role.
    pub fn namespaced(
        name: impl Into<String>,
        namespace: impl Into<String>,
        role_name: impl Into<String>,
    ) -> Self {
        RoleBinding {
            name: name.into(),
            namespace: namespace.into(),
            scope: RoleScope::Namespaced,
            role_name: role_name.into(),
            role_scope: RoleScope::Namespaced,
            subjects: Vec::new(),
        }
    }

    /// A ClusterRoleBinding to a ClusterRole.
    pub fn cluster(name: impl Into<String>, role_name: impl Into<String>) -> Self {
        RoleBinding {
            name: name.into(),
            namespace: String::new(),
            scope: RoleScope::Cluster,
            role_name: role_name.into(),
            role_scope: RoleScope::Cluster,
            subjects: Vec::new(),
        }
    }

    /// Add a subject, builder style.
    pub fn with_subject(mut self, subject: Subject) -> Self {
        self.subjects.push(subject);
        self
    }

    /// Whether the binding grants anything to the given authenticated user.
    pub fn binds_user(&self, user: &str) -> bool {
        self.subjects.iter().any(|s| s.matches_user(user))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_match_with_wildcards() {
        let rule = PolicyRule::new(["apps"], ["deployments"], ["get", "create"]);
        assert!(rule.matches("apps", "deployments", "create", ""));
        assert!(!rule.matches("apps", "deployments", "delete", ""));
        assert!(!rule.matches("", "deployments", "create", ""));
        let wild = PolicyRule::new(["*"], ["*"], ["*"]);
        assert!(wild.matches("batch", "jobs", "patch", "any"));
    }

    #[test]
    fn resource_names_restrict_named_access_only() {
        let mut rule = PolicyRule::for_kind(ResourceKind::ConfigMap, [Verb::Get, Verb::Update]);
        rule.resource_names = vec!["app-config".to_owned()];
        assert!(rule.matches("", "configmaps", "get", "app-config"));
        assert!(!rule.matches("", "configmaps", "get", "other"));
        // collection access (empty name) is not filtered by resourceNames
        assert!(rule.matches("", "configmaps", "get", ""));
    }

    #[test]
    fn role_allows_when_any_rule_matches() {
        let role = Role::namespaced("app", "prod")
            .with_rule(PolicyRule::for_kind(
                ResourceKind::Deployment,
                [Verb::Create],
            ))
            .with_rule(PolicyRule::for_kind(
                ResourceKind::Service,
                [Verb::Create, Verb::Get],
            ));
        assert!(role.allows("apps", "deployments", "create", ""));
        assert!(role.allows("", "services", "get", ""));
        assert!(!role.allows("", "pods", "create", ""));
    }

    #[test]
    fn role_manifests_have_rbac_shape() {
        let role = Role::namespaced("app", "prod").with_rule(PolicyRule::for_kind(
            ResourceKind::Deployment,
            [Verb::Create],
        ));
        let manifest = role.to_manifest();
        assert_eq!(manifest.get("kind").unwrap().as_str(), Some("Role"));
        assert_eq!(
            manifest
                .get_path(&kf_yaml::Path::parse("rules[0].resources[0]").unwrap())
                .unwrap()
                .as_str(),
            Some("deployments")
        );
        let cluster = Role::cluster("admin").to_manifest();
        assert_eq!(cluster.get("kind").unwrap().as_str(), Some("ClusterRole"));
    }

    #[test]
    fn subjects_match_users_and_service_accounts() {
        assert!(Subject::user("alice").matches_user("alice"));
        assert!(!Subject::user("alice").matches_user("bob"));
        let sa = Subject::service_account("operator", "prod");
        assert!(sa.matches_user("system:serviceaccount:prod:operator"));
        assert!(!sa.matches_user("operator"));
    }

    #[test]
    fn bindings_report_bound_users() {
        let binding = RoleBinding::namespaced("bind", "prod", "app")
            .with_subject(Subject::user("alice"))
            .with_subject(Subject::service_account("operator", "prod"));
        assert!(binding.binds_user("alice"));
        assert!(binding.binds_user("system:serviceaccount:prod:operator"));
        assert!(!binding.binds_user("mallory"));
    }
}
