//! API-server audit logging.
//!
//! The paper's RBAC baseline is built by enabling audit logging, running an
//! attack-free deployment of each operator, and feeding the recorded events to
//! `audit2rbac`. Audit events carry the resource, verb, namespace and user —
//! and, at the `RequestResponse` level, the full request body — but RBAC
//! policies can only be expressed over the former, which is exactly the
//! granularity gap KubeFence fills.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use k8s_model::{ResourceKind, Verb};
use kf_yaml::Value;

/// One audit event recorded by the API server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditEvent {
    /// Monotonic sequence number within the log.
    pub sequence: u64,
    /// Authenticated user.
    pub user: String,
    /// Request verb.
    pub verb: Verb,
    /// Target resource kind.
    pub kind: ResourceKind,
    /// Target namespace (empty for cluster-scoped resources).
    pub namespace: String,
    /// Target object name (empty for collection operations).
    pub name: String,
    /// Whether the request was allowed.
    pub allowed: bool,
    /// The request body ("available" in the audit log, as the paper notes,
    /// but not expressible in RBAC policies). Shared with the request that
    /// produced it — recording an event never deep-clones the document.
    pub request_body: Option<Arc<Value>>,
}

/// An in-memory audit log.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AuditLog {
    events: Vec<AuditEvent>,
}

impl AuditLog {
    /// An empty log.
    pub fn new() -> Self {
        AuditLog::default()
    }

    /// Assemble a log from already-stamped events (used by the sharded API
    /// server to merge its per-shard buffers into one chronological log).
    /// Events keep their original sequence numbers.
    pub fn from_events(events: Vec<AuditEvent>) -> Self {
        AuditLog { events }
    }

    /// Record an event, assigning the next sequence number.
    // The argument list mirrors the audit event's fields one-to-one; a
    // params struct would just duplicate `AuditEvent`.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        user: &str,
        verb: Verb,
        kind: ResourceKind,
        namespace: &str,
        name: &str,
        allowed: bool,
        request_body: Option<Arc<Value>>,
    ) -> &AuditEvent {
        let event = AuditEvent {
            sequence: self.events.len() as u64,
            user: user.to_owned(),
            verb,
            kind,
            namespace: namespace.to_owned(),
            name: name.to_owned(),
            allowed,
            request_body,
        };
        self.events.push(event);
        self.events.last().expect("just pushed")
    }

    /// All events, in order.
    pub fn events(&self) -> &[AuditEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events recorded for a specific user.
    pub fn for_user(&self, user: &str) -> Vec<&AuditEvent> {
        self.events.iter().filter(|e| e.user == user).collect()
    }

    /// Events that were denied.
    pub fn denied(&self) -> Vec<&AuditEvent> {
        self.events.iter().filter(|e| !e.allowed).collect()
    }

    /// Clear the log (used between experiment phases).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_sequenced_and_queryable() {
        let mut log = AuditLog::new();
        log.record(
            "alice",
            Verb::Create,
            ResourceKind::Deployment,
            "prod",
            "web",
            true,
            None,
        );
        log.record("bob", Verb::Get, ResourceKind::Pod, "dev", "", true, None);
        log.record(
            "mallory",
            Verb::Create,
            ResourceKind::Pod,
            "prod",
            "x",
            false,
            None,
        );
        assert_eq!(log.len(), 3);
        assert_eq!(log.events()[0].sequence, 0);
        assert_eq!(log.events()[2].sequence, 2);
        assert_eq!(log.for_user("alice").len(), 1);
        assert_eq!(log.denied().len(), 1);
        assert_eq!(log.denied()[0].user, "mallory");
    }

    #[test]
    fn request_bodies_are_preserved_when_provided() {
        let mut log = AuditLog::new();
        let body = kf_yaml::parse("kind: Deployment\nspec:\n  replicas: 1\n").unwrap();
        log.record(
            "alice",
            Verb::Create,
            ResourceKind::Deployment,
            "prod",
            "web",
            true,
            Some(Arc::new(body.clone())),
        );
        assert_eq!(log.events()[0].request_body.as_deref(), Some(&body));
    }

    #[test]
    fn clear_resets_the_log() {
        let mut log = AuditLog::new();
        log.record("a", Verb::Get, ResourceKind::Service, "ns", "", true, None);
        log.clear();
        assert!(log.is_empty());
    }
}
