//! # k8s-rbac — the RBAC substrate and the `audit2rbac` baseline
//!
//! The paper compares KubeFence against native Kubernetes RBAC with
//! least-privilege, per-workload policies inferred by the `audit2rbac` tool.
//! This crate implements that entire baseline:
//!
//! * [`PolicyRule`], [`Role`], [`RoleBinding`], [`Subject`] — the RBAC object
//!   model (Roles and ClusterRoles share one type distinguished by scope);
//! * [`RbacPolicySet`] / [`AccessReview`] — the authorization evaluator the
//!   simulated API server consults on every request;
//! * [`AuditEvent`] / [`AuditLog`] — API-server audit logging;
//! * [`audit2rbac`] — inference of the minimal RBAC policy that covers a
//!   recorded attack-free workload, mirroring the paper's RBAC setup
//!   (Section VI-D).
//!
//! RBAC operates on *resources and verbs*; it cannot express constraints on
//! specification fields. That limitation — reproduced faithfully here — is
//! what KubeFence addresses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
mod audit2rbac;
mod evaluator;
mod role;

pub use audit::{AuditEvent, AuditLog};
pub use audit2rbac::{audit2rbac, Audit2RbacOptions};
pub use evaluator::{AccessDecision, AccessReview, RbacPolicySet};
pub use role::{PolicyRule, Role, RoleBinding, RoleScope, Subject, SubjectKind};
