//! The catalog of malicious Kubernetes specifications (Table II).
//!
//! The catalog comprises 15 malicious specifications: 8 used by CVE exploits
//! (E1–E8) and 7 security misconfigurations (M1–M7). Each entry names the
//! targeted API field(s) and carries the concrete *injection* — the field
//! mutations applied to a legitimate manifest to obtain the malicious one, as
//! in Figure 10 of the paper.

use serde::{Deserialize, Serialize};

use k8s_model::{FieldRef, K8sObject, ResourceKind};
use kf_yaml::{Path, Value};

/// Whether an entry models a CVE exploit or a misconfiguration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpecClass {
    /// A CVE exploit (rows E1–E8 of Table II).
    CveExploit {
        /// The exploited CVE identifier.
        cve_id: String,
    },
    /// A security misconfiguration (rows M1–M7).
    Misconfiguration,
}

/// Which resource the injection targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InjectionTarget {
    /// Any resource carrying a pod specification (Pod, Deployment,
    /// StatefulSet, Job, CronJob).
    PodSpec,
    /// A Service resource.
    Service,
}

/// One field mutation applied to a legitimate manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InjectionAction {
    /// Set a pod-spec-relative field (concrete path, e.g.
    /// `containers[0].securityContext.privileged`) to a value.
    SetPodField {
        /// Concrete path relative to the pod specification.
        path: String,
        /// The injected value.
        value: Value,
    },
    /// Set a resource-root-relative field to a value.
    SetResourceField {
        /// Concrete path relative to the manifest root.
        path: String,
        /// The injected value.
        value: Value,
    },
    /// Remove a pod-spec-relative field if present.
    RemovePodField {
        /// Concrete path relative to the pod specification.
        path: String,
    },
}

/// One entry of the catalog.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaliciousSpec {
    /// Catalog identifier (`E1`…`E8`, `M1`…`M7`).
    pub id: String,
    /// Human-readable name (the "Exploit/Misconfiguration" column).
    pub name: String,
    /// Exploit or misconfiguration.
    pub class: SpecClass,
    /// The targeted API fields, in the paper's pod-spec-relative notation.
    pub targeted_fields: Vec<String>,
    /// Which resources the injection applies to.
    pub target: InjectionTarget,
    /// The field mutations that produce the malicious manifest.
    pub actions: Vec<InjectionAction>,
}

impl MaliciousSpec {
    /// Whether this entry models a CVE exploit.
    pub fn is_cve(&self) -> bool {
        matches!(self.class, SpecClass::CveExploit { .. })
    }

    /// Whether the entry can be injected into an object of the given kind.
    pub fn applies_to(&self, kind: ResourceKind) -> bool {
        match self.target {
            InjectionTarget::PodSpec => FieldRef::pod_spec_prefix(kind).is_some(),
            InjectionTarget::Service => kind == ResourceKind::Service,
        }
    }

    /// Inject the malicious specification into a legitimate object, returning
    /// the malicious manifest (or `None` when the object kind is not a valid
    /// target).
    pub fn inject(&self, base: &K8sObject) -> Option<K8sObject> {
        if !self.applies_to(base.kind()) {
            return None;
        }
        let pod_prefix = FieldRef::pod_spec_prefix(base.kind());
        let mut object = base.clone();
        for action in &self.actions {
            match action {
                InjectionAction::SetPodField { path, value } => {
                    let prefix = pod_prefix?;
                    let full = Path::parse(&format!("{prefix}.{path}")).ok()?;
                    object.set_field(&full, value.clone()).ok()?;
                }
                InjectionAction::SetResourceField { path, value } => {
                    let full = Path::parse(path).ok()?;
                    object.set_field(&full, value.clone()).ok()?;
                }
                InjectionAction::RemovePodField { path } => {
                    if let Some(prefix) = pod_prefix {
                        if let Ok(full) = Path::parse(&format!("{prefix}.{path}")) {
                            object.body_mut().remove_path(&full);
                        }
                    }
                }
            }
        }
        object.sync_metadata();
        Some(object)
    }
}

fn pod_set(path: &str, value: impl Into<Value>) -> InjectionAction {
    InjectionAction::SetPodField {
        path: path.to_owned(),
        value: value.into(),
    }
}

fn exploit(
    id: &str,
    name: &str,
    cve: &str,
    fields: &[&str],
    actions: Vec<InjectionAction>,
) -> MaliciousSpec {
    MaliciousSpec {
        id: id.to_owned(),
        name: name.to_owned(),
        class: SpecClass::CveExploit {
            cve_id: cve.to_owned(),
        },
        targeted_fields: fields.iter().map(|s| (*s).to_owned()).collect(),
        target: InjectionTarget::PodSpec,
        actions,
    }
}

fn misconfig(
    id: &str,
    name: &str,
    fields: &[&str],
    actions: Vec<InjectionAction>,
) -> MaliciousSpec {
    MaliciousSpec {
        id: id.to_owned(),
        name: name.to_owned(),
        class: SpecClass::Misconfiguration,
        targeted_fields: fields.iter().map(|s| (*s).to_owned()).collect(),
        target: InjectionTarget::PodSpec,
        actions,
    }
}

/// Build the full catalog of 15 malicious specifications (Table II).
pub fn catalog() -> Vec<MaliciousSpec> {
    // The deeply nested payload of the CVE-2019-11253 ("billion laughs")
    // exploit: a resource-limits block stuffed with nested unknown keys.
    let mut nested = Value::from("overflow");
    for _ in 0..16 {
        let mut map = kf_yaml::Mapping::new();
        map.insert("a", nested);
        nested = Value::Map(map);
    }

    vec![
        exploit(
            "E1",
            "Activation of hostNetwork",
            "CVE-2020-15257",
            &["hostNetwork"],
            vec![pod_set("hostNetwork", true)],
        ),
        MaliciousSpec {
            id: "E2".to_owned(),
            name: "Abusing LoadBalancer or ExternalIPs".to_owned(),
            class: SpecClass::CveExploit {
                cve_id: "CVE-2020-8554".to_owned(),
            },
            targeted_fields: vec!["externalIPs".to_owned()],
            target: InjectionTarget::Service,
            actions: vec![InjectionAction::SetResourceField {
                path: "spec.externalIPs".to_owned(),
                value: Value::Seq(vec![Value::from("203.0.113.66")]),
            }],
        },
        exploit(
            "E3",
            "Command injection via volume and volumeMounts",
            "CVE-2023-3676",
            &[
                "containers.volumeMounts.subPath",
                "containers.volumes.subPath",
            ],
            vec![
                pod_set(
                    "containers[0].volumeMounts[0].subPath",
                    "..\\..\\..\\Program Files\\&calc.exe",
                ),
                pod_set("containers[0].volumeMounts[0].name", "injected"),
                pod_set("containers[0].volumeMounts[0].mountPath", "/inject"),
                pod_set("volumes[0].name", "injected"),
                pod_set("volumes[0].hostPath.path", "/var/lib"),
            ],
        ),
        exploit(
            "E4",
            "Mount subPath on a file or emptyDir",
            "CVE-2017-1002101",
            &["containers.volumeMounts.subPath"],
            vec![
                pod_set("initContainers[0].name", "symlink-builder"),
                pod_set("initContainers[0].image", "busybox"),
                pod_set(
                    "initContainers[0].command",
                    Value::Seq(vec![
                        Value::from("ln"),
                        Value::from("-s"),
                        Value::from("/"),
                        Value::from("/mnt/data/symlink-door"),
                    ]),
                ),
                pod_set("containers[0].volumeMounts[0].name", "attack-vol"),
                pod_set("containers[0].volumeMounts[0].mountPath", "/test"),
                pod_set("containers[0].volumeMounts[0].subPath", "symlink-door"),
                pod_set("volumes[0].name", "attack-vol"),
                pod_set("volumes[0].emptyDir", Value::empty_map()),
            ],
        ),
        exploit(
            "E5",
            "Absent resource limit",
            "CVE-2019-11253",
            &["containers.resources.limits"],
            vec![
                InjectionAction::RemovePodField {
                    path: "containers[0].resources.limits".to_owned(),
                },
                pod_set("containers[0].resources.limits", nested),
            ],
        ),
        exploit(
            "E6",
            "Symlink exchange allows host filesystem access",
            "CVE-2021-25741",
            &["container.command"],
            vec![pod_set(
                "containers[0].command",
                Value::Seq(vec![
                    Value::from("sh"),
                    Value::from("-c"),
                    Value::from("ln -sf / /mnt/exchange && sleep 3600"),
                ]),
            )],
        ),
        exploit(
            "E7",
            "Bypass of seccomp profile",
            "CVE-2023-2431",
            &["containers.securityContext.seccompProfile.localhostProfile"],
            vec![
                pod_set(
                    "containers[0].securityContext.seccompProfile.type",
                    "Localhost",
                ),
                pod_set(
                    "containers[0].securityContext.seccompProfile.localhostProfile",
                    "",
                ),
            ],
        ),
        exploit(
            "E8",
            "Privileged containers",
            "CVE-2021-21334",
            &["containers.securityContext.privileged"],
            vec![pod_set("containers[0].securityContext.privileged", true)],
        ),
        misconfig(
            "M1",
            "Activation of hostIPC",
            &["hostIPC"],
            vec![pod_set("hostIPC", true)],
        ),
        misconfig(
            "M2",
            "Activation of hostPID",
            &["hostPID"],
            vec![pod_set("hostPID", true)],
        ),
        misconfig(
            "M3",
            "Disable read-only root filesystem",
            &["containers.securityContext.readOnlyRootFilesystem"],
            vec![pod_set(
                "containers[0].securityContext.readOnlyRootFilesystem",
                false,
            )],
        ),
        misconfig(
            "M4",
            "Running containers as root",
            &[
                "containers.securityContext.runAsNonRoot",
                "containers.securityContext.runAsRootAllowed",
            ],
            vec![
                pod_set("containers[0].securityContext.runAsNonRoot", false),
                pod_set("containers[0].securityContext.runAsUser", 0),
            ],
        ),
        misconfig(
            "M5",
            "Dangerous capabilities for containers",
            &["containers.securityContext.capabilities.add"],
            vec![pod_set(
                "containers[0].securityContext.capabilities.add",
                Value::Seq(vec![Value::from("SYS_ADMIN"), Value::from("NET_RAW")]),
            )],
        ),
        misconfig(
            "M6",
            "Escalated privileges for child container processes",
            &["containers.securityContext.allowPrivilegeEscalation"],
            vec![pod_set(
                "containers[0].securityContext.allowPrivilegeEscalation",
                true,
            )],
        ),
        misconfig(
            "M7",
            "Custom SELinux user or role",
            &[
                "containers.securityContext.seLinuxOptions.user",
                "containers.securityContext.seLinuxOptions.role",
            ],
            vec![
                pod_set(
                    "containers[0].securityContext.seLinuxOptions.user",
                    "system_u",
                ),
                pod_set(
                    "containers[0].securityContext.seLinuxOptions.role",
                    "sysadm_r",
                ),
            ],
        ),
    ]
}

/// Render Table II as fixed-width text.
pub fn to_table() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<4} {:<55} {:<18}\n",
        "ID", "Exploit/Misconfiguration", "Reference"
    ));
    for spec in catalog() {
        let reference = match &spec.class {
            SpecClass::CveExploit { cve_id } => cve_id.clone(),
            SpecClass::Misconfiguration => "NSA/CISA hardening guide".to_owned(),
        };
        out.push_str(&format!(
            "{:<4} {:<55} {:<18}\n",
            spec.id, spec.name, reference
        ));
        for field in &spec.targeted_fields {
            out.push_str(&format!("     targeted field: {field}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEPLOYMENT: &str = r#"apiVersion: apps/v1
kind: Deployment
metadata:
  name: web
spec:
  replicas: 1
  template:
    spec:
      containers:
        - name: app
          image: docker.io/bitnami/nginx:1.25
          resources:
            limits:
              cpu: 100m
"#;

    const SERVICE: &str = r#"apiVersion: v1
kind: Service
metadata:
  name: web
spec:
  type: ClusterIP
  ports:
    - port: 80
"#;

    fn by_id(id: &str) -> MaliciousSpec {
        catalog().into_iter().find(|s| s.id == id).unwrap()
    }

    #[test]
    fn catalog_has_eight_exploits_and_seven_misconfigurations() {
        let catalog = catalog();
        assert_eq!(catalog.len(), 15);
        assert_eq!(catalog.iter().filter(|s| s.is_cve()).count(), 8);
        assert_eq!(catalog.iter().filter(|s| !s.is_cve()).count(), 7);
        // IDs are unique.
        let mut ids: Vec<_> = catalog.iter().map(|s| s.id.clone()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 15);
    }

    #[test]
    fn pod_spec_injections_apply_to_workload_controllers_only() {
        let e1 = by_id("E1");
        assert!(e1.applies_to(ResourceKind::Deployment));
        assert!(e1.applies_to(ResourceKind::CronJob));
        assert!(!e1.applies_to(ResourceKind::Service));
        let e2 = by_id("E2");
        assert!(e2.applies_to(ResourceKind::Service));
        assert!(!e2.applies_to(ResourceKind::Deployment));
    }

    #[test]
    fn host_network_injection_matches_the_cve_trigger() {
        let base = K8sObject::from_yaml(DEPLOYMENT).unwrap();
        let malicious = by_id("E1").inject(&base).unwrap();
        let db = k8s_model::cve::CveDatabase::new();
        assert!(db
            .by_id("CVE-2020-15257")
            .unwrap()
            .is_triggered_by(&malicious));
        assert!(!db.by_id("CVE-2020-15257").unwrap().is_triggered_by(&base));
    }

    #[test]
    fn every_exploit_injection_triggers_its_cve() {
        let db = k8s_model::cve::CveDatabase::new();
        let deployment = K8sObject::from_yaml(DEPLOYMENT).unwrap();
        let service = K8sObject::from_yaml(SERVICE).unwrap();
        for spec in catalog().into_iter().filter(|s| s.is_cve()) {
            let SpecClass::CveExploit { cve_id } = &spec.class else {
                unreachable!()
            };
            let base = if spec.applies_to(ResourceKind::Deployment) {
                &deployment
            } else {
                &service
            };
            let malicious = spec.inject(base).unwrap();
            assert!(
                db.by_id(cve_id).unwrap().is_triggered_by(&malicious),
                "{} does not trigger {cve_id}",
                spec.id
            );
        }
    }

    #[test]
    fn misconfiguration_injections_change_the_targeted_fields() {
        let base = K8sObject::from_yaml(DEPLOYMENT).unwrap();
        let m4 = by_id("M4").inject(&base).unwrap();
        assert_eq!(
            m4.field(
                &Path::parse("spec.template.spec.containers[0].securityContext.runAsNonRoot")
                    .unwrap()
            )
            .and_then(Value::as_bool),
            Some(false)
        );
        let m5 = by_id("M5").inject(&base).unwrap();
        let caps = m5
            .field(
                &Path::parse("spec.template.spec.containers[0].securityContext.capabilities.add")
                    .unwrap(),
            )
            .unwrap();
        assert_eq!(caps.as_seq().unwrap().len(), 2);
    }

    #[test]
    fn injection_into_an_incompatible_kind_returns_none() {
        let service = K8sObject::from_yaml(SERVICE).unwrap();
        assert!(by_id("E1").inject(&service).is_none());
        let deployment = K8sObject::from_yaml(DEPLOYMENT).unwrap();
        assert!(by_id("E2").inject(&deployment).is_none());
    }

    #[test]
    fn table_text_lists_every_entry() {
        let table = to_table();
        for id in ["E1", "E8", "M1", "M7"] {
            assert!(table.contains(id));
        }
        assert!(table.contains("CVE-2017-1002101"));
    }
}
