//! # kf-attacks — the malicious-specification catalog and attack executor
//!
//! Implements the paper's catalog of 15 malicious Kubernetes specifications
//! (Table II): 8 CVE exploits and 7 misconfigurations, each expressed as an
//! *injection* into a legitimate operator manifest, plus the executor that
//! replays the resulting malicious requests against an enforcement mechanism
//! (RBAC-protected API server or KubeFence proxy) and scores the outcome
//! (Table III).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
mod executor;

pub use catalog::{catalog, InjectionAction, InjectionTarget, MaliciousSpec, SpecClass};
pub use executor::{AttackExecutor, AttackOutcome, AttackSummary};
