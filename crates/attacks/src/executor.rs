//! Replaying the catalog against an enforcement mechanism (Table III).

use serde::{Deserialize, Serialize};

use k8s_apiserver::{ApiRequest, RequestHandler};
use k8s_model::{K8sObject, ResourceKind};

use crate::catalog::{catalog, MaliciousSpec};

/// The outcome of one attack attempt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackOutcome {
    /// Catalog entry id (`E1`…`M7`).
    pub spec_id: String,
    /// Whether the entry models a CVE exploit.
    pub is_cve: bool,
    /// Kind of the resource the attack was injected into.
    pub kind: ResourceKind,
    /// Whether the enforcement mechanism blocked the request.
    pub mitigated: bool,
    /// The response message (the denial reason when mitigated).
    pub message: String,
}

/// Aggregated Table III row: mitigated CVEs and misconfigurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AttackSummary {
    /// Number of CVE exploits attempted.
    pub cve_attempted: usize,
    /// Number of CVE exploits blocked.
    pub cve_mitigated: usize,
    /// Number of misconfigurations attempted.
    pub misconfig_attempted: usize,
    /// Number of misconfigurations blocked.
    pub misconfig_mitigated: usize,
}

impl AttackSummary {
    /// Whether every attempted attack was blocked.
    pub fn all_mitigated(&self) -> bool {
        self.cve_mitigated == self.cve_attempted
            && self.misconfig_mitigated == self.misconfig_attempted
    }

    /// Whether no attack was blocked at all.
    pub fn none_mitigated(&self) -> bool {
        self.cve_mitigated == 0 && self.misconfig_mitigated == 0
    }
}

/// Replays the malicious-specification catalog against an enforcement
/// mechanism on behalf of a (compromised or malicious) authenticated user.
#[derive(Debug, Clone)]
pub struct AttackExecutor {
    user: String,
    namespace: String,
    legitimate_objects: Vec<K8sObject>,
}

impl AttackExecutor {
    /// An executor that injects the catalog into the given legitimate
    /// manifests and submits the results as `user` in `namespace` — the
    /// paper's insider-threat scenario, where the attacker holds the
    /// operator's credentials.
    pub fn new(user: &str, namespace: &str, legitimate_objects: Vec<K8sObject>) -> Self {
        AttackExecutor {
            user: user.to_owned(),
            namespace: namespace.to_owned(),
            legitimate_objects,
        }
    }

    /// Pick the legitimate object each catalog entry is injected into: the
    /// first pod-spec-carrying object for pod-scoped entries, the first
    /// Service for E2.
    fn base_for(&self, spec: &MaliciousSpec) -> Option<&K8sObject> {
        self.legitimate_objects
            .iter()
            .find(|o| spec.applies_to(o.kind()))
    }

    /// The malicious manifests for the full catalog (one per applicable
    /// entry), as `(spec, malicious object)` pairs.
    pub fn malicious_objects(&self) -> Vec<(MaliciousSpec, K8sObject)> {
        catalog()
            .into_iter()
            .filter_map(|spec| {
                let base = self.base_for(&spec)?;
                let malicious = spec.inject(base)?;
                Some((spec, malicious))
            })
            .collect()
    }

    /// Submit every malicious manifest through the handler and record whether
    /// it was mitigated (denied) or not.
    pub fn execute<H: RequestHandler>(&self, handler: &H) -> Vec<AttackOutcome> {
        self.malicious_objects()
            .into_iter()
            .map(|(spec, object)| {
                let mut request = ApiRequest::create(&self.user, &object);
                if object.kind().is_namespaced() {
                    request.namespace = self.namespace.clone();
                }
                let response = handler.handle(&request);
                AttackOutcome {
                    spec_id: spec.id.clone(),
                    is_cve: spec.is_cve(),
                    kind: object.kind(),
                    mitigated: response.is_denied(),
                    message: response.message,
                }
            })
            .collect()
    }

    /// Summarize outcomes into a Table III row.
    pub fn summarize(outcomes: &[AttackOutcome]) -> AttackSummary {
        let mut summary = AttackSummary::default();
        for outcome in outcomes {
            if outcome.is_cve {
                summary.cve_attempted += 1;
                if outcome.mitigated {
                    summary.cve_mitigated += 1;
                }
            } else {
                summary.misconfig_attempted += 1;
                if outcome.mitigated {
                    summary.misconfig_mitigated += 1;
                }
            }
        }
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use k8s_apiserver::ApiServer;

    fn legitimate_objects() -> Vec<K8sObject> {
        vec![
            K8sObject::from_yaml(
                r#"apiVersion: apps/v1
kind: Deployment
metadata:
  name: web
spec:
  replicas: 1
  template:
    spec:
      containers:
        - name: app
          image: docker.io/bitnami/nginx:1.25
          resources:
            limits:
              cpu: 100m
"#,
            )
            .unwrap(),
            K8sObject::from_yaml(
                "apiVersion: v1\nkind: Service\nmetadata:\n  name: web\nspec:\n  type: ClusterIP\n  ports:\n    - port: 80\n",
            )
            .unwrap(),
        ]
    }

    #[test]
    fn all_fifteen_entries_produce_malicious_manifests() {
        let executor = AttackExecutor::new("mallory", "prod", legitimate_objects());
        assert_eq!(executor.malicious_objects().len(), 15);
    }

    #[test]
    fn unprotected_server_mitigates_nothing_and_records_exploits() {
        let executor = AttackExecutor::new("mallory", "prod", legitimate_objects());
        let server = ApiServer::new().with_admin("mallory");
        let outcomes = executor.execute(&server);
        let summary = AttackExecutor::summarize(&outcomes);
        assert_eq!(summary.cve_attempted, 8);
        assert_eq!(summary.misconfig_attempted, 7);
        assert!(summary.none_mitigated());
        // The accepted exploits exercised vulnerable code.
        assert!(!server.exploits().is_empty());
    }

    #[test]
    fn summaries_count_cves_and_misconfigurations_separately() {
        let outcomes = vec![
            AttackOutcome {
                spec_id: "E1".into(),
                is_cve: true,
                kind: ResourceKind::Deployment,
                mitigated: true,
                message: String::new(),
            },
            AttackOutcome {
                spec_id: "M1".into(),
                is_cve: false,
                kind: ResourceKind::Deployment,
                mitigated: false,
                message: String::new(),
            },
        ];
        let summary = AttackExecutor::summarize(&outcomes);
        assert_eq!(summary.cve_mitigated, 1);
        assert_eq!(summary.misconfig_mitigated, 0);
        assert!(!summary.all_mitigated());
        assert!(!summary.none_mitigated());
    }
}
