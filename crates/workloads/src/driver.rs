//! The deployment driver: what `kubectl apply` does for an operator release.

use k8s_apiserver::{ApiRequest, ApiResponse, RequestHandler};
use k8s_model::K8sObject;

use crate::operator::Operator;

/// The outcome of applying one manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentOutcome {
    /// The object that was applied.
    pub object_name: String,
    /// Kind of the object.
    pub kind: k8s_model::ResourceKind,
    /// The response from the API server (or proxy).
    pub response: ApiResponse,
}

/// Drives an operator deployment against any request handler (the bare API
/// server, an RBAC-enforcing API server, or the KubeFence proxy).
#[derive(Debug, Clone)]
pub struct DeploymentDriver {
    operator: Operator,
    objects: Vec<K8sObject>,
}

impl DeploymentDriver {
    /// A driver for an operator's default (attack-free) deployment.
    pub fn new(operator: Operator) -> Self {
        DeploymentDriver {
            operator,
            objects: operator.workload().default_objects(),
        }
    }

    /// The operator being deployed.
    pub fn operator(&self) -> Operator {
        self.operator
    }

    /// The objects applied by the deployment, in apply order.
    pub fn objects(&self) -> &[K8sObject] {
        &self.objects
    }

    /// The API requests issued by the deployment (`kubectl apply` issues one
    /// create per rendered manifest, as the operator's user, against the
    /// operator's namespace).
    pub fn requests(&self) -> Vec<ApiRequest> {
        let user = self.operator.user();
        self.objects
            .iter()
            .map(|object| {
                let mut request = ApiRequest::create(&user, object);
                if object.kind().is_namespaced() {
                    request.namespace = self.operator.namespace().to_owned();
                }
                request
            })
            .collect()
    }

    /// Apply the full deployment through a handler, returning one outcome per
    /// object.
    pub fn deploy<H: RequestHandler>(&self, handler: &H) -> Vec<DeploymentOutcome> {
        self.requests()
            .iter()
            .zip(self.objects.iter())
            .map(|(request, object)| DeploymentOutcome {
                object_name: object.name().to_owned(),
                kind: object.kind(),
                response: handler.handle(request),
            })
            .collect()
    }

    /// Whether every request of a deployment run succeeded.
    pub fn all_succeeded(outcomes: &[DeploymentOutcome]) -> bool {
        outcomes.iter().all(|o| o.response.is_success())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use k8s_apiserver::ApiServer;

    #[test]
    fn deploying_against_a_permissive_server_succeeds() {
        for operator in Operator::ALL {
            let driver = DeploymentDriver::new(operator);
            let server = ApiServer::new().with_admin(&operator.user());
            let outcomes = driver.deploy(&server);
            assert!(
                DeploymentDriver::all_succeeded(&outcomes),
                "{operator}: {:?}",
                outcomes
                    .iter()
                    .filter(|o| !o.response.is_success())
                    .map(|o| (&o.object_name, &o.response.message))
                    .collect::<Vec<_>>()
            );
            assert_eq!(server.store().len(), driver.objects().len());
        }
    }

    #[test]
    fn requests_carry_the_operator_identity_and_namespace() {
        let driver = DeploymentDriver::new(Operator::Postgresql);
        for request in driver.requests() {
            assert_eq!(request.user, "operator:postgresql");
            if request.kind.is_namespaced() {
                assert_eq!(request.namespace, "data");
            }
        }
    }

    #[test]
    fn attack_free_deployments_trigger_no_cves() {
        for operator in Operator::ALL {
            let server = ApiServer::new().with_admin(&operator.user());
            DeploymentDriver::new(operator).deploy(&server);
            assert!(
                server.exploits().is_empty(),
                "{operator} legitimate deployment must not exercise vulnerable code: {:?}",
                server.exploits()
            );
        }
    }
}
