//! Multi-threaded traffic replay against any [`RequestHandler`].
//!
//! The paper's overhead experiment (Table IV) measures single-client
//! deployment round trips. The [`ThroughputDriver`] extends that to the
//! ROADMAP's heavy-traffic regime: a fixed, reproducible pool of mixed
//! legitimate and attack requests is replayed concurrently from M threads
//! against a handler (the bare API server, the KubeFence proxy, or the
//! mutex-baseline proxy), recording sustained requests/sec and the latency
//! distribution of `handle` calls. The concurrency benchmark
//! (`crates/bench/benches/concurrency_throughput.rs`) uses this to quantify
//! the compiled admission plane against the tree-walking baseline.

use std::time::{Duration, Instant};

use k8s_apiserver::{ApiRequest, RequestHandler};
use kf_attacks::AttackExecutor;

use crate::operator::Operator;
use crate::DeploymentDriver;

/// A reproducible pool of mixed legitimate/attack traffic for one or more
/// operators.
#[derive(Debug, Clone)]
pub struct ThroughputDriver {
    requests: Vec<ApiRequest>,
    attack_count: usize,
}

/// The create : get : list : watch shape of a mixed read/write pool
/// ([`ThroughputDriver::for_operators_mixed`]). The ratios are request
/// counts per mix cycle, so `{1, 8, 1, 0}` replays one create and one list
/// for every eight gets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixRatio {
    /// Create (apply) requests per cycle.
    pub create: usize,
    /// Get requests per cycle.
    pub get: usize,
    /// List requests per cycle.
    pub list: usize,
    /// Watch requests per cycle (in pools: initial watches; in the informer
    /// driver: reconcile ticks).
    pub watch: usize,
}

impl MixRatio {
    /// The steady-state traffic of a reconciling operator: mostly reads of
    /// the objects it manages, an occasional re-apply, a periodic list —
    /// 1 create : 8 gets : 1 list.
    pub const OPERATOR_RECONCILE: MixRatio = MixRatio {
        create: 1,
        get: 8,
        list: 1,
        watch: 0,
    };

    /// Deployment-churn traffic: mostly writes with a sanity read and list —
    /// 8 creates : 1 get : 1 list.
    pub const WRITE_HEAVY: MixRatio = MixRatio {
        create: 8,
        get: 1,
        list: 1,
        watch: 0,
    };

    /// Watch-dominated traffic, the shape of a real cluster where operators
    /// and controllers are event-driven: a little write churn to generate
    /// deltas, a sanity get and list, and twelve watch polls — 2 creates :
    /// 1 get : 1 list : 12 watches. This is the mix the `watch_throughput`
    /// benchmark reconciles under.
    pub const WATCH_HEAVY: MixRatio = MixRatio {
        create: 2,
        get: 1,
        list: 1,
        watch: 12,
    };

    /// Requests per cycle.
    pub fn cycle_len(&self) -> usize {
        self.create + self.get + self.list + self.watch
    }

    /// A short label for bench tables (`c1:g8:l1`, `c2:g1:l1:w12`); the
    /// watch component appears only when present.
    pub fn label(&self) -> String {
        if self.watch == 0 {
            format!("c{}:g{}:l{}", self.create, self.get, self.list)
        } else {
            format!(
                "c{}:g{}:l{}:w{}",
                self.create, self.get, self.list, self.watch
            )
        }
    }
}

/// The per-class request pools over the operators' objects — the one
/// builder behind every mixed replay, shared by
/// [`ThroughputDriver::for_operators_mixed`] and the informer driver so
/// both replay the *identical* traffic shape. Each chart object can be
/// replicated `scale` times under suffixed names (`web`, `web-1`, …),
/// modeling populated collections.
#[derive(Debug, Clone)]
pub(crate) struct OperatorPools {
    /// One create (apply) request per distinct (scaled) object.
    pub(crate) creates: Vec<ApiRequest>,
    /// One get request per distinct (scaled) object.
    pub(crate) gets: Vec<ApiRequest>,
    /// The distinct watched/listed collections: (user, kind, namespace).
    pub(crate) targets: Vec<(String, k8s_model::ResourceKind, String)>,
}

impl OperatorPools {
    /// Gather every operator's objects (replicated `scale` times) with
    /// their request coordinates.
    pub(crate) fn gather(operators: &[Operator], scale: usize) -> Self {
        assert!(scale > 0, "collections need at least one replica");
        let name_path = kf_yaml::Path::parse("metadata.name").expect("static path");
        let mut creates = Vec::new();
        let mut gets = Vec::new();
        let mut targets = Vec::new();
        for operator in operators {
            let driver = DeploymentDriver::new(*operator);
            let user = operator.user();
            for object in driver.objects() {
                let namespace = if object.kind().is_namespaced() {
                    operator.namespace()
                } else {
                    ""
                };
                for replica in 0..scale {
                    let variant = if replica == 0 {
                        object.clone()
                    } else {
                        // Copy-on-write rename: the clone splits off its own
                        // tree, the original keeps its name.
                        let mut copy = object.clone();
                        copy.set_field(
                            &name_path,
                            kf_yaml::Value::from(format!("{}-{replica}", object.name()).as_str()),
                        )
                        .expect("chart objects carry a metadata mapping");
                        copy
                    };
                    let mut request = ApiRequest::create(&user, &variant);
                    if variant.kind().is_namespaced() {
                        request.namespace = namespace.to_owned();
                    }
                    gets.push(ApiRequest::get(
                        &user,
                        variant.kind(),
                        namespace,
                        variant.name(),
                    ));
                    creates.push(request);
                }
                let target = (user.clone(), object.kind(), namespace.to_owned());
                if !targets.contains(&target) {
                    targets.push(target);
                }
            }
        }
        assert!(
            !gets.is_empty(),
            "mixed pools need at least one operator object"
        );
        OperatorPools {
            creates,
            gets,
            targets,
        }
    }

    /// Interleave the pools into one deterministic request stream: one mix
    /// cycle per distinct object, separate cursors cycling each request
    /// class over its targets, so every run replays identical traffic.
    pub(crate) fn interleave(&self, mix: MixRatio) -> Vec<ApiRequest> {
        let cycles = self.gets.len();
        let mut requests = Vec::with_capacity(cycles * mix.cycle_len());
        let (mut c, mut g, mut l, mut w) = (0usize, 0usize, 0usize, 0usize);
        for _ in 0..cycles {
            for _ in 0..mix.create {
                requests.push(self.creates[c % self.creates.len()].clone());
                c += 1;
            }
            for _ in 0..mix.get {
                requests.push(self.gets[g % self.gets.len()].clone());
                g += 1;
            }
            for _ in 0..mix.list {
                let (user, kind, namespace) = &self.targets[l % self.targets.len()];
                requests.push(ApiRequest::list(user, *kind, namespace));
                l += 1;
            }
            for _ in 0..mix.watch {
                // Initial watches (no cursor): the pool is static, so cursor
                // management lives in the informer driver; pool replay still
                // pushes every watch through RBAC, audit and the journal.
                let (user, kind, namespace) = &self.targets[w % self.targets.len()];
                requests.push(ApiRequest::watch(user, *kind, namespace, None));
                w += 1;
            }
        }
        requests
    }
}

/// Latency/throughput measurements of one replay run.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// Number of replay threads.
    pub threads: usize,
    /// Total requests issued across all threads.
    pub total_requests: u64,
    /// Requests answered with a 2xx status.
    pub admitted: u64,
    /// Requests answered with 403.
    pub denied: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Median per-request `handle` latency.
    pub p50: Duration,
    /// 99th-percentile per-request `handle` latency.
    pub p99: Duration,
    /// Worst observed per-request `handle` latency.
    pub max: Duration,
}

impl ThroughputReport {
    /// Sustained requests per second over the run.
    pub fn requests_per_sec(&self) -> f64 {
        self.total_requests as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

impl ThroughputDriver {
    /// A pool for one operator: the operator's legitimate deployment
    /// requests interleaved with the attack catalog's malicious requests
    /// (roughly one attack per three legitimate requests, the interleaving
    /// fixed so every run replays identical traffic).
    pub fn for_operator(operator: Operator) -> Self {
        Self::for_operators(&[operator])
    }

    /// A pool mixing several operators' traffic.
    pub fn for_operators(operators: &[Operator]) -> Self {
        let mut legitimate = Vec::new();
        let mut attacks = Vec::new();
        for operator in operators {
            let driver = DeploymentDriver::new(*operator);
            legitimate.extend(driver.requests());
            let executor = AttackExecutor::new(
                &operator.user(),
                operator.namespace(),
                driver.objects().to_vec(),
            );
            attacks.extend(
                executor
                    .malicious_objects()
                    .into_iter()
                    .map(|(_spec, object)| {
                        let mut request = ApiRequest::create(&operator.user(), &object);
                        if object.kind().is_namespaced() {
                            request.namespace = operator.namespace().to_owned();
                        }
                        request
                    }),
            );
        }
        // Deterministic interleave at a fixed 3:1 legitimate:attack ratio —
        // the legitimate list cycles (replayed traffic re-applies the same
        // manifests, which the server treats as `kubectl apply`) so the pool
        // is always 25% attacks regardless of list lengths.
        let attack_count = attacks.len();
        let mut requests = Vec::with_capacity(4 * attacks.len().max(1));
        let mut legit_cycle = 0usize;
        for attack in attacks {
            for _ in 0..3 {
                requests.push(legitimate[legit_cycle % legitimate.len()].clone());
                legit_cycle += 1;
            }
            requests.push(attack);
        }
        if requests.is_empty() {
            requests = legitimate;
        }
        ThroughputDriver {
            requests,
            attack_count,
        }
    }

    /// A mixed read/write pool over the operators' **legitimate** objects:
    /// per cycle, `mix.create` applies of the next manifests, `mix.get`
    /// reads of the next objects and `mix.list` collection reads of the
    /// next kinds, all interleaved deterministically (separate cursors
    /// cycle each request class over its targets, so every run replays
    /// identical traffic). This is the persistence-plane scenario behind
    /// the `server_throughput` benchmark: creates exercise
    /// admission-to-store sharing, gets and lists exercise the zero-copy
    /// read path. Replay against a store seeded by
    /// [`ThroughputDriver::seed`] so reads hit from the first request.
    pub fn for_operators_mixed(operators: &[Operator], mix: MixRatio) -> Self {
        assert!(mix.cycle_len() > 0, "the mix must request something");
        let pools = OperatorPools::gather(operators, 1);
        ThroughputDriver {
            requests: pools.interleave(mix),
            attack_count: 0,
        }
    }

    /// Apply every distinct object of the pool once, so a subsequent replay
    /// of a read-heavy mix hits existing objects instead of 404s. Uses the
    /// pool's own create requests (admission, audit and exploit accounting
    /// all run — this is a warm server, not a backdoor into the store).
    pub fn seed<H: RequestHandler>(&self, handler: &H) {
        let mut seen: Vec<&ApiRequest> = Vec::new();
        for request in &self.requests {
            if request.body.is_some()
                && !seen.iter().any(|r| {
                    (&r.kind, &r.namespace, &r.name)
                        == (&request.kind, &request.namespace, &request.name)
                })
            {
                handler.handle(request);
                seen.push(request);
            }
        }
    }

    /// Bulk-load every distinct object of the pool straight into a store
    /// backend through [`k8s_apiserver::StoreBackend::apply_batch`] — the
    /// batched-publication fast path benchmarks use to populate large
    /// stores without paying the full request pipeline per object. The
    /// stored state is identical to [`ThroughputDriver::seed`] against a
    /// permissive server: bodies go through the backend's own `ingest`
    /// (so the copy discipline is the store's) and namespace defaulting
    /// replicates admission (the endpoint namespace, else `default`, for
    /// namespaced objects without one). Unlike `seed`, nothing is
    /// authorized or audited. Returns the number of objects loaded.
    pub fn seed_store<S: k8s_apiserver::StoreBackend + ?Sized>(&self, store: &S) -> usize {
        let namespace_path = kf_yaml::Path::parse("metadata.namespace").expect("static path");
        let mut seen: Vec<&ApiRequest> = Vec::new();
        let mut batch = Vec::new();
        for request in &self.requests {
            if request.body.is_none()
                || seen.iter().any(|r| {
                    (&r.kind, &r.namespace, &r.name)
                        == (&request.kind, &request.namespace, &request.name)
                })
            {
                continue;
            }
            seen.push(request);
            let body = request
                .body
                .materialize()
                .expect("pool bodies parse")
                .expect("checked is_some above");
            let mut object = store.ingest(&body).expect("pool bodies are valid objects");
            if object.kind().is_namespaced() && object.namespace().is_empty() {
                let namespace = if request.namespace.is_empty() {
                    "default"
                } else {
                    &request.namespace
                };
                object
                    .set_field(&namespace_path, kf_yaml::Value::from(namespace))
                    .expect("chart objects carry a metadata mapping");
            }
            batch.push(object);
        }
        store.apply_batch(batch).len()
    }

    /// A raw-body pool mixing several operators' traffic: every manifest is
    /// serialized to YAML wire bytes **once** at pool construction, and
    /// replay hands out cheap byte-buffer clones — the wire-faithful regime
    /// the streaming admission plane is measured in.
    pub fn for_operators_raw(operators: &[Operator]) -> Self {
        Self::for_operators(operators).into_raw()
    }

    /// [`ThroughputDriver::for_operators_raw`] with JSON wire bytes — the
    /// dominant format real API clients submit.
    pub fn for_operators_raw_json(operators: &[Operator]) -> Self {
        Self::for_operators(operators).into_raw_json()
    }

    /// Convert the pool to raw (pre-serialized) YAML bodies. Each manifest
    /// is encoded once here; replaying a request afterwards never
    /// re-serializes or deep-clones a document tree.
    pub fn into_raw(mut self) -> Self {
        self.requests = self
            .requests
            .into_iter()
            .map(ApiRequest::into_raw)
            .collect();
        self
    }

    /// Convert the pool to raw (pre-serialized) JSON bodies.
    pub fn into_raw_json(mut self) -> Self {
        self.requests = self
            .requests
            .into_iter()
            .map(ApiRequest::into_raw_json)
            .collect();
        self
    }

    /// The replayed request pool, in replay order.
    pub fn requests(&self) -> &[ApiRequest] {
        &self.requests
    }

    /// Number of attack requests in the pool.
    pub fn attack_count(&self) -> usize {
        self.attack_count
    }

    /// Replay the pool from `threads` threads, each cycling through the pool
    /// until it has issued `requests_per_thread` requests. Threads start at
    /// rotated offsets so they do not traverse the pool in lockstep.
    pub fn run<H>(
        &self,
        handler: &H,
        threads: usize,
        requests_per_thread: usize,
    ) -> ThroughputReport
    where
        H: RequestHandler + Sync,
    {
        assert!(threads > 0, "at least one replay thread is required");
        assert!(!self.requests.is_empty(), "replay pool is empty");
        let pool = &self.requests;
        let started = Instant::now();
        let per_thread: Vec<(u64, u64, Vec<u64>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|thread| {
                    scope.spawn(move || {
                        let mut admitted = 0u64;
                        let mut denied = 0u64;
                        let mut latencies_ns = Vec::with_capacity(requests_per_thread);
                        // Rotated start so threads hit different requests.
                        let offset = thread * pool.len() / threads.max(1);
                        for i in 0..requests_per_thread {
                            let request = &pool[(offset + i) % pool.len()];
                            let issued = Instant::now();
                            let response = handler.handle(request);
                            latencies_ns.push(issued.elapsed().as_nanos() as u64);
                            if response.is_success() {
                                admitted += 1;
                            } else {
                                denied += 1;
                            }
                        }
                        (admitted, denied, latencies_ns)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("replay thread panicked"))
                .collect()
        });
        let elapsed = started.elapsed();
        let mut admitted = 0;
        let mut denied = 0;
        let mut latencies: Vec<u64> = Vec::with_capacity(threads * requests_per_thread);
        for (a, d, l) in per_thread {
            admitted += a;
            denied += d;
            latencies.extend(l);
        }
        latencies.sort_unstable();
        let percentile = |p: usize| {
            Duration::from_nanos(latencies[(latencies.len() * p / 100).min(latencies.len() - 1)])
        };
        ThroughputReport {
            threads,
            total_requests: (threads * requests_per_thread) as u64,
            admitted,
            denied,
            elapsed,
            p50: percentile(50),
            p99: percentile(99),
            max: Duration::from_nanos(*latencies.last().expect("non-empty")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use k8s_apiserver::ApiServer;

    #[test]
    fn the_pool_mixes_legitimate_and_attack_traffic() {
        let driver = ThroughputDriver::for_operator(Operator::Nginx);
        assert!(driver.attack_count() > 0);
        assert!(driver.requests().len() > driver.attack_count());
    }

    #[test]
    fn replay_counts_add_up_across_threads() {
        let driver = ThroughputDriver::for_operator(Operator::Nginx);
        let server = ApiServer::new().with_admin(&Operator::Nginx.user());
        let report = driver.run(&server, 4, 40);
        assert_eq!(report.threads, 4);
        assert_eq!(report.total_requests, 160);
        assert_eq!(report.admitted + report.denied, 160);
        assert!(report.requests_per_sec() > 0.0);
        assert!(report.p50 <= report.p99);
        assert!(report.p99 <= report.max);
        // The permissive server admits everything, attacks included.
        assert_eq!(report.denied, 0);
    }

    #[test]
    fn raw_pools_replay_identically_to_tree_pools() {
        let tree = ThroughputDriver::for_operator(Operator::Nginx);
        let raw = ThroughputDriver::for_operator(Operator::Nginx).into_raw();
        assert_eq!(tree.requests().len(), raw.requests().len());
        assert_eq!(tree.attack_count(), raw.attack_count());
        for (t, r) in tree.requests().iter().zip(raw.requests()) {
            assert_eq!(t.path(), r.path());
            assert!(t.body.is_none() == r.body.is_none());
            if r.body.is_some() {
                assert!(r.body.raw().is_some(), "raw pools carry wire bytes");
            }
        }
        // Replay against a permissive server succeeds for both shapes.
        let server = ApiServer::new().with_admin(&Operator::Nginx.user());
        let report = raw.run(&server, 2, 40);
        assert_eq!(report.admitted + report.denied, 80);
    }

    #[test]
    fn json_pools_replay_identically_to_yaml_pools() {
        let yaml = ThroughputDriver::for_operators_raw(&[Operator::Nginx]);
        let json = ThroughputDriver::for_operators_raw_json(&[Operator::Nginx]);
        assert_eq!(yaml.requests().len(), json.requests().len());
        for (y, j) in yaml.requests().iter().zip(json.requests()) {
            assert_eq!(y.path(), j.path());
            if let Some(bytes) = j.body.raw() {
                assert_eq!(bytes.first(), Some(&b'{'), "JSON pools carry JSON bytes");
            }
        }
        // Both pools materialize to loosely-equal documents request by
        // request, so enforcement verdicts cannot depend on the format.
        for (y, j) in yaml.requests().iter().zip(json.requests()) {
            let yt = y.body.materialize().unwrap();
            let jt = j.body.materialize().unwrap();
            match (yt, jt) {
                (None, None) => {}
                (Some(a), Some(b)) => assert!(a.loosely_equals(&b)),
                other => panic!("body presence diverged: {other:?}"),
            }
        }
        let server = ApiServer::new().with_admin(&Operator::Nginx.user());
        let report = json.run(&server, 2, 40);
        assert_eq!(report.admitted + report.denied, 80);
    }

    #[test]
    fn mixed_pools_follow_the_requested_ratio() {
        let mix = MixRatio::OPERATOR_RECONCILE;
        let driver = ThroughputDriver::for_operators_mixed(&[Operator::Nginx], mix);
        assert_eq!(driver.attack_count(), 0);
        assert_eq!(driver.requests().len() % mix.cycle_len(), 0);
        let (mut creates, mut gets, mut lists) = (0usize, 0usize, 0usize);
        for request in driver.requests() {
            match request.verb {
                k8s_model::Verb::Create => creates += 1,
                k8s_model::Verb::Get => gets += 1,
                k8s_model::Verb::List => lists += 1,
                other => panic!("unexpected verb in mixed pool: {other:?}"),
            }
        }
        let cycles = driver.requests().len() / mix.cycle_len();
        assert_eq!(creates, cycles * mix.create);
        assert_eq!(gets, cycles * mix.get);
        assert_eq!(lists, cycles * mix.list);
        // Deterministic: two constructions replay identical traffic.
        let again = ThroughputDriver::for_operators_mixed(&[Operator::Nginx], mix);
        let paths: Vec<String> = driver.requests().iter().map(|r| r.path()).collect();
        let paths_again: Vec<String> = again.requests().iter().map(|r| r.path()).collect();
        assert_eq!(paths, paths_again);
    }

    #[test]
    fn seeded_read_heavy_replay_serves_reads_from_the_store() {
        let driver =
            ThroughputDriver::for_operators_mixed(&[Operator::Nginx], MixRatio::OPERATOR_RECONCILE);
        let server = ApiServer::new().with_admin(&Operator::Nginx.user());
        driver.seed(&server);
        assert!(
            !server.store().is_empty(),
            "seeding must populate the store"
        );
        let report = driver.run(&server, 2, 60);
        // Every request in a seeded mixed replay succeeds: creates apply,
        // gets and lists hit stored objects.
        assert_eq!(report.denied, 0);
        assert_eq!(report.admitted, 120);
    }

    #[test]
    fn seed_store_bulk_load_matches_seeding_through_the_server() {
        use k8s_apiserver::{ObjectStore, StoreBackend};

        let driver =
            ThroughputDriver::for_operators_mixed(&[Operator::Nginx], MixRatio::WRITE_HEAVY);
        // Reference: the full request pipeline on a permissive server.
        let server = ApiServer::new().with_admin(&Operator::Nginx.user());
        driver.seed(&server);
        // Fast path: bulk-load the same pool through apply_batch.
        let store = ObjectStore::new();
        let loaded = driver.seed_store(&store);
        assert!(loaded > 0);
        assert_eq!(store.len(), server.store().len());
        assert_eq!(store.count_by_kind(), server.store().count_by_kind());
        // Object for object, same coordinates — namespace defaulting
        // replicated admission exactly.
        for reference in server.store().list(k8s_model::ResourceKind::Pod, "") {
            assert!(store
                .get(
                    reference.object.kind(),
                    reference.object.namespace(),
                    reference.object.name()
                )
                .is_some());
        }
        // The bulk load published one watch event per object.
        assert_eq!(StoreBackend::revision(&store), loaded as u64);
    }

    #[test]
    fn watch_heavy_pools_include_watch_requests() {
        let mix = MixRatio::WATCH_HEAVY;
        assert_eq!(mix.label(), "c2:g1:l1:w12");
        let driver = ThroughputDriver::for_operators_mixed(&[Operator::Nginx], mix);
        let watches = driver
            .requests()
            .iter()
            .filter(|r| r.verb == k8s_model::Verb::Watch)
            .count();
        let cycles = driver.requests().len() / mix.cycle_len();
        assert_eq!(watches, cycles * mix.watch);
        // Replay against a seeded permissive server: watches succeed and
        // return watch batches.
        let server = ApiServer::new().with_admin(&Operator::Nginx.user());
        driver.seed(&server);
        let report = driver.run(&server, 2, 40);
        assert_eq!(report.denied, 0);
    }

    #[test]
    fn write_heavy_mix_is_mostly_creates() {
        let driver =
            ThroughputDriver::for_operators_mixed(&[Operator::Postgresql], MixRatio::WRITE_HEAVY);
        let creates = driver
            .requests()
            .iter()
            .filter(|r| r.verb == k8s_model::Verb::Create)
            .count();
        assert!(creates * 10 >= driver.requests().len() * 7);
        assert_eq!(MixRatio::WRITE_HEAVY.label(), "c8:g1:l1");
    }

    #[test]
    fn single_threaded_replay_is_deterministic_traffic() {
        let driver = ThroughputDriver::for_operator(Operator::Postgresql);
        let a: Vec<String> = driver.requests().iter().map(|r| r.path()).collect();
        let b: Vec<String> = ThroughputDriver::for_operator(Operator::Postgresql)
            .requests()
            .iter()
            .map(|r| r.path())
            .collect();
        assert_eq!(a, b);
    }
}
