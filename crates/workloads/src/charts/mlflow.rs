//! The MLflow operator chart (modelled on `community-charts/mlflow`).
//!
//! Resource footprint (Figure 9): Deployment, Service, ConfigMap, Ingress,
//! ServiceAccount and Secret.

use helm_lite::{Chart, ChartMetadata, TemplateFile, ValuesFile};

use super::common;

/// Default values of the chart.
pub const VALUES: &str = r#"replicaCount: 1
image:
  registry: docker.io
  repository: bitnami/mlflow
  tag: 2.10.2
  # @options: IfNotPresent | Always
  pullPolicy: IfNotPresent
tracking:
  enabled: true
  host: "0.0.0.0"
  port: 5000
backendStore:
  postgres:
    enabled: true
    host: mlflow-postgresql
    port: 5432
    database: mlflow
    user: mlflow
    password: changeme-mlflow
artifactRoot:
  path: /mlruns
service:
  # @options: ClusterIP | NodePort
  type: ClusterIP
  port: 5000
ingress:
  enabled: true
  className: nginx
  host: mlflow.example.com
  path: /
  tls:
    enabled: false
    secretName: mlflow-tls
resources:
  limits:
    cpu: 1000m
    memory: 1Gi
  requests:
    cpu: 500m
    memory: 512Mi
containerSecurityContext:
  runAsNonRoot: true
  runAsUser: 1001
  allowPrivilegeEscalation: false
serviceAccount:
  automountToken: false
extraEnvVars:
  - name: MLFLOW_LOG_LEVEL
    value: INFO
"#;

const DEPLOYMENT: &str = r#"apiVersion: apps/v1
kind: Deployment
metadata:
  name: {{ include "mlflow.fullname" . }}
  labels:
    app.kubernetes.io/name: mlflow
    app.kubernetes.io/instance: {{ .Release.Name }}
spec:
  replicas: {{ .Values.replicaCount }}
  selector:
    matchLabels:
      app.kubernetes.io/name: mlflow
      app.kubernetes.io/instance: {{ .Release.Name }}
  template:
    metadata:
      labels:
        app.kubernetes.io/name: mlflow
        app.kubernetes.io/instance: {{ .Release.Name }}
    spec:
      serviceAccountName: {{ include "mlflow.serviceAccountName" . }}
      automountServiceAccountToken: {{ .Values.serviceAccount.automountToken }}
      containers:
        - name: mlflow
          image: "{{ .Values.image.registry }}/{{ .Values.image.repository }}:{{ .Values.image.tag }}"
          imagePullPolicy: {{ .Values.image.pullPolicy }}
          args:
            - server
            - --host={{ .Values.tracking.host }}
            - --port={{ .Values.tracking.port }}
          ports:
            - name: http
              containerPort: {{ .Values.tracking.port }}
              protocol: TCP
          env:
            - name: MLFLOW_ARTIFACT_ROOT
              value: {{ .Values.artifactRoot.path }}
            {{- if .Values.backendStore.postgres.enabled }}
            - name: PGHOST
              value: {{ .Values.backendStore.postgres.host }}
            - name: PGPORT
              value: "{{ .Values.backendStore.postgres.port }}"
            - name: PGUSER
              valueFrom:
                secretKeyRef:
                  name: {{ include "mlflow.fullname" . }}-env-secret
                  key: PGUSER
            - name: PGPASSWORD
              valueFrom:
                secretKeyRef:
                  name: {{ include "mlflow.fullname" . }}-env-secret
                  key: PGPASSWORD
            {{- end }}
            {{- range .Values.extraEnvVars }}
            - name: {{ .name }}
              value: {{ .value }}
            {{- end }}
          envFrom:
            - configMapRef:
                name: {{ include "mlflow.fullname" . }}-config
          securityContext:
            runAsNonRoot: {{ .Values.containerSecurityContext.runAsNonRoot }}
            runAsUser: {{ .Values.containerSecurityContext.runAsUser }}
            allowPrivilegeEscalation: {{ .Values.containerSecurityContext.allowPrivilegeEscalation }}
          resources:
            {{- toYaml .Values.resources | nindent 12 }}
          readinessProbe:
            httpGet:
              path: /health
              port: http
            initialDelaySeconds: 15
            periodSeconds: 10
          volumeMounts:
            - name: artifacts
              mountPath: {{ .Values.artifactRoot.path }}
      volumes:
        - name: artifacts
          emptyDir: {}
"#;

const SERVICE: &str = r#"apiVersion: v1
kind: Service
metadata:
  name: {{ include "mlflow.fullname" . }}
  labels:
    app.kubernetes.io/name: mlflow
    app.kubernetes.io/instance: {{ .Release.Name }}
spec:
  type: {{ .Values.service.type }}
  ports:
    - name: http
      port: {{ .Values.service.port }}
      targetPort: http
      protocol: TCP
  selector:
    app.kubernetes.io/name: mlflow
    app.kubernetes.io/instance: {{ .Release.Name }}
"#;

const CONFIGMAP: &str = r#"apiVersion: v1
kind: ConfigMap
metadata:
  name: {{ include "mlflow.fullname" . }}-config
  labels:
    app.kubernetes.io/name: mlflow
    app.kubernetes.io/instance: {{ .Release.Name }}
data:
  MLFLOW_TRACKING_URI: "http://{{ include "mlflow.fullname" . }}:{{ .Values.service.port }}"
  MLFLOW_SERVE_ARTIFACTS: "true"
"#;

const SECRET: &str = r#"{{- if .Values.backendStore.postgres.enabled }}
apiVersion: v1
kind: Secret
metadata:
  name: {{ include "mlflow.fullname" . }}-env-secret
  labels:
    app.kubernetes.io/name: mlflow
    app.kubernetes.io/instance: {{ .Release.Name }}
type: Opaque
data:
  PGUSER: {{ .Values.backendStore.postgres.user | b64enc }}
  PGPASSWORD: {{ .Values.backendStore.postgres.password | b64enc }}
{{- end }}
"#;

const INGRESS: &str = r#"{{- if .Values.ingress.enabled }}
apiVersion: networking.k8s.io/v1
kind: Ingress
metadata:
  name: {{ include "mlflow.fullname" . }}
  labels:
    app.kubernetes.io/name: mlflow
    app.kubernetes.io/instance: {{ .Release.Name }}
spec:
  ingressClassName: {{ .Values.ingress.className }}
  {{- if .Values.ingress.tls.enabled }}
  tls:
    - hosts:
        - {{ .Values.ingress.host }}
      secretName: {{ .Values.ingress.tls.secretName }}
  {{- end }}
  rules:
    - host: {{ .Values.ingress.host }}
      http:
        paths:
          - path: {{ .Values.ingress.path }}
            pathType: Prefix
            backend:
              service:
                name: {{ include "mlflow.fullname" . }}
                port:
                  name: http
{{- end }}
"#;

/// Build the MLflow chart.
pub fn chart() -> Chart {
    Chart::new(
        ChartMetadata::new("mlflow", "0.12.5").with_app_version("2.10.2"),
        ValuesFile::parse(VALUES).expect("built-in values must parse"),
        vec![
            common::helpers_tpl("mlflow"),
            common::service_account_template("mlflow"),
            TemplateFile::new("deployment.yaml", DEPLOYMENT),
            TemplateFile::new("service.yaml", SERVICE),
            TemplateFile::new("configmap.yaml", CONFIGMAP),
            TemplateFile::new("secret.yaml", SECRET),
            TemplateFile::new("ingress.yaml", INGRESS),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use helm_lite::render_chart;
    use kf_yaml::Path;

    #[test]
    fn default_rendering_contains_the_expected_kinds() {
        let manifests = render_chart(&chart(), None, "mlflow").unwrap();
        let kinds: Vec<_> = manifests.iter().filter_map(|m| m.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                "ServiceAccount",
                "Deployment",
                "Service",
                "ConfigMap",
                "Secret",
                "Ingress"
            ]
        );
    }

    #[test]
    fn postgres_credentials_flow_into_the_secret_when_enabled() {
        let manifests = render_chart(&chart(), None, "mlflow").unwrap();
        let secret = manifests
            .iter()
            .find(|m| m.kind() == Some("Secret"))
            .unwrap();
        let user = secret
            .document
            .get_path(&Path::parse("data.PGUSER").unwrap())
            .unwrap();
        assert_eq!(user.as_str(), Some("bWxmbG93")); // base64("mlflow")
                                                     // Disabling the backend removes both the secret and its env wiring.
        let overrides = kf_yaml::parse("backendStore:\n  postgres:\n    enabled: false\n").unwrap();
        let manifests = render_chart(&chart(), Some(&overrides), "mlflow").unwrap();
        assert!(manifests.iter().all(|m| m.kind() != Some("Secret")));
        let deployment = manifests
            .iter()
            .find(|m| m.kind() == Some("Deployment"))
            .unwrap();
        let env = deployment
            .document
            .get_path(&Path::parse("spec.template.spec.containers[0].env").unwrap())
            .unwrap();
        let names: Vec<_> = env
            .as_seq()
            .unwrap()
            .iter()
            .filter_map(|e| e.get("name").and_then(kf_yaml::Value::as_str))
            .collect();
        assert!(!names.contains(&"PGPASSWORD"));
        assert!(names.contains(&"MLFLOW_LOG_LEVEL"));
    }

    #[test]
    fn ingress_routes_to_the_tracking_service() {
        let manifests = render_chart(&chart(), None, "mlflow").unwrap();
        let ingress = manifests
            .iter()
            .find(|m| m.kind() == Some("Ingress"))
            .unwrap();
        assert_eq!(
            ingress
                .document
                .get_path(&Path::parse("spec.rules[0].http.paths[0].backend.service.name").unwrap())
                .and_then(|v| v.as_str()),
            Some("mlflow-mlflow")
        );
    }
}
