//! Built-in synthetic charts for the five evaluated operators.
//!
//! The charts follow the structure of their Artifact Hub counterparts
//! (bitnami/nginx, community-charts/mlflow, bitnami/postgresql,
//! bitnami/rabbitmq, openshift-bootstraps/sonarqube): the same resource kinds,
//! the same kind of templating (value interpolation, conditional resources,
//! helper templates), and the security-relevant fields in the same places.
//! They are the inputs of the KubeFence policy pipeline in every experiment.

pub mod common;
pub mod mlflow;
pub mod nginx;
pub mod postgresql;
pub mod rabbitmq;
pub mod sonarqube;

#[cfg(test)]
mod tests {
    use helm_lite::render_chart;

    #[test]
    fn every_chart_renders_with_default_values() {
        for chart in [
            super::nginx::chart(),
            super::mlflow::chart(),
            super::postgresql::chart(),
            super::rabbitmq::chart(),
            super::sonarqube::chart(),
        ] {
            let manifests = render_chart(&chart, None, "test").unwrap_or_else(|e| {
                panic!("chart {} failed to render: {e}", chart.metadata().name)
            });
            assert!(
                manifests.len() >= 4,
                "chart {} rendered only {} manifests",
                chart.metadata().name,
                manifests.len()
            );
            for manifest in &manifests {
                assert!(
                    manifest.kind().is_some(),
                    "chart {} rendered a document without kind from {}",
                    chart.metadata().name,
                    manifest.template
                );
            }
        }
    }

    #[test]
    fn charts_have_annotated_enumerations_for_exploration() {
        for chart in [
            super::nginx::chart(),
            super::postgresql::chart(),
            super::rabbitmq::chart(),
        ] {
            assert!(
                !chart.values().annotations().is_empty(),
                "chart {} has no @options annotations",
                chart.metadata().name
            );
        }
    }
}
