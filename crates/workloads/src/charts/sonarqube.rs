//! The SonarQube operator chart (modelled on `openshift-bootstraps/sonarqube`).
//!
//! SonarQube is the widest workload of the evaluation: it touches nearly every
//! endpoint of Figure 9 (Deployment, StatefulSet, Pod, Job, Service,
//! ConfigMap, NetworkPolicy, Ingress, IngressClass, ServiceAccount,
//! PersistentVolumeClaim, ValidatingWebhookConfiguration, Secret, Role,
//! RoleBinding, ClusterRole, ClusterRoleBinding), which is why RBAC can
//! restrict so little of its attack surface (Table I).

use helm_lite::{Chart, ChartMetadata, TemplateFile, ValuesFile};

use super::common;

/// Default values of the chart.
pub const VALUES: &str = r#"image:
  registry: docker.io
  repository: sonarqube
  tag: 10.4.1-community
  # @options: IfNotPresent | Always
  pullPolicy: IfNotPresent
replicaCount: 1
service:
  port: 9000
ingress:
  enabled: true
  className: sonar-nginx
  hostname: sonarqube.example.com
  createClass: true
persistence:
  enabled: true
  size: 10Gi
  storageClass: standard
postgresql:
  enabled: true
  image: bitnami/postgresql
  imageTag: 16.2.0
  database: sonarDB
  username: sonarUser
  password: changeme-sonar
  port: 5432
  persistence:
    size: 8Gi
monitoring:
  passcode: monitor-me
plugins:
  install: true
  urls:
    - https://example.com/sonar-plugin.jar
migration:
  enabled: true
webhook:
  enabled: true
  failurePolicy: Ignore
tests:
  enabled: true
resources:
  limits:
    cpu: 2000m
    memory: 4Gi
  requests:
    cpu: 1000m
    memory: 2Gi
containerSecurityContext:
  runAsNonRoot: true
  runAsUser: 1000
  allowPrivilegeEscalation: false
serviceAccount:
  automountToken: true
networkPolicy:
  enabled: true
rbac:
  create: true
  clusterWide: true
"#;

const SECRET: &str = r#"apiVersion: v1
kind: Secret
metadata:
  name: {{ include "sonarqube.fullname" . }}
  labels:
    app.kubernetes.io/name: sonarqube
    app.kubernetes.io/instance: {{ .Release.Name }}
type: Opaque
data:
  postgresql-password: {{ .Values.postgresql.password | b64enc }}
  monitoring-passcode: {{ .Values.monitoring.passcode | b64enc }}
"#;

const CONFIGMAP: &str = r#"apiVersion: v1
kind: ConfigMap
metadata:
  name: {{ include "sonarqube.fullname" . }}-config
  labels:
    app.kubernetes.io/name: sonarqube
    app.kubernetes.io/instance: {{ .Release.Name }}
data:
  SONAR_JDBC_URL: "jdbc:postgresql://{{ include "sonarqube.fullname" . }}-postgresql:{{ .Values.postgresql.port }}/{{ .Values.postgresql.database }}"
  SONAR_WEB_CONTEXT: /
  SONAR_TELEMETRY_ENABLE: "false"
"#;

const DEPLOYMENT: &str = r#"apiVersion: apps/v1
kind: Deployment
metadata:
  name: {{ include "sonarqube.fullname" . }}
  labels:
    app.kubernetes.io/name: sonarqube
    app.kubernetes.io/instance: {{ .Release.Name }}
spec:
  replicas: {{ .Values.replicaCount }}
  selector:
    matchLabels:
      app.kubernetes.io/name: sonarqube
      app.kubernetes.io/instance: {{ .Release.Name }}
  template:
    metadata:
      labels:
        app.kubernetes.io/name: sonarqube
        app.kubernetes.io/instance: {{ .Release.Name }}
    spec:
      serviceAccountName: {{ include "sonarqube.serviceAccountName" . }}
      automountServiceAccountToken: {{ .Values.serviceAccount.automountToken }}
      initContainers:
        - name: wait-for-db
          image: "{{ .Values.image.registry }}/{{ .Values.postgresql.image }}:{{ .Values.postgresql.imageTag }}"
          args:
            - pg_isready
            - --timeout=60
          securityContext:
            runAsNonRoot: true
      containers:
        - name: sonarqube
          image: "{{ .Values.image.registry }}/{{ .Values.image.repository }}:{{ .Values.image.tag }}"
          imagePullPolicy: {{ .Values.image.pullPolicy }}
          ports:
            - name: http
              containerPort: {{ .Values.service.port }}
          env:
            - name: SONAR_JDBC_USERNAME
              value: {{ .Values.postgresql.username }}
            - name: SONAR_JDBC_PASSWORD
              valueFrom:
                secretKeyRef:
                  name: {{ include "sonarqube.fullname" . }}
                  key: postgresql-password
          envFrom:
            - configMapRef:
                name: {{ include "sonarqube.fullname" . }}-config
          securityContext:
            runAsNonRoot: {{ .Values.containerSecurityContext.runAsNonRoot }}
            runAsUser: {{ .Values.containerSecurityContext.runAsUser }}
            allowPrivilegeEscalation: {{ .Values.containerSecurityContext.allowPrivilegeEscalation }}
          resources:
            {{- toYaml .Values.resources | nindent 12 }}
          readinessProbe:
            httpGet:
              path: /api/system/status
              port: http
            initialDelaySeconds: 60
            periodSeconds: 30
          volumeMounts:
            - name: data
              mountPath: /opt/sonarqube/data
            - name: extensions
              mountPath: /opt/sonarqube/extensions
      volumes:
        - name: data
          persistentVolumeClaim:
            claimName: {{ include "sonarqube.fullname" . }}-data
        - name: extensions
          emptyDir: {}
"#;

const POSTGRES_STATEFULSET: &str = r#"{{- if .Values.postgresql.enabled }}
apiVersion: apps/v1
kind: StatefulSet
metadata:
  name: {{ include "sonarqube.fullname" . }}-postgresql
  labels:
    app.kubernetes.io/name: sonarqube-postgresql
    app.kubernetes.io/instance: {{ .Release.Name }}
spec:
  replicas: 1
  serviceName: {{ include "sonarqube.fullname" . }}-postgresql
  selector:
    matchLabels:
      app.kubernetes.io/name: sonarqube-postgresql
      app.kubernetes.io/instance: {{ .Release.Name }}
  template:
    metadata:
      labels:
        app.kubernetes.io/name: sonarqube-postgresql
        app.kubernetes.io/instance: {{ .Release.Name }}
    spec:
      serviceAccountName: {{ include "sonarqube.serviceAccountName" . }}
      containers:
        - name: postgresql
          image: "{{ .Values.image.registry }}/{{ .Values.postgresql.image }}:{{ .Values.postgresql.imageTag }}"
          ports:
            - name: tcp-postgresql
              containerPort: {{ .Values.postgresql.port }}
          env:
            - name: POSTGRES_DB
              value: {{ .Values.postgresql.database }}
            - name: POSTGRES_USER
              value: {{ .Values.postgresql.username }}
            - name: POSTGRES_PASSWORD
              valueFrom:
                secretKeyRef:
                  name: {{ include "sonarqube.fullname" . }}
                  key: postgresql-password
          securityContext:
            runAsNonRoot: true
            allowPrivilegeEscalation: false
          resources:
            limits:
              cpu: 500m
              memory: 1Gi
          volumeMounts:
            - name: pgdata
              mountPath: /var/lib/postgresql/data
  volumeClaimTemplates:
    - metadata:
        name: pgdata
      spec:
        accessModes:
          - ReadWriteOnce
        resources:
          requests:
            storage: {{ .Values.postgresql.persistence.size }}
{{- end }}
"#;

const INSTALL_PLUGINS_POD: &str = r#"{{- if .Values.plugins.install }}
apiVersion: v1
kind: Pod
metadata:
  name: {{ include "sonarqube.fullname" . }}-install-plugins
  labels:
    app.kubernetes.io/name: sonarqube
    app.kubernetes.io/instance: {{ .Release.Name }}
spec:
  restartPolicy: Never
  serviceAccountName: {{ include "sonarqube.serviceAccountName" . }}
  containers:
    - name: install-plugins
      image: "{{ .Values.image.registry }}/{{ .Values.image.repository }}:{{ .Values.image.tag }}"
      args:
        {{- range .Values.plugins.urls }}
        - {{ . }}
        {{- end }}
      securityContext:
        runAsNonRoot: true
        allowPrivilegeEscalation: false
      resources:
        limits:
          cpu: 250m
          memory: 256Mi
      volumeMounts:
        - name: extensions
          mountPath: /opt/sonarqube/extensions
  volumes:
    - name: extensions
      emptyDir: {}
{{- end }}
"#;

const MIGRATION_JOB: &str = r#"{{- if .Values.migration.enabled }}
apiVersion: batch/v1
kind: Job
metadata:
  name: {{ include "sonarqube.fullname" . }}-migration
  labels:
    app.kubernetes.io/name: sonarqube
    app.kubernetes.io/instance: {{ .Release.Name }}
spec:
  backoffLimit: 3
  ttlSecondsAfterFinished: 3600
  template:
    spec:
      restartPolicy: OnFailure
      serviceAccountName: {{ include "sonarqube.serviceAccountName" . }}
      containers:
        - name: migrate
          image: "{{ .Values.image.registry }}/{{ .Values.image.repository }}:{{ .Values.image.tag }}"
          args:
            - migrate-db
          envFrom:
            - configMapRef:
                name: {{ include "sonarqube.fullname" . }}-config
          securityContext:
            runAsNonRoot: true
          resources:
            limits:
              cpu: 500m
              memory: 512Mi
{{- end }}
"#;

const SERVICES: &str = r#"apiVersion: v1
kind: Service
metadata:
  name: {{ include "sonarqube.fullname" . }}
  labels:
    app.kubernetes.io/name: sonarqube
    app.kubernetes.io/instance: {{ .Release.Name }}
spec:
  type: ClusterIP
  ports:
    - name: http
      port: {{ .Values.service.port }}
      targetPort: http
  selector:
    app.kubernetes.io/name: sonarqube
    app.kubernetes.io/instance: {{ .Release.Name }}
---
{{- if .Values.postgresql.enabled }}
apiVersion: v1
kind: Service
metadata:
  name: {{ include "sonarqube.fullname" . }}-postgresql
  labels:
    app.kubernetes.io/name: sonarqube-postgresql
    app.kubernetes.io/instance: {{ .Release.Name }}
spec:
  type: ClusterIP
  ports:
    - name: tcp-postgresql
      port: {{ .Values.postgresql.port }}
      targetPort: tcp-postgresql
  selector:
    app.kubernetes.io/name: sonarqube-postgresql
    app.kubernetes.io/instance: {{ .Release.Name }}
{{- end }}
"#;

const NETWORK_POLICY: &str = r#"{{- if .Values.networkPolicy.enabled }}
apiVersion: networking.k8s.io/v1
kind: NetworkPolicy
metadata:
  name: {{ include "sonarqube.fullname" . }}
  labels:
    app.kubernetes.io/name: sonarqube
    app.kubernetes.io/instance: {{ .Release.Name }}
spec:
  podSelector:
    matchLabels:
      app.kubernetes.io/name: sonarqube
      app.kubernetes.io/instance: {{ .Release.Name }}
  policyTypes:
    - Ingress
  ingress:
    - ports:
        - port: {{ .Values.service.port }}
{{- end }}
"#;

const INGRESS: &str = r#"{{- if .Values.ingress.enabled }}
apiVersion: networking.k8s.io/v1
kind: Ingress
metadata:
  name: {{ include "sonarqube.fullname" . }}
  labels:
    app.kubernetes.io/name: sonarqube
    app.kubernetes.io/instance: {{ .Release.Name }}
spec:
  ingressClassName: {{ .Values.ingress.className }}
  rules:
    - host: {{ .Values.ingress.hostname }}
      http:
        paths:
          - path: /
            pathType: Prefix
            backend:
              service:
                name: {{ include "sonarqube.fullname" . }}
                port:
                  name: http
{{- end }}
---
{{- if .Values.ingress.createClass }}
apiVersion: networking.k8s.io/v1
kind: IngressClass
metadata:
  name: {{ .Values.ingress.className }}
  labels:
    app.kubernetes.io/name: sonarqube
    app.kubernetes.io/instance: {{ .Release.Name }}
spec:
  controller: k8s.io/ingress-nginx
{{- end }}
"#;

const PVC: &str = r#"{{- if .Values.persistence.enabled }}
apiVersion: v1
kind: PersistentVolumeClaim
metadata:
  name: {{ include "sonarqube.fullname" . }}-data
  labels:
    app.kubernetes.io/name: sonarqube
    app.kubernetes.io/instance: {{ .Release.Name }}
spec:
  accessModes:
    - ReadWriteOnce
  storageClassName: {{ .Values.persistence.storageClass }}
  resources:
    requests:
      storage: {{ .Values.persistence.size }}
{{- end }}
"#;

const WEBHOOK: &str = r#"{{- if .Values.webhook.enabled }}
apiVersion: admissionregistration.k8s.io/v1
kind: ValidatingWebhookConfiguration
metadata:
  name: {{ include "sonarqube.fullname" . }}-quality-gate
  labels:
    app.kubernetes.io/name: sonarqube
    app.kubernetes.io/instance: {{ .Release.Name }}
webhooks:
  - name: qualitygate.sonarqube.example.com
    failurePolicy: {{ .Values.webhook.failurePolicy }}
    sideEffects: None
    admissionReviewVersions:
      - v1
    clientConfig:
      service:
        namespace: {{ .Release.Namespace }}
        name: {{ include "sonarqube.fullname" . }}
        path: /api/webhooks/admission
        port: {{ .Values.service.port }}
    rules:
      - apiGroups:
          - apps
        apiVersions:
          - v1
        resources:
          - deployments
        operations:
          - CREATE
          - UPDATE
        scope: Namespaced
{{- end }}
"#;

const RBAC: &str = r#"{{- if .Values.rbac.create }}
apiVersion: rbac.authorization.k8s.io/v1
kind: Role
metadata:
  name: {{ include "sonarqube.fullname" . }}
  labels:
    app.kubernetes.io/name: sonarqube
    app.kubernetes.io/instance: {{ .Release.Name }}
rules:
  - apiGroups:
      - ""
    resources:
      - configmaps
      - secrets
    verbs:
      - get
      - list
---
apiVersion: rbac.authorization.k8s.io/v1
kind: RoleBinding
metadata:
  name: {{ include "sonarqube.fullname" . }}
  labels:
    app.kubernetes.io/name: sonarqube
    app.kubernetes.io/instance: {{ .Release.Name }}
roleRef:
  apiGroup: rbac.authorization.k8s.io
  kind: Role
  name: {{ include "sonarqube.fullname" . }}
subjects:
  - kind: ServiceAccount
    name: {{ include "sonarqube.serviceAccountName" . }}
    namespace: {{ .Release.Namespace }}
{{- end }}
---
{{- if .Values.rbac.clusterWide }}
apiVersion: rbac.authorization.k8s.io/v1
kind: ClusterRole
metadata:
  name: {{ include "sonarqube.fullname" . }}-scanner
  labels:
    app.kubernetes.io/name: sonarqube
    app.kubernetes.io/instance: {{ .Release.Name }}
rules:
  - apiGroups:
      - ""
    resources:
      - namespaces
      - pods
    verbs:
      - get
      - list
  - apiGroups:
      - apps
    resources:
      - deployments
    verbs:
      - get
      - list
---
apiVersion: rbac.authorization.k8s.io/v1
kind: ClusterRoleBinding
metadata:
  name: {{ include "sonarqube.fullname" . }}-scanner
  labels:
    app.kubernetes.io/name: sonarqube
    app.kubernetes.io/instance: {{ .Release.Name }}
roleRef:
  apiGroup: rbac.authorization.k8s.io
  kind: ClusterRole
  name: {{ include "sonarqube.fullname" . }}-scanner
subjects:
  - kind: ServiceAccount
    name: {{ include "sonarqube.serviceAccountName" . }}
    namespace: {{ .Release.Namespace }}
{{- end }}
"#;

/// Build the SonarQube chart.
pub fn chart() -> Chart {
    Chart::new(
        ChartMetadata::new("sonarqube", "10.4.1").with_app_version("10.4.1-community"),
        ValuesFile::parse(VALUES).expect("built-in values must parse"),
        vec![
            common::helpers_tpl("sonarqube"),
            common::service_account_template("sonarqube"),
            TemplateFile::new("secret.yaml", SECRET),
            TemplateFile::new("configmap.yaml", CONFIGMAP),
            TemplateFile::new("pvc.yaml", PVC),
            TemplateFile::new("deployment.yaml", DEPLOYMENT),
            TemplateFile::new("postgresql-statefulset.yaml", POSTGRES_STATEFULSET),
            TemplateFile::new("install-plugins-pod.yaml", INSTALL_PLUGINS_POD),
            TemplateFile::new("migration-job.yaml", MIGRATION_JOB),
            TemplateFile::new("services.yaml", SERVICES),
            TemplateFile::new("networkpolicy.yaml", NETWORK_POLICY),
            TemplateFile::new("ingress.yaml", INGRESS),
            TemplateFile::new("webhook.yaml", WEBHOOK),
            TemplateFile::new("rbac.yaml", RBAC),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use helm_lite::render_chart;
    use std::collections::BTreeSet;

    #[test]
    fn sonarqube_touches_most_of_the_api_surface() {
        let manifests = render_chart(&chart(), None, "sonar").unwrap();
        let kinds: BTreeSet<_> = manifests.iter().filter_map(|m| m.kind()).collect();
        for kind in [
            "ServiceAccount",
            "Secret",
            "ConfigMap",
            "PersistentVolumeClaim",
            "Deployment",
            "StatefulSet",
            "Pod",
            "Job",
            "Service",
            "NetworkPolicy",
            "Ingress",
            "IngressClass",
            "ValidatingWebhookConfiguration",
            "Role",
            "RoleBinding",
            "ClusterRole",
            "ClusterRoleBinding",
        ] {
            assert!(kinds.contains(kind), "missing {kind}");
        }
        assert_eq!(kinds.len(), 17);
    }

    #[test]
    fn optional_components_can_be_disabled() {
        let overrides = kf_yaml::parse(
            "postgresql:\n  enabled: false\nwebhook:\n  enabled: false\nplugins:\n  install: false\nmigration:\n  enabled: false\n",
        )
        .unwrap();
        let manifests = render_chart(&chart(), Some(&overrides), "sonar").unwrap();
        let kinds: BTreeSet<_> = manifests.iter().filter_map(|m| m.kind()).collect();
        assert!(!kinds.contains("StatefulSet"));
        assert!(!kinds.contains("Pod"));
        assert!(!kinds.contains("Job"));
        assert!(!kinds.contains("ValidatingWebhookConfiguration"));
        assert!(kinds.contains("Deployment"));
    }
}
