//! The PostgreSQL operator chart (modelled on `bitnami/postgresql`).
//!
//! Resource footprint (Figure 9): StatefulSet, CronJob (backups), Service,
//! ConfigMap, NetworkPolicy, ServiceAccount, Secret, Role and RoleBinding.

use helm_lite::{Chart, ChartMetadata, TemplateFile, ValuesFile};

use super::common;

/// Default values of the chart.
pub const VALUES: &str = r#"image:
  registry: docker.io
  repository: bitnami/postgresql
  tag: 16.2.0
  # @options: IfNotPresent | Always
  pullPolicy: IfNotPresent
auth:
  username: app
  password: changeme-app
  database: appdb
architecture:
  # @options: standalone | replication
  mode: standalone
  replicaCount: 1
primary:
  port: 5432
  persistence:
    size: 8Gi
    storageClass: standard
  resources:
    limits:
      cpu: 1000m
      memory: 2Gi
    requests:
      cpu: 500m
      memory: 1Gi
  podSecurityContext:
    fsGroup: 1001
  containerSecurityContext:
    runAsNonRoot: true
    runAsUser: 1001
    allowPrivilegeEscalation: false
    readOnlyRootFilesystem: true
backup:
  enabled: true
  schedule: "0 2 * * *"
  retention: 7
serviceAccount:
  automountToken: false
networkPolicy:
  enabled: true
rbac:
  create: true
"#;

const STATEFULSET: &str = r#"apiVersion: apps/v1
kind: StatefulSet
metadata:
  name: {{ include "postgresql.fullname" . }}
  labels:
    app.kubernetes.io/name: postgresql
    app.kubernetes.io/instance: {{ .Release.Name }}
spec:
  {{- if eq .Values.architecture.mode "replication" }}
  replicas: {{ .Values.architecture.replicaCount }}
  {{- else }}
  replicas: 1
  {{- end }}
  serviceName: {{ include "postgresql.fullname" . }}-hl
  podManagementPolicy: OrderedReady
  updateStrategy:
    type: RollingUpdate
  selector:
    matchLabels:
      app.kubernetes.io/name: postgresql
      app.kubernetes.io/instance: {{ .Release.Name }}
  template:
    metadata:
      labels:
        app.kubernetes.io/name: postgresql
        app.kubernetes.io/instance: {{ .Release.Name }}
    spec:
      serviceAccountName: {{ include "postgresql.serviceAccountName" . }}
      automountServiceAccountToken: {{ .Values.serviceAccount.automountToken }}
      securityContext:
        fsGroup: {{ .Values.primary.podSecurityContext.fsGroup }}
      containers:
        - name: postgresql
          image: "{{ .Values.image.registry }}/{{ .Values.image.repository }}:{{ .Values.image.tag }}"
          imagePullPolicy: {{ .Values.image.pullPolicy }}
          ports:
            - name: tcp-postgresql
              containerPort: {{ .Values.primary.port }}
              protocol: TCP
          env:
            - name: POSTGRES_USER
              value: {{ .Values.auth.username }}
            - name: POSTGRES_DB
              value: {{ .Values.auth.database }}
            - name: POSTGRES_PASSWORD
              valueFrom:
                secretKeyRef:
                  name: {{ include "postgresql.fullname" . }}
                  key: postgres-password
            {{- if eq .Values.architecture.mode "replication" }}
            - name: POSTGRES_REPLICATION_MODE
              value: master
            {{- end }}
          envFrom:
            - configMapRef:
                name: {{ include "postgresql.fullname" . }}-configuration
          securityContext:
            runAsNonRoot: {{ .Values.primary.containerSecurityContext.runAsNonRoot }}
            runAsUser: {{ .Values.primary.containerSecurityContext.runAsUser }}
            allowPrivilegeEscalation: {{ .Values.primary.containerSecurityContext.allowPrivilegeEscalation }}
            readOnlyRootFilesystem: {{ .Values.primary.containerSecurityContext.readOnlyRootFilesystem }}
          resources:
            {{- toYaml .Values.primary.resources | nindent 12 }}
          livenessProbe:
            exec:
              command:
                - /bin/sh
                - -c
                - pg_isready -U {{ .Values.auth.username }}
            initialDelaySeconds: 30
            periodSeconds: 10
          readinessProbe:
            tcpSocket:
              port: tcp-postgresql
            initialDelaySeconds: 5
            periodSeconds: 10
          volumeMounts:
            - name: data
              mountPath: /bitnami/postgresql
            - name: dshm
              mountPath: /dev/shm
      volumes:
        - name: dshm
          emptyDir:
            medium: Memory
  volumeClaimTemplates:
    - metadata:
        name: data
      spec:
        accessModes:
          - ReadWriteOnce
        storageClassName: {{ .Values.primary.persistence.storageClass }}
        resources:
          requests:
            storage: {{ .Values.primary.persistence.size }}
"#;

const SERVICE: &str = r#"apiVersion: v1
kind: Service
metadata:
  name: {{ include "postgresql.fullname" . }}
  labels:
    app.kubernetes.io/name: postgresql
    app.kubernetes.io/instance: {{ .Release.Name }}
spec:
  type: ClusterIP
  ports:
    - name: tcp-postgresql
      port: {{ .Values.primary.port }}
      targetPort: tcp-postgresql
      protocol: TCP
  selector:
    app.kubernetes.io/name: postgresql
    app.kubernetes.io/instance: {{ .Release.Name }}
---
apiVersion: v1
kind: Service
metadata:
  name: {{ include "postgresql.fullname" . }}-hl
  labels:
    app.kubernetes.io/name: postgresql
    app.kubernetes.io/instance: {{ .Release.Name }}
spec:
  type: ClusterIP
  clusterIP: None
  publishNotReadyAddresses: true
  ports:
    - name: tcp-postgresql
      port: {{ .Values.primary.port }}
      targetPort: tcp-postgresql
      protocol: TCP
  selector:
    app.kubernetes.io/name: postgresql
    app.kubernetes.io/instance: {{ .Release.Name }}
"#;

const CONFIGMAP: &str = r#"apiVersion: v1
kind: ConfigMap
metadata:
  name: {{ include "postgresql.fullname" . }}-configuration
  labels:
    app.kubernetes.io/name: postgresql
    app.kubernetes.io/instance: {{ .Release.Name }}
data:
  POSTGRESQL_MAX_CONNECTIONS: "200"
  POSTGRESQL_SHARED_BUFFERS: 256MB
  POSTGRESQL_LOG_CONNECTIONS: "true"
"#;

const SECRET: &str = r#"apiVersion: v1
kind: Secret
metadata:
  name: {{ include "postgresql.fullname" . }}
  labels:
    app.kubernetes.io/name: postgresql
    app.kubernetes.io/instance: {{ .Release.Name }}
type: Opaque
data:
  postgres-password: {{ .Values.auth.password | b64enc }}
  username: {{ .Values.auth.username | b64enc }}
"#;

const NETWORK_POLICY: &str = r#"{{- if .Values.networkPolicy.enabled }}
apiVersion: networking.k8s.io/v1
kind: NetworkPolicy
metadata:
  name: {{ include "postgresql.fullname" . }}
  labels:
    app.kubernetes.io/name: postgresql
    app.kubernetes.io/instance: {{ .Release.Name }}
spec:
  podSelector:
    matchLabels:
      app.kubernetes.io/name: postgresql
      app.kubernetes.io/instance: {{ .Release.Name }}
  policyTypes:
    - Ingress
  ingress:
    - ports:
        - port: {{ .Values.primary.port }}
{{- end }}
"#;

const CRONJOB: &str = r#"{{- if .Values.backup.enabled }}
apiVersion: batch/v1
kind: CronJob
metadata:
  name: {{ include "postgresql.fullname" . }}-backup
  labels:
    app.kubernetes.io/name: postgresql
    app.kubernetes.io/instance: {{ .Release.Name }}
spec:
  schedule: {{ .Values.backup.schedule | quote }}
  concurrencyPolicy: Forbid
  successfulJobsHistoryLimit: {{ .Values.backup.retention }}
  jobTemplate:
    spec:
      backoffLimit: 2
      template:
        spec:
          restartPolicy: OnFailure
          serviceAccountName: {{ include "postgresql.serviceAccountName" . }}
          containers:
            - name: pg-dump
              image: "{{ .Values.image.registry }}/{{ .Values.image.repository }}:{{ .Values.image.tag }}"
              args:
                - pg_dumpall
                - --clean
              env:
                - name: PGPASSWORD
                  valueFrom:
                    secretKeyRef:
                      name: {{ include "postgresql.fullname" . }}
                      key: postgres-password
              securityContext:
                runAsNonRoot: true
              resources:
                limits:
                  cpu: 250m
                  memory: 256Mi
{{- end }}
"#;

const RBAC: &str = r#"{{- if .Values.rbac.create }}
apiVersion: rbac.authorization.k8s.io/v1
kind: Role
metadata:
  name: {{ include "postgresql.fullname" . }}
  labels:
    app.kubernetes.io/name: postgresql
    app.kubernetes.io/instance: {{ .Release.Name }}
rules:
  - apiGroups:
      - ""
    resources:
      - endpoints
      - configmaps
    verbs:
      - get
      - list
      - watch
---
apiVersion: rbac.authorization.k8s.io/v1
kind: RoleBinding
metadata:
  name: {{ include "postgresql.fullname" . }}
  labels:
    app.kubernetes.io/name: postgresql
    app.kubernetes.io/instance: {{ .Release.Name }}
roleRef:
  apiGroup: rbac.authorization.k8s.io
  kind: Role
  name: {{ include "postgresql.fullname" . }}
subjects:
  - kind: ServiceAccount
    name: {{ include "postgresql.serviceAccountName" . }}
    namespace: {{ .Release.Namespace }}
{{- end }}
"#;

/// Build the PostgreSQL chart.
pub fn chart() -> Chart {
    Chart::new(
        ChartMetadata::new("postgresql", "14.3.1").with_app_version("16.2.0"),
        ValuesFile::parse(VALUES).expect("built-in values must parse"),
        vec![
            common::helpers_tpl("postgresql"),
            common::service_account_template("postgresql"),
            TemplateFile::new("secret.yaml", SECRET),
            TemplateFile::new("configmap.yaml", CONFIGMAP),
            TemplateFile::new("statefulset.yaml", STATEFULSET),
            TemplateFile::new("service.yaml", SERVICE),
            TemplateFile::new("networkpolicy.yaml", NETWORK_POLICY),
            TemplateFile::new("cronjob-backup.yaml", CRONJOB),
            TemplateFile::new("rbac.yaml", RBAC),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use helm_lite::render_chart;
    use kf_yaml::Path;

    #[test]
    fn default_rendering_contains_the_expected_kinds() {
        let manifests = render_chart(&chart(), None, "pg").unwrap();
        let kinds: Vec<_> = manifests.iter().filter_map(|m| m.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                "ServiceAccount",
                "Secret",
                "ConfigMap",
                "StatefulSet",
                "Service",
                "Service",
                "NetworkPolicy",
                "CronJob",
                "Role",
                "RoleBinding"
            ]
        );
    }

    #[test]
    fn standalone_mode_pins_a_single_replica() {
        let manifests = render_chart(&chart(), None, "pg").unwrap();
        let sts = manifests
            .iter()
            .find(|m| m.kind() == Some("StatefulSet"))
            .unwrap();
        assert_eq!(
            sts.document
                .get_path(&Path::parse("spec.replicas").unwrap())
                .and_then(|v| v.as_i64()),
            Some(1)
        );
        let replication =
            kf_yaml::parse("architecture:\n  mode: replication\n  replicaCount: 3\n").unwrap();
        let manifests = render_chart(&chart(), Some(&replication), "pg").unwrap();
        let sts = manifests
            .iter()
            .find(|m| m.kind() == Some("StatefulSet"))
            .unwrap();
        assert_eq!(
            sts.document
                .get_path(&Path::parse("spec.replicas").unwrap())
                .and_then(|v| v.as_i64()),
            Some(3)
        );
        // The replication env var only appears in replication mode.
        let env_names: Vec<String> = sts
            .document
            .get_path(&Path::parse("spec.template.spec.containers[0].env").unwrap())
            .unwrap()
            .as_seq()
            .unwrap()
            .iter()
            .filter_map(|e| {
                e.get("name")
                    .and_then(kf_yaml::Value::as_str)
                    .map(String::from)
            })
            .collect();
        assert!(env_names.contains(&"POSTGRES_REPLICATION_MODE".to_string()));
    }

    #[test]
    fn volume_claim_templates_request_the_configured_storage() {
        let manifests = render_chart(&chart(), None, "pg").unwrap();
        let sts = manifests
            .iter()
            .find(|m| m.kind() == Some("StatefulSet"))
            .unwrap();
        assert_eq!(
            sts.document
                .get_path(
                    &Path::parse("spec.volumeClaimTemplates[0].spec.resources.requests.storage")
                        .unwrap()
                )
                .and_then(|v| v.as_str()),
            Some("8Gi")
        );
    }

    #[test]
    fn disabling_backup_removes_the_cronjob() {
        let overrides = kf_yaml::parse("backup:\n  enabled: false\n").unwrap();
        let manifests = render_chart(&chart(), Some(&overrides), "pg").unwrap();
        assert!(manifests.iter().all(|m| m.kind() != Some("CronJob")));
    }
}
