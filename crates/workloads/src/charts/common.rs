//! Shared helpers for the built-in charts.

use helm_lite::TemplateFile;

/// The `_helpers.tpl` file every chart ships: a `<name>.fullname` helper
/// following the usual `<release>-<chart>` convention.
pub fn helpers_tpl(chart_name: &str) -> TemplateFile {
    TemplateFile::new(
        "_helpers.tpl",
        format!(
            r#"{{{{- define "{chart_name}.fullname" -}}}}
{{{{ .Release.Name }}}}-{{{{ .Chart.Name }}}}
{{{{- end -}}}}
{{{{- define "{chart_name}.serviceAccountName" -}}}}
{{{{ .Release.Name }}}}-{{{{ .Chart.Name }}}}
{{{{- end -}}}}"#
        ),
    )
}

/// The standard label block used by the charts (kept small and fixed so that
/// validators treat the labels as constants).
pub fn labels_block(chart_name: &str) -> String {
    format!(
        "    app.kubernetes.io/name: {chart_name}\n    app.kubernetes.io/instance: {{{{ .Release.Name }}}}\n    app.kubernetes.io/managed-by: {{{{ .Release.Service }}}}"
    )
}

/// A ServiceAccount template shared by all charts.
pub fn service_account_template(chart_name: &str) -> TemplateFile {
    TemplateFile::new(
        "serviceaccount.yaml",
        format!(
            r#"apiVersion: v1
kind: ServiceAccount
metadata:
  name: {{{{ include "{chart_name}.serviceAccountName" . }}}}
  labels:
{labels}
automountServiceAccountToken: {{{{ .Values.serviceAccount.automountToken }}}}
"#,
            labels = labels_block(chart_name)
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helper_templates_define_fullname_and_service_account_name() {
        let tpl = helpers_tpl("nginx");
        assert!(tpl.is_helper());
        assert!(tpl.source.contains("nginx.fullname"));
        assert!(tpl.source.contains("nginx.serviceAccountName"));
    }

    #[test]
    fn labels_block_is_indented_for_metadata() {
        let block = labels_block("demo");
        for line in block.lines() {
            assert!(line.starts_with("    "));
        }
    }
}
