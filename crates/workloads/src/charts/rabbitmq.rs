//! The RabbitMQ operator chart (modelled on `bitnami/rabbitmq`).
//!
//! Resource footprint (Figure 9): StatefulSet, Service, NetworkPolicy,
//! Ingress, ServiceAccount, PodDisruptionBudget, Secret, Role and RoleBinding.

use helm_lite::{Chart, ChartMetadata, TemplateFile, ValuesFile};

use super::common;

/// Default values of the chart.
pub const VALUES: &str = r#"image:
  registry: docker.io
  repository: bitnami/rabbitmq
  tag: 3.12.13
  # @options: IfNotPresent | Always
  pullPolicy: IfNotPresent
replicaCount: 3
auth:
  username: user
  password: changeme-rabbit
  erlangCookie: secretcookie
clustering:
  enabled: true
  # @options: hostname | ip
  addressType: hostname
ports:
  amqp: 5672
  manager: 15672
  epmd: 4369
service:
  # @options: ClusterIP | NodePort
  type: ClusterIP
ingress:
  enabled: true
  hostname: rabbitmq.example.com
  path: /
resources:
  limits:
    cpu: 1000m
    memory: 2Gi
  requests:
    cpu: 500m
    memory: 1Gi
podSecurityContext:
  fsGroup: 1001
containerSecurityContext:
  runAsNonRoot: true
  runAsUser: 1001
  allowPrivilegeEscalation: false
  readOnlyRootFilesystem: true
serviceAccount:
  automountToken: true
networkPolicy:
  enabled: true
pdb:
  create: true
  maxUnavailable: 1
rbac:
  create: true
persistence:
  size: 8Gi
  storageClass: standard
"#;

const STATEFULSET: &str = r#"apiVersion: apps/v1
kind: StatefulSet
metadata:
  name: {{ include "rabbitmq.fullname" . }}
  labels:
    app.kubernetes.io/name: rabbitmq
    app.kubernetes.io/instance: {{ .Release.Name }}
spec:
  replicas: {{ .Values.replicaCount }}
  serviceName: {{ include "rabbitmq.fullname" . }}-headless
  podManagementPolicy: OrderedReady
  updateStrategy:
    type: RollingUpdate
  selector:
    matchLabels:
      app.kubernetes.io/name: rabbitmq
      app.kubernetes.io/instance: {{ .Release.Name }}
  template:
    metadata:
      labels:
        app.kubernetes.io/name: rabbitmq
        app.kubernetes.io/instance: {{ .Release.Name }}
    spec:
      serviceAccountName: {{ include "rabbitmq.serviceAccountName" . }}
      automountServiceAccountToken: {{ .Values.serviceAccount.automountToken }}
      terminationGracePeriodSeconds: 120
      securityContext:
        fsGroup: {{ .Values.podSecurityContext.fsGroup }}
      containers:
        - name: rabbitmq
          image: "{{ .Values.image.registry }}/{{ .Values.image.repository }}:{{ .Values.image.tag }}"
          imagePullPolicy: {{ .Values.image.pullPolicy }}
          ports:
            - name: amqp
              containerPort: {{ .Values.ports.amqp }}
            - name: manager
              containerPort: {{ .Values.ports.manager }}
            - name: epmd
              containerPort: {{ .Values.ports.epmd }}
          env:
            - name: RABBITMQ_USERNAME
              value: {{ .Values.auth.username }}
            - name: RABBITMQ_PASSWORD
              valueFrom:
                secretKeyRef:
                  name: {{ include "rabbitmq.fullname" . }}
                  key: rabbitmq-password
            - name: RABBITMQ_ERL_COOKIE
              valueFrom:
                secretKeyRef:
                  name: {{ include "rabbitmq.fullname" . }}
                  key: rabbitmq-erlang-cookie
            {{- if .Values.clustering.enabled }}
            - name: RABBITMQ_CLUSTER_ADDRESS_TYPE
              value: {{ .Values.clustering.addressType }}
            {{- end }}
          securityContext:
            runAsNonRoot: {{ .Values.containerSecurityContext.runAsNonRoot }}
            runAsUser: {{ .Values.containerSecurityContext.runAsUser }}
            allowPrivilegeEscalation: {{ .Values.containerSecurityContext.allowPrivilegeEscalation }}
            readOnlyRootFilesystem: {{ .Values.containerSecurityContext.readOnlyRootFilesystem }}
          resources:
            {{- toYaml .Values.resources | nindent 12 }}
          livenessProbe:
            exec:
              command:
                - rabbitmq-diagnostics
                - status
            initialDelaySeconds: 120
            periodSeconds: 30
          readinessProbe:
            exec:
              command:
                - rabbitmq-diagnostics
                - ping
            initialDelaySeconds: 10
            periodSeconds: 30
          volumeMounts:
            - name: data
              mountPath: /bitnami/rabbitmq/mnesia
  volumeClaimTemplates:
    - metadata:
        name: data
      spec:
        accessModes:
          - ReadWriteOnce
        storageClassName: {{ .Values.persistence.storageClass }}
        resources:
          requests:
            storage: {{ .Values.persistence.size }}
"#;

const SERVICE: &str = r#"apiVersion: v1
kind: Service
metadata:
  name: {{ include "rabbitmq.fullname" . }}
  labels:
    app.kubernetes.io/name: rabbitmq
    app.kubernetes.io/instance: {{ .Release.Name }}
spec:
  type: {{ .Values.service.type }}
  ports:
    - name: amqp
      port: {{ .Values.ports.amqp }}
      targetPort: amqp
    - name: manager
      port: {{ .Values.ports.manager }}
      targetPort: manager
  selector:
    app.kubernetes.io/name: rabbitmq
    app.kubernetes.io/instance: {{ .Release.Name }}
---
apiVersion: v1
kind: Service
metadata:
  name: {{ include "rabbitmq.fullname" . }}-headless
  labels:
    app.kubernetes.io/name: rabbitmq
    app.kubernetes.io/instance: {{ .Release.Name }}
spec:
  type: ClusterIP
  clusterIP: None
  ports:
    - name: epmd
      port: {{ .Values.ports.epmd }}
      targetPort: epmd
    - name: amqp
      port: {{ .Values.ports.amqp }}
      targetPort: amqp
  selector:
    app.kubernetes.io/name: rabbitmq
    app.kubernetes.io/instance: {{ .Release.Name }}
"#;

const SECRET: &str = r#"apiVersion: v1
kind: Secret
metadata:
  name: {{ include "rabbitmq.fullname" . }}
  labels:
    app.kubernetes.io/name: rabbitmq
    app.kubernetes.io/instance: {{ .Release.Name }}
type: Opaque
data:
  rabbitmq-password: {{ .Values.auth.password | b64enc }}
  rabbitmq-erlang-cookie: {{ .Values.auth.erlangCookie | b64enc }}
"#;

const NETWORK_POLICY: &str = r#"{{- if .Values.networkPolicy.enabled }}
apiVersion: networking.k8s.io/v1
kind: NetworkPolicy
metadata:
  name: {{ include "rabbitmq.fullname" . }}
  labels:
    app.kubernetes.io/name: rabbitmq
    app.kubernetes.io/instance: {{ .Release.Name }}
spec:
  podSelector:
    matchLabels:
      app.kubernetes.io/name: rabbitmq
      app.kubernetes.io/instance: {{ .Release.Name }}
  policyTypes:
    - Ingress
  ingress:
    - ports:
        - port: {{ .Values.ports.amqp }}
        - port: {{ .Values.ports.manager }}
        - port: {{ .Values.ports.epmd }}
{{- end }}
"#;

const INGRESS: &str = r#"{{- if .Values.ingress.enabled }}
apiVersion: networking.k8s.io/v1
kind: Ingress
metadata:
  name: {{ include "rabbitmq.fullname" . }}
  labels:
    app.kubernetes.io/name: rabbitmq
    app.kubernetes.io/instance: {{ .Release.Name }}
spec:
  rules:
    - host: {{ .Values.ingress.hostname }}
      http:
        paths:
          - path: {{ .Values.ingress.path }}
            pathType: ImplementationSpecific
            backend:
              service:
                name: {{ include "rabbitmq.fullname" . }}
                port:
                  name: manager
{{- end }}
"#;

const PDB: &str = r#"{{- if .Values.pdb.create }}
apiVersion: policy/v1
kind: PodDisruptionBudget
metadata:
  name: {{ include "rabbitmq.fullname" . }}
  labels:
    app.kubernetes.io/name: rabbitmq
    app.kubernetes.io/instance: {{ .Release.Name }}
spec:
  maxUnavailable: {{ .Values.pdb.maxUnavailable }}
  selector:
    matchLabels:
      app.kubernetes.io/name: rabbitmq
      app.kubernetes.io/instance: {{ .Release.Name }}
{{- end }}
"#;

const RBAC: &str = r#"{{- if .Values.rbac.create }}
apiVersion: rbac.authorization.k8s.io/v1
kind: Role
metadata:
  name: {{ include "rabbitmq.fullname" . }}-endpoint-reader
  labels:
    app.kubernetes.io/name: rabbitmq
    app.kubernetes.io/instance: {{ .Release.Name }}
rules:
  - apiGroups:
      - ""
    resources:
      - endpoints
    verbs:
      - get
  - apiGroups:
      - ""
    resources:
      - events
    verbs:
      - create
---
apiVersion: rbac.authorization.k8s.io/v1
kind: RoleBinding
metadata:
  name: {{ include "rabbitmq.fullname" . }}-endpoint-reader
  labels:
    app.kubernetes.io/name: rabbitmq
    app.kubernetes.io/instance: {{ .Release.Name }}
roleRef:
  apiGroup: rbac.authorization.k8s.io
  kind: Role
  name: {{ include "rabbitmq.fullname" . }}-endpoint-reader
subjects:
  - kind: ServiceAccount
    name: {{ include "rabbitmq.serviceAccountName" . }}
    namespace: {{ .Release.Namespace }}
{{- end }}
"#;

/// Build the RabbitMQ chart.
pub fn chart() -> Chart {
    Chart::new(
        ChartMetadata::new("rabbitmq", "12.15.0").with_app_version("3.12.13"),
        ValuesFile::parse(VALUES).expect("built-in values must parse"),
        vec![
            common::helpers_tpl("rabbitmq"),
            common::service_account_template("rabbitmq"),
            TemplateFile::new("secret.yaml", SECRET),
            TemplateFile::new("statefulset.yaml", STATEFULSET),
            TemplateFile::new("service.yaml", SERVICE),
            TemplateFile::new("networkpolicy.yaml", NETWORK_POLICY),
            TemplateFile::new("ingress.yaml", INGRESS),
            TemplateFile::new("pdb.yaml", PDB),
            TemplateFile::new("rbac.yaml", RBAC),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use helm_lite::render_chart;
    use kf_yaml::Path;

    #[test]
    fn default_rendering_contains_the_expected_kinds() {
        let manifests = render_chart(&chart(), None, "mq").unwrap();
        let kinds: Vec<_> = manifests.iter().filter_map(|m| m.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                "ServiceAccount",
                "Secret",
                "StatefulSet",
                "Service",
                "Service",
                "NetworkPolicy",
                "Ingress",
                "PodDisruptionBudget",
                "Role",
                "RoleBinding"
            ]
        );
    }

    #[test]
    fn statefulset_runs_three_hardened_replicas() {
        let manifests = render_chart(&chart(), None, "mq").unwrap();
        let sts = manifests
            .iter()
            .find(|m| m.kind() == Some("StatefulSet"))
            .unwrap();
        assert_eq!(
            sts.document
                .get_path(&Path::parse("spec.replicas").unwrap())
                .and_then(|v| v.as_i64()),
            Some(3)
        );
        assert_eq!(
            sts.document
                .get_path(
                    &Path::parse(
                        "spec.template.spec.containers[0].securityContext.readOnlyRootFilesystem"
                    )
                    .unwrap()
                )
                .and_then(|v| v.as_bool()),
            Some(true)
        );
    }

    #[test]
    fn cluster_address_type_follows_the_annotation_options() {
        let values = chart();
        let options = values
            .values()
            .options_for("clustering.addressType")
            .unwrap();
        assert_eq!(options.len(), 2);
        let overrides = kf_yaml::parse("clustering:\n  addressType: ip\n").unwrap();
        let manifests = render_chart(&chart(), Some(&overrides), "mq").unwrap();
        let sts = manifests
            .iter()
            .find(|m| m.kind() == Some("StatefulSet"))
            .unwrap();
        let env = sts
            .document
            .get_path(&Path::parse("spec.template.spec.containers[0].env").unwrap())
            .unwrap();
        let address = env
            .as_seq()
            .unwrap()
            .iter()
            .find(|e| {
                e.get("name").and_then(kf_yaml::Value::as_str)
                    == Some("RABBITMQ_CLUSTER_ADDRESS_TYPE")
            })
            .unwrap();
        assert_eq!(address.get("value").unwrap().as_str(), Some("ip"));
    }
}
