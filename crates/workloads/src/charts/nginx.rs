//! The Nginx operator chart (modelled on `bitnami/nginx`).
//!
//! Resource footprint (Figure 9): Deployment, Service, NetworkPolicy,
//! ServiceAccount, HorizontalPodAutoscaler and PodDisruptionBudget.

use helm_lite::{Chart, ChartMetadata, TemplateFile, ValuesFile};

use super::common;

/// Default values of the chart.
pub const VALUES: &str = r#"replicaCount: 2
image:
  registry: docker.io
  repository: bitnami/nginx
  tag: 1.25.3-debian-11-r2
  # @options: IfNotPresent | Always
  pullPolicy: IfNotPresent
  pullSecrets:
    - name: regcred
containerPorts:
  http: 8080
  https: 8443
service:
  # @options: ClusterIP | LoadBalancer
  type: LoadBalancer
  ports:
    http: 80
    https: 443
resources:
  limits:
    cpu: 500m
    memory: 512Mi
  requests:
    cpu: 250m
    memory: 256Mi
podSecurityContext:
  fsGroup: 1001
containerSecurityContext:
  runAsNonRoot: true
  runAsUser: 1001
  allowPrivilegeEscalation: false
  readOnlyRootFilesystem: true
serviceAccount:
  automountToken: false
networkPolicy:
  enabled: true
  allowExternal: true
autoscaling:
  enabled: true
  minReplicas: 2
  maxReplicas: 6
  targetCPU: 75
pdb:
  create: true
  minAvailable: 1
"#;

const DEPLOYMENT: &str = r#"apiVersion: apps/v1
kind: Deployment
metadata:
  name: {{ include "nginx.fullname" . }}
  labels:
    app.kubernetes.io/name: nginx
    app.kubernetes.io/instance: {{ .Release.Name }}
spec:
  replicas: {{ .Values.replicaCount }}
  selector:
    matchLabels:
      app.kubernetes.io/name: nginx
      app.kubernetes.io/instance: {{ .Release.Name }}
  strategy:
    type: RollingUpdate
  template:
    metadata:
      labels:
        app.kubernetes.io/name: nginx
        app.kubernetes.io/instance: {{ .Release.Name }}
    spec:
      serviceAccountName: {{ include "nginx.serviceAccountName" . }}
      automountServiceAccountToken: {{ .Values.serviceAccount.automountToken }}
      securityContext:
        fsGroup: {{ .Values.podSecurityContext.fsGroup }}
      {{- if .Values.image.pullSecrets }}
      imagePullSecrets:
        {{- toYaml .Values.image.pullSecrets | nindent 8 }}
      {{- end }}
      containers:
        - name: nginx
          image: "{{ .Values.image.registry }}/{{ .Values.image.repository }}:{{ .Values.image.tag }}"
          imagePullPolicy: {{ .Values.image.pullPolicy }}
          ports:
            - name: http
              containerPort: {{ .Values.containerPorts.http }}
              protocol: TCP
            - name: https
              containerPort: {{ .Values.containerPorts.https }}
              protocol: TCP
          securityContext:
            runAsNonRoot: {{ .Values.containerSecurityContext.runAsNonRoot }}
            runAsUser: {{ .Values.containerSecurityContext.runAsUser }}
            allowPrivilegeEscalation: {{ .Values.containerSecurityContext.allowPrivilegeEscalation }}
            readOnlyRootFilesystem: {{ .Values.containerSecurityContext.readOnlyRootFilesystem }}
          resources:
            {{- toYaml .Values.resources | nindent 12 }}
          livenessProbe:
            httpGet:
              path: /
              port: http
            initialDelaySeconds: 10
            periodSeconds: 10
          readinessProbe:
            tcpSocket:
              port: http
            initialDelaySeconds: 5
            periodSeconds: 5
          volumeMounts:
            - name: tmp
              mountPath: /tmp
      volumes:
        - name: tmp
          emptyDir: {}
"#;

const SERVICE: &str = r#"apiVersion: v1
kind: Service
metadata:
  name: {{ include "nginx.fullname" . }}
  labels:
    app.kubernetes.io/name: nginx
    app.kubernetes.io/instance: {{ .Release.Name }}
spec:
  type: {{ .Values.service.type }}
  {{- if eq .Values.service.type "LoadBalancer" }}
  externalTrafficPolicy: Local
  {{- end }}
  ports:
    - name: http
      port: {{ .Values.service.ports.http }}
      targetPort: http
      protocol: TCP
    - name: https
      port: {{ .Values.service.ports.https }}
      targetPort: https
      protocol: TCP
  selector:
    app.kubernetes.io/name: nginx
    app.kubernetes.io/instance: {{ .Release.Name }}
"#;

const NETWORK_POLICY: &str = r#"{{- if .Values.networkPolicy.enabled }}
apiVersion: networking.k8s.io/v1
kind: NetworkPolicy
metadata:
  name: {{ include "nginx.fullname" . }}
  labels:
    app.kubernetes.io/name: nginx
    app.kubernetes.io/instance: {{ .Release.Name }}
spec:
  podSelector:
    matchLabels:
      app.kubernetes.io/name: nginx
      app.kubernetes.io/instance: {{ .Release.Name }}
  policyTypes:
    - Ingress
  ingress:
    - ports:
        - port: {{ .Values.containerPorts.http }}
        - port: {{ .Values.containerPorts.https }}
      {{- if not .Values.networkPolicy.allowExternal }}
      from:
        - podSelector:
            matchLabels:
              app.kubernetes.io/instance: {{ .Release.Name }}
      {{- end }}
{{- end }}
"#;

const HPA: &str = r#"{{- if .Values.autoscaling.enabled }}
apiVersion: autoscaling/v2
kind: HorizontalPodAutoscaler
metadata:
  name: {{ include "nginx.fullname" . }}
  labels:
    app.kubernetes.io/name: nginx
    app.kubernetes.io/instance: {{ .Release.Name }}
spec:
  scaleTargetRef:
    apiVersion: apps/v1
    kind: Deployment
    name: {{ include "nginx.fullname" . }}
  minReplicas: {{ .Values.autoscaling.minReplicas }}
  maxReplicas: {{ .Values.autoscaling.maxReplicas }}
  metrics:
    - type: Resource
      resource:
        name: cpu
        target:
          type: Utilization
          averageUtilization: {{ .Values.autoscaling.targetCPU }}
{{- end }}
"#;

const PDB: &str = r#"{{- if .Values.pdb.create }}
apiVersion: policy/v1
kind: PodDisruptionBudget
metadata:
  name: {{ include "nginx.fullname" . }}
  labels:
    app.kubernetes.io/name: nginx
    app.kubernetes.io/instance: {{ .Release.Name }}
spec:
  minAvailable: {{ .Values.pdb.minAvailable }}
  selector:
    matchLabels:
      app.kubernetes.io/name: nginx
      app.kubernetes.io/instance: {{ .Release.Name }}
{{- end }}
"#;

/// Build the Nginx chart.
pub fn chart() -> Chart {
    Chart::new(
        ChartMetadata::new("nginx", "15.14.0").with_app_version("1.25.3"),
        ValuesFile::parse(VALUES).expect("built-in values must parse"),
        vec![
            common::helpers_tpl("nginx"),
            common::service_account_template("nginx"),
            TemplateFile::new("deployment.yaml", DEPLOYMENT),
            TemplateFile::new("service.yaml", SERVICE),
            TemplateFile::new("networkpolicy.yaml", NETWORK_POLICY),
            TemplateFile::new("hpa.yaml", HPA),
            TemplateFile::new("pdb.yaml", PDB),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use helm_lite::render_chart;
    use kf_yaml::Path;

    #[test]
    fn default_rendering_contains_the_expected_kinds() {
        let manifests = render_chart(&chart(), None, "web").unwrap();
        let kinds: Vec<_> = manifests.iter().filter_map(|m| m.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                "ServiceAccount",
                "Deployment",
                "Service",
                "NetworkPolicy",
                "HorizontalPodAutoscaler",
                "PodDisruptionBudget"
            ]
        );
    }

    #[test]
    fn deployment_pins_the_hardened_security_context() {
        let manifests = render_chart(&chart(), None, "web").unwrap();
        let deployment = manifests
            .iter()
            .find(|m| m.kind() == Some("Deployment"))
            .unwrap();
        let run_as_non_root = deployment
            .document
            .get_path(
                &Path::parse("spec.template.spec.containers[0].securityContext.runAsNonRoot")
                    .unwrap(),
            )
            .unwrap();
        assert_eq!(run_as_non_root.as_bool(), Some(true));
        let image = deployment
            .document
            .get_path(&Path::parse("spec.template.spec.containers[0].image").unwrap())
            .unwrap();
        assert_eq!(
            image.as_str(),
            Some("docker.io/bitnami/nginx:1.25.3-debian-11-r2")
        );
    }

    #[test]
    fn load_balancer_condition_follows_the_service_type() {
        let manifests = render_chart(&chart(), None, "web").unwrap();
        let service = manifests
            .iter()
            .find(|m| m.kind() == Some("Service"))
            .unwrap();
        assert_eq!(
            service
                .document
                .get_path(&Path::parse("spec.externalTrafficPolicy").unwrap())
                .and_then(|v| v.as_str()),
            Some("Local")
        );
        let cluster_ip = kf_yaml::parse("service:\n  type: ClusterIP\n").unwrap();
        let manifests = helm_lite::render_chart(&chart(), Some(&cluster_ip), "web").unwrap();
        let service = manifests
            .iter()
            .find(|m| m.kind() == Some("Service"))
            .unwrap();
        assert!(service
            .document
            .get_path(&Path::parse("spec.externalTrafficPolicy").unwrap())
            .is_none());
    }

    #[test]
    fn disabling_optional_features_removes_their_manifests() {
        let overrides = kf_yaml::parse(
            "networkPolicy:\n  enabled: false\nautoscaling:\n  enabled: false\npdb:\n  create: false\n",
        )
        .unwrap();
        let manifests = helm_lite::render_chart(&chart(), Some(&overrides), "web").unwrap();
        let kinds: Vec<_> = manifests.iter().filter_map(|m| m.kind()).collect();
        assert_eq!(kinds, vec!["ServiceAccount", "Deployment", "Service"]);
    }
}
