//! The Kubernetes end-to-end test corpus model (Figure 5, Section III-C).
//!
//! The paper runs the upstream e2e suites (6,580 tests over 12 categories,
//! Windows and disruptive tests excluded) under coverage instrumentation and
//! cross-references the covered lines with the files patched by each of the
//! 49 CVEs. The finding: only 29 tests (<0.5%) reach vulnerable code at all,
//! and 46 of the 49 CVEs are reached by none.
//!
//! We cannot run the upstream Go test suite here, so this module models the
//! corpus (per `DESIGN.md`): the same category sizes, one feature profile per
//! test, and a CVE → trigger-feature mapping calibrated so the published
//! relationship holds. The *shape* of Figure 5 — which categories reach which
//! CVEs, and how rare that is — is what the `fig5_e2e_coverage` benchmark
//! regenerates.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use k8s_model::cve::CveDatabase;
use k8s_model::Component;

/// The e2e test categories of the paper (12 categories; Windows and
/// disruptive tests are excluded as in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum E2eCategory {
    Apps,
    Auth,
    Autoscaling,
    Apimachinery,
    Instrumentation,
    Kubectl,
    Lifecycle,
    Network,
    Node,
    Scheduling,
    ServiceAccounts,
    Storage,
}

impl E2eCategory {
    /// All categories, in display order.
    pub const ALL: [E2eCategory; 12] = [
        E2eCategory::Apps,
        E2eCategory::Auth,
        E2eCategory::Autoscaling,
        E2eCategory::Apimachinery,
        E2eCategory::Instrumentation,
        E2eCategory::Kubectl,
        E2eCategory::Lifecycle,
        E2eCategory::Network,
        E2eCategory::Node,
        E2eCategory::Scheduling,
        E2eCategory::ServiceAccounts,
        E2eCategory::Storage,
    ];

    /// Display name.
    pub fn as_str(&self) -> &'static str {
        match self {
            E2eCategory::Apps => "apps",
            E2eCategory::Auth => "auth",
            E2eCategory::Autoscaling => "autoscaling",
            E2eCategory::Apimachinery => "apimachinery",
            E2eCategory::Instrumentation => "instrumentation",
            E2eCategory::Kubectl => "kubectl",
            E2eCategory::Lifecycle => "lifecycle",
            E2eCategory::Network => "network",
            E2eCategory::Node => "node",
            E2eCategory::Scheduling => "scheduling",
            E2eCategory::ServiceAccounts => "serviceaccounts",
            E2eCategory::Storage => "storage",
        }
    }

    /// Number of tests in the category. The distribution is heavily skewed
    /// towards storage, as in the paper (6,580 tests in total, 960 outside
    /// storage).
    pub fn test_count(&self) -> usize {
        match self {
            E2eCategory::Apps => 180,
            E2eCategory::Auth => 40,
            E2eCategory::Autoscaling => 60,
            E2eCategory::Apimachinery => 150,
            E2eCategory::Instrumentation => 30,
            E2eCategory::Kubectl => 90,
            E2eCategory::Lifecycle => 50,
            E2eCategory::Network => 170,
            E2eCategory::Node => 110,
            E2eCategory::Scheduling => 60,
            E2eCategory::ServiceAccounts => 20,
            E2eCategory::Storage => 5620,
        }
    }

    /// The components a test of this category predominantly exercises.
    pub fn exercised_components(&self) -> &'static [Component] {
        match self {
            E2eCategory::Apps => &[Component::ApiServer, Component::Scheduler],
            E2eCategory::Auth => &[Component::ApiServer, Component::SecurityFeatures],
            E2eCategory::Autoscaling => &[Component::ApiServer, Component::Scheduler],
            E2eCategory::Apimachinery => &[Component::ApiServer, Component::Etcd],
            E2eCategory::Instrumentation => &[Component::ApiServer],
            E2eCategory::Kubectl => &[Component::Kubectl, Component::ApiServer],
            E2eCategory::Lifecycle => &[Component::Kubelet, Component::ApiServer],
            E2eCategory::Network => &[Component::Networking],
            E2eCategory::Node => &[Component::Kubelet, Component::SecurityFeatures],
            E2eCategory::Scheduling => &[Component::Scheduler],
            E2eCategory::ServiceAccounts => &[Component::AdmissionControllers],
            E2eCategory::Storage => &[Component::Storage, Component::Kubelet],
        }
    }
}

/// One e2e test of the corpus.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct E2eTest {
    /// Test identifier (`<category>-<index>`).
    pub id: String,
    /// Category the test belongs to.
    pub category: E2eCategory,
    /// CVEs whose vulnerable files the test covers (empty for almost every
    /// test).
    pub covered_cves: Vec<String>,
}

/// The calibrated CVE coverage of the corpus: (CVE id, category, number of
/// tests in that category that reach the vulnerable code). These are the
/// non-zero cells of Figure 5; they sum to 29 tests, 8 of which are in the
/// storage category.
pub const CVE_COVERAGE: [(&str, E2eCategory, usize); 3] = [
    ("CVE-2023-2431", E2eCategory::Storage, 2),
    ("CVE-2017-1002101", E2eCategory::Storage, 6),
    ("CVE-2020-8554", E2eCategory::Network, 21),
];

/// The e2e corpus: all tests with their coverage annotations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E2eCorpus {
    tests: Vec<E2eTest>,
}

impl Default for E2eCorpus {
    fn default() -> Self {
        E2eCorpus::generate()
    }
}

impl E2eCorpus {
    /// Build the corpus deterministically from the category sizes and the
    /// calibrated coverage table.
    pub fn generate() -> Self {
        // Assign each CVE a disjoint range of test indices within its
        // category, so the 29 covering tests are 29 distinct tests.
        let mut ranges: BTreeMap<E2eCategory, Vec<(String, usize, usize)>> = BTreeMap::new();
        for (cve, category, count) in CVE_COVERAGE {
            let slots = ranges.entry(category).or_default();
            let start = slots.last().map(|(_, _, end)| *end).unwrap_or(0);
            slots.push(((*cve).to_owned(), start, start + count));
        }
        let mut tests = Vec::new();
        for category in E2eCategory::ALL {
            let slots = ranges.get(&category);
            for index in 0..category.test_count() {
                let covered_cves: Vec<String> = slots
                    .map(|slots| {
                        slots
                            .iter()
                            .filter(|(_, start, end)| index >= *start && index < *end)
                            .map(|(cve, _, _)| cve.clone())
                            .collect()
                    })
                    .unwrap_or_default();
                tests.push(E2eTest {
                    id: format!("{}-{index:04}", category.as_str()),
                    category,
                    covered_cves,
                });
            }
        }
        E2eCorpus { tests }
    }

    /// All tests.
    pub fn tests(&self) -> &[E2eTest] {
        &self.tests
    }

    /// Total number of tests (6,580 in the paper).
    pub fn total_tests(&self) -> usize {
        self.tests.len()
    }

    /// The tests that reach CVE-affected code.
    pub fn tests_covering_vulnerable_code(&self) -> Vec<&E2eTest> {
        self.tests
            .iter()
            .filter(|t| !t.covered_cves.is_empty())
            .collect()
    }

    /// The Figure 5 matrix: per CVE (rows, only CVEs reached by at least one
    /// test), the number of covering tests per category (columns).
    pub fn coverage_matrix(&self) -> BTreeMap<String, BTreeMap<E2eCategory, usize>> {
        let mut matrix: BTreeMap<String, BTreeMap<E2eCategory, usize>> = BTreeMap::new();
        for test in &self.tests {
            for cve in &test.covered_cves {
                *matrix
                    .entry(cve.clone())
                    .or_default()
                    .entry(test.category)
                    .or_insert(0) += 1;
            }
        }
        matrix
    }

    /// The number of CVEs in the database that no e2e test reaches (46 of 49
    /// in the paper).
    pub fn uncovered_cve_count(&self, database: &CveDatabase) -> usize {
        let covered = self.coverage_matrix();
        database
            .records()
            .iter()
            .filter(|r| !covered.contains_key(&r.id))
            .count()
    }

    /// Render the Figure 5 matrix as fixed-width text.
    pub fn to_matrix_text(&self) -> String {
        let matrix = self.coverage_matrix();
        let mut out = String::new();
        out.push_str(&format!("{:<20}", "CVE"));
        for category in E2eCategory::ALL {
            out.push_str(&format!(" {:>15}", category.as_str()));
        }
        out.push('\n');
        for (cve, row) in &matrix {
            out.push_str(&format!("{cve:<20}"));
            for category in E2eCategory::ALL {
                out.push_str(&format!(
                    " {:>15}",
                    row.get(&category).copied().unwrap_or(0)
                ));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_size_matches_the_paper() {
        let corpus = E2eCorpus::generate();
        assert_eq!(corpus.total_tests(), 6580);
        let outside_storage: usize = E2eCategory::ALL
            .iter()
            .filter(|c| **c != E2eCategory::Storage)
            .map(|c| c.test_count())
            .sum();
        assert_eq!(outside_storage, 960);
    }

    #[test]
    fn only_a_tiny_fraction_of_tests_reach_vulnerable_code() {
        let corpus = E2eCorpus::generate();
        let covering = corpus.tests_covering_vulnerable_code();
        assert_eq!(covering.len(), 29);
        let fraction = covering.len() as f64 / corpus.total_tests() as f64;
        assert!(fraction < 0.005, "fraction = {fraction}");
        // Outside storage: 21 of 960 (~2%).
        let outside_storage = covering
            .iter()
            .filter(|t| t.category != E2eCategory::Storage)
            .count();
        assert_eq!(outside_storage, 21);
    }

    #[test]
    fn coverage_matrix_has_three_reached_cves() {
        let corpus = E2eCorpus::generate();
        let matrix = corpus.coverage_matrix();
        assert_eq!(matrix.len(), 3);
        assert_eq!(matrix["CVE-2023-2431"][&E2eCategory::Storage], 2);
        assert_eq!(matrix["CVE-2020-8554"][&E2eCategory::Network], 21);
    }

    #[test]
    fn the_remaining_cves_are_never_reached() {
        let corpus = E2eCorpus::generate();
        let db = CveDatabase::new();
        assert_eq!(corpus.uncovered_cve_count(&db), db.len() - 3);
    }

    #[test]
    fn matrix_text_lists_all_categories() {
        let text = E2eCorpus::generate().to_matrix_text();
        for category in E2eCategory::ALL {
            assert!(text.contains(category.as_str()));
        }
    }
}
