//! The chaos workload: seeded fault schedules driven through a durable API
//! server, with recovery invariants asserted after every crash.
//!
//! A [`ChaosDriver`] run is one experiment: open a WAL-backed server over a
//! [`FaultyIo`] carrying a seed-derived [`FaultSchedule`], drive a
//! create/update/delete mix through the *front door*
//! ([`RequestHandler::handle`], so the degradation policy and health
//! surface are exercised, not bypassed), keep a transcript of every
//! **acknowledged** write (key, resource version, body handle — read back
//! via get-after-write), then crash and reopen over clean I/O. The
//! invariants checked against the transcript are the robustness plane's
//! contract (`docs/robustness.md`):
//!
//! 1. **Durability never overstates.** The `durable_revision` claimed
//!    before the crash is `<=` the revision actually recovered from disk.
//! 2. **Byte-identical recovery.** Replaying the transcript up to the
//!    recovered revision reproduces the recovered store exactly — same
//!    object count, same resource versions, same document trees.
//! 3. **Losses are observed losses.** If any acknowledged write did not
//!    survive (possible under `fail-open`), the health surface must have
//!    shown it: a degraded/fail-stop state, a latched error, or a recorded
//!    transition. Silent loss is a violation.
//! 4. **Fail-stop is structured.** A run ending in `FailStop` must carry a
//!    structured latched error.
//! 5. **The server comes back.** A write against the recovered store is
//!    accepted at a fresh revision.
//!
//! Under [`DegradePolicy::FailClosed`] the run additionally proves the
//! serving contract mid-degradation: mutating requests answer `503` while
//! a list keeps answering `200`.
//!
//! [`ChaosDriver::sweep`] fans one base seed into N schedules × both
//! policies — the CI parity job runs it at a fixed `KF_CHAOS_SEED` and
//! prints [`ChaosReport::summary`] to the step summary.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

use k8s_apiserver::persist::{PersistConfig, Persistence, RetryPolicy};
use k8s_apiserver::storage_io::{FaultSchedule, FaultyIo};
use k8s_apiserver::{
    ApiRequest, ApiServer, DegradePolicy, DurabilityState, FsyncPolicy, RequestHandler,
    ResponseStatus, StoreBackend,
};
use k8s_model::{K8sObject, ResourceKind};
use kf_yaml::Value;

/// The namespace every chaos object lives in.
const NAMESPACE: &str = "chaos";
/// Write operations driven per run.
const OPS: u64 = 24;
/// Distinct object names cycled through (small enough that updates and
/// deletes hit existing keys).
const NAMES: u64 = 10;
/// Consecutive failures before the WAL fail-stops in a chaos run (small
/// and deterministic: with [`RetryPolicy::immediate`] transitions are a
/// pure function of the fault schedule).
const FAIL_STOP_AFTER: u32 = 4;

/// One transcript entry: what the server acknowledged, read back through
/// the store so the recorded body is the exact stored tree.
#[derive(Debug, Clone)]
struct LogEntry {
    revision: u64,
    name: String,
    /// `None` records a deletion.
    body: Option<Arc<Value>>,
    resource_version: u64,
}

/// The verdict of one seeded chaos run.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// The seed the fault schedule was derived from.
    pub seed: u64,
    /// The schedule, in its parseable spec form (empty: no faults drawn).
    pub schedule: String,
    /// The degradation policy the server ran under.
    pub policy: DegradePolicy,
    /// The fsync policy the run used (derived from the seed's parity).
    pub fsync: FsyncPolicy,
    /// Write operations attempted through the front door.
    pub ops_attempted: u64,
    /// Writes the server acknowledged (2xx).
    pub ops_acknowledged: u64,
    /// Mutating requests rejected with `503` (fail-closed under
    /// degradation).
    pub rejected_writes: u64,
    /// Faults the schedule actually injected.
    pub injected_faults: u64,
    /// The durability state when the run crashed.
    pub final_state: DurabilityState,
    /// State-machine transitions recorded before the crash.
    pub transitions: usize,
    /// The latched error at crash time, rendered (`None` when healthy).
    pub latched: Option<String>,
    /// `durable_revision` claimed immediately before the crash.
    pub durable_claimed: u64,
    /// Highest revision the server acknowledged to a client.
    pub acked_revision: u64,
    /// The revision recovery actually rebuilt from disk.
    pub recovered_revision: u64,
    /// Objects in the recovered store.
    pub recovered_objects: usize,
    /// Shared group-commit fsyncs the run issued (0 off `group`).
    pub fsync_batches: u64,
    /// Mean records per shared fsync (0.0 off `group`).
    pub avg_group_size: f64,
    /// Store shards the mid-run checkpoint claimed (0 when it never ran
    /// or failed).
    pub checkpoint_dirty_shards: usize,
    /// Invariant violations (empty: the run is green).
    pub violations: Vec<String>,
}

impl ChaosOutcome {
    /// Whether every invariant held.
    pub fn green(&self) -> bool {
        self.violations.is_empty()
    }
}

/// A full sweep's outcomes.
#[derive(Debug, Clone, Default)]
pub struct ChaosReport {
    /// One outcome per (seed, policy) run.
    pub outcomes: Vec<ChaosOutcome>,
}

impl ChaosReport {
    /// Whether every run in the sweep was green.
    pub fn all_green(&self) -> bool {
        self.outcomes.iter().all(ChaosOutcome::green)
    }

    /// A fixed-width table of every run — what the CI parity job prints to
    /// the step summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>6} {:<11} {:<9} {:>5} {:>5} {:>4} {:>4} {:<9} {:>7} {:>7} {:>6} {:>6} {:>5} {:>9}  schedule",
            "seed",
            "policy",
            "fsync",
            "acked",
            "503s",
            "inj",
            "trans",
            "state",
            "durable",
            "recov",
            "fsyncB",
            "avgGrp",
            "dirty",
            "verdict"
        );
        for o in &self.outcomes {
            let fsync = match o.fsync {
                FsyncPolicy::Always => "always".to_owned(),
                FsyncPolicy::Batch(n) => format!("batch:{n}"),
                FsyncPolicy::Os => "os".to_owned(),
                FsyncPolicy::Group {
                    max_wait_us,
                    max_batch,
                } => format!("group:{max_wait_us}:{max_batch}"),
            };
            let _ = writeln!(
                out,
                "{:>6} {:<11} {:<9} {:>5} {:>5} {:>4} {:>4} {:<9} {:>7} {:>7} {:>6} {:>6.1} {:>5} {:>9}  {}",
                o.seed,
                o.policy.to_string(),
                fsync,
                o.ops_acknowledged,
                o.rejected_writes,
                o.injected_faults,
                o.transitions,
                o.final_state.to_string(),
                o.durable_claimed,
                o.recovered_revision,
                o.fsync_batches,
                o.avg_group_size,
                o.checkpoint_dirty_shards,
                if o.green() { "green" } else { "VIOLATED" },
                if o.schedule.is_empty() {
                    "-"
                } else {
                    &o.schedule
                },
            );
            for violation in &o.violations {
                let _ = writeln!(out, "       !! {violation}");
            }
        }
        let green = self.outcomes.iter().filter(|o| o.green()).count();
        let _ = writeln!(out, "{green}/{} runs green", self.outcomes.len());
        out
    }
}

/// Drives seeded fault schedules through a durable [`ApiServer`] and
/// asserts the recovery invariants after each crash.
#[derive(Debug, Clone)]
pub struct ChaosDriver {
    base_dir: PathBuf,
}

impl ChaosDriver {
    /// A driver keeping each run's persistence directory under `base_dir`.
    pub fn new(base_dir: impl Into<PathBuf>) -> Self {
        ChaosDriver {
            base_dir: base_dir.into(),
        }
    }

    fn pod(name: &str, image: &str) -> K8sObject {
        K8sObject::from_yaml(&format!(
            "apiVersion: v1\nkind: Pod\nmetadata:\n  name: {name}\n  namespace: {NAMESPACE}\nspec:\n  containers:\n    - name: app\n      image: {image}\n"
        ))
        .expect("chaos pod parses")
    }

    /// Run one seeded schedule under one policy: populate through the front
    /// door over faulty I/O, crash, reopen clean, check every invariant.
    ///
    /// # Errors
    ///
    /// Filesystem errors preparing the run directory or reopening after the
    /// crash (fault-induced failures are *outcomes*, not errors).
    pub fn run(&self, seed: u64, policy: DegradePolicy) -> io::Result<ChaosOutcome> {
        let dir = self.base_dir.join(format!("seed-{seed}-{policy}"));
        if dir.exists() {
            fs::remove_dir_all(&dir)?;
        }
        let schedule = FaultSchedule::from_seed(seed);
        // Three-way policy rotation by seed. Group runs with a zero window
        // (`group:0:4`): single-threaded drivers close every window
        // immediately, so transitions stay a pure function of the schedule
        // while the shared-fsync failure path is still the one exercised.
        let fsync = match seed % 3 {
            0 => FsyncPolicy::Always,
            1 => FsyncPolicy::Batch(4),
            _ => FsyncPolicy::Group {
                max_wait_us: 0,
                max_batch: 4,
            },
        };
        let faulty = Arc::new(FaultyIo::over_real(schedule.clone()));
        let config = PersistConfig::new(&dir)
            .with_fsync(fsync)
            .with_retry(RetryPolicy::immediate(FAIL_STOP_AFTER));
        let (store, persistence, _boot) = Persistence::open_with_io(config, faulty.clone())?;
        let server = ApiServer::with_store(store).with_degrade_policy(policy);

        let mut log: Vec<LogEntry> = Vec::new();
        let mut live: BTreeMap<String, ()> = BTreeMap::new();
        let mut acknowledged = 0u64;
        let mut rejected = 0u64;
        let mut violations = Vec::new();

        for op in 1..=OPS {
            let name = format!("pod-{}", op % NAMES);
            if op % 7 == 0 && live.contains_key(&name) {
                let request = ApiRequest::delete("admin", ResourceKind::Pod, NAMESPACE, &name);
                let response = server.handle(&request);
                if response.is_success() {
                    acknowledged += 1;
                    live.remove(&name);
                    log.push(LogEntry {
                        revision: server.store().revision(),
                        name,
                        body: None,
                        resource_version: 0,
                    });
                } else if response.status == ResponseStatus::ServiceUnavailable {
                    rejected += 1;
                }
                continue;
            }
            let pod = Self::pod(&name, &format!("nginx:1.{op}"));
            let response = server.handle(&ApiRequest::create("admin", &pod));
            if response.is_success() {
                acknowledged += 1;
                // Get-after-write: the transcript records the *stored* tree
                // and version, not what we think we sent.
                let stored = server
                    .store()
                    .get(ResourceKind::Pod, NAMESPACE, &name)
                    .expect("acknowledged write is readable");
                live.insert(name.clone(), ());
                log.push(LogEntry {
                    revision: stored.resource_version,
                    name,
                    body: Some(Arc::clone(stored.object.shared_body())),
                    resource_version: stored.resource_version,
                });
            } else if response.status == ResponseStatus::ServiceUnavailable {
                rejected += 1;
            } else {
                violations.push(format!(
                    "op {op}: unexpected rejection {:?}: {}",
                    response.status, response.message
                ));
            }
            if op == OPS / 2 {
                // A mid-run checkpoint attempt: under faults it may fail or
                // retry — both are legitimate outcomes the boot path must
                // absorb; what matters is the invariants after the crash.
                let _ = persistence.checkpoint(server.store());
            }
        }

        // The fail-closed serving contract, proven while actually degraded:
        // writes answer 503, reads keep answering 200.
        let state_before_crash = server.store().durability_state();
        if policy == DegradePolicy::FailClosed && state_before_crash != DurabilityState::Healthy {
            let probe = server.handle(&ApiRequest::create("admin", &Self::pod("probe", "nginx")));
            if probe.status == ResponseStatus::ServiceUnavailable {
                rejected += 1;
            } else {
                violations.push(format!(
                    "fail-closed degraded write answered {:?}, want 503",
                    probe.status
                ));
            }
            let read = server.handle(&ApiRequest::list("admin", ResourceKind::Pod, NAMESPACE));
            if !read.is_success() {
                violations.push(format!(
                    "read while degraded answered {:?}, want success",
                    read.status
                ));
            }
        }

        let health = server.health_report();
        let durable_claimed = persistence.wal().durable_revision();
        let acked_revision = log.last().map(|e| e.revision).unwrap_or(0);
        if health.rejected_writes != rejected {
            violations.push(format!(
                "health reports {} rejected writes, driver counted {rejected}",
                health.rejected_writes
            ));
        }
        if health.durability.state == DurabilityState::FailStop
            && health.durability.latched.is_none()
        {
            violations.push("fail-stop without a structured latched error".to_owned());
        }

        // Crash: no shutdown hook, no final sync.
        drop(server);
        drop(persistence);

        // Reopen over clean I/O — the disk is what the faults left behind.
        let (recovered, _persistence, report) = Persistence::open(PersistConfig::new(&dir))?;
        if report.recovered_revision < durable_claimed {
            violations.push(format!(
                "durable_revision overstated storage: claimed {durable_claimed}, recovered {}",
                report.recovered_revision
            ));
        }
        // Replay the transcript up to the recovered revision and demand a
        // byte-identical store.
        let mut expected: BTreeMap<String, (u64, Arc<Value>)> = BTreeMap::new();
        for entry in log
            .iter()
            .filter(|e| e.revision <= report.recovered_revision)
        {
            match &entry.body {
                Some(body) => {
                    expected.insert(
                        entry.name.clone(),
                        (entry.resource_version, Arc::clone(body)),
                    );
                }
                None => {
                    expected.remove(&entry.name);
                }
            }
        }
        if StoreBackend::len(&recovered) != expected.len() {
            violations.push(format!(
                "recovered {} objects, transcript expects {}",
                StoreBackend::len(&recovered),
                expected.len()
            ));
        }
        for (name, (resource_version, body)) in &expected {
            match recovered.get(ResourceKind::Pod, NAMESPACE, name) {
                None => violations.push(format!("{name} lost: acknowledged but not recovered")),
                Some(stored) => {
                    if stored.resource_version != *resource_version {
                        violations.push(format!(
                            "{name}: recovered at rv {}, transcript says {resource_version}",
                            stored.resource_version
                        ));
                    }
                    if stored.object.body() != &**body {
                        violations.push(format!("{name}: recovered tree differs from transcript"));
                    }
                }
            }
        }
        // Acknowledged-but-unrecovered writes are only legitimate when the
        // health surface showed the degradation.
        if report.recovered_revision < acked_revision {
            let observed = health.durability.state != DurabilityState::Healthy
                || health.durability.latched.is_some()
                || health.durability.transitions > 0;
            if !observed {
                violations.push(format!(
                    "silent loss: acked to {acked_revision}, recovered {}, health showed nothing",
                    report.recovered_revision
                ));
            }
        }
        // The server must come back: a fresh write lands at a new revision.
        let reborn = ApiServer::with_store(recovered);
        let response = reborn.handle(&ApiRequest::create("admin", &Self::pod("reborn", "nginx")));
        if !response.is_success() {
            violations.push(format!(
                "post-recovery write rejected: {:?}: {}",
                response.status, response.message
            ));
        } else {
            let stored = reborn
                .store()
                .get(ResourceKind::Pod, NAMESPACE, "reborn")
                .expect("post-recovery write readable");
            if stored.resource_version <= report.recovered_revision {
                violations.push("post-recovery write did not advance the revision".to_owned());
            }
        }

        Ok(ChaosOutcome {
            seed,
            schedule: schedule.spec(),
            policy,
            fsync,
            ops_attempted: OPS,
            ops_acknowledged: acknowledged,
            rejected_writes: rejected,
            injected_faults: faulty.injected(),
            final_state: health.durability.state,
            transitions: health.durability.transitions,
            latched: health.durability.latched.map(|l| l.to_string()),
            durable_claimed,
            acked_revision,
            recovered_revision: report.recovered_revision,
            recovered_objects: report.live_objects,
            fsync_batches: health.fsync_batches,
            avg_group_size: health.avg_group_size,
            checkpoint_dirty_shards: health.checkpoint_dirty_shards,
            violations,
        })
    }

    /// Sweep `schedules` consecutive seeds starting at `base_seed`, each
    /// under **both** degradation policies.
    ///
    /// # Errors
    ///
    /// Those of [`ChaosDriver::run`].
    pub fn sweep(&self, base_seed: u64, schedules: u64) -> io::Result<ChaosReport> {
        let mut report = ChaosReport::default();
        for offset in 0..schedules {
            let seed = base_seed.wrapping_add(offset);
            for policy in [DegradePolicy::FailOpen, DegradePolicy::FailClosed] {
                report.outcomes.push(self.run(seed, policy)?);
            }
        }
        Ok(report)
    }
}
