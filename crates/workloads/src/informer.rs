//! Informer-style operators: local caches reconciled from the watch plane.
//!
//! Real operators and controllers do not poll lists — they keep a local
//! cache seeded by one initial list and then apply incremental watch
//! deltas, exactly the traffic shape the paper's workload characterization
//! attributes to the dominant share of API-server load. This module models
//! both reconcile disciplines against any [`RequestHandler`]:
//!
//! * [`Informer::sync`] — **watch-driven**: the first tick issues an
//!   initial watch (`resourceVersion` absent — list + cursor), every
//!   subsequent tick resumes from the cursor and applies only the deltas;
//!   a `410 Gone` (journal compacted past the cursor) falls back to one
//!   re-list and resumes cleanly.
//! * [`Informer::sync_by_list`] — **poll-list**: the pre-watch-plane
//!   discipline; every tick lists the whole collection and rebuilds the
//!   cache from scratch.
//!
//! [`InformerDriver`] replays a [`MixRatio`] whose `watch` slots are
//! reconcile ticks (one informer per watched collection, per thread) and
//! whose create/get/list slots are background churn, from M threads — the
//! harness behind the `watch_throughput` benchmark comparing the two
//! disciplines over both store backends.

use std::collections::BTreeMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
// Gate waiting uses `std::sync` directly: the parking_lot shim carries no
// Condvar, and a Condvar must pair with the mutex type it waits on.
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use k8s_apiserver::{
    ApiRequest, RequestHandler, ResponseStatus, WatchEvent, WatchEventKind, WatchHub,
    WatchSubscriber,
};
use k8s_model::ResourceKind;
use kf_yaml::Value;

use crate::throughput::{MixRatio, OperatorPools};
use crate::Operator;

/// How an informer keeps its cache fresh — the measured axis of the
/// `watch_throughput` benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconcileStrategy {
    /// Re-list the whole collection every tick and rebuild the cache (the
    /// pre-watch-plane discipline).
    PollList,
    /// Seed once from an initial watch, then apply incremental deltas from
    /// the revision cursor.
    WatchDelta,
}

impl ReconcileStrategy {
    /// A short label for bench tables.
    pub fn label(&self) -> &'static str {
        match self {
            ReconcileStrategy::PollList => "poll-list",
            ReconcileStrategy::WatchDelta => "watch-delta",
        }
    }
}

/// A local object cache over one watched collection (kind + namespace),
/// reconciled through a [`RequestHandler`] as one authenticated user — the
/// client half of the watch plane.
#[derive(Debug, Clone)]
pub struct Informer {
    user: String,
    kind: ResourceKind,
    namespace: String,
    /// Resume cursor; `None` before the first successful watch (and after a
    /// `Gone`, which forces a fresh initial watch).
    cursor: Option<u64>,
    /// The reconciled collection, keyed by (namespace, name). Values are
    /// the delivered trees — shared handles on the zero-copy plane.
    cache: BTreeMap<(String, String), Arc<Value>>,
    /// Cache mutations applied by watch deltas and initial seeds.
    events_applied: u64,
    /// Full re-lists performed (initial syncs and `Gone` recoveries).
    relists: u64,
}

impl Informer {
    /// An informer over `kind` in `namespace` (all namespaces when empty),
    /// authenticated as `user`.
    pub fn new(user: &str, kind: ResourceKind, namespace: &str) -> Self {
        Informer {
            user: user.to_owned(),
            kind,
            namespace: namespace.to_owned(),
            cursor: None,
            cache: BTreeMap::new(),
            events_applied: 0,
            relists: 0,
        }
    }

    /// The reconciled objects, in key order.
    pub fn cache(&self) -> &BTreeMap<(String, String), Arc<Value>> {
        &self.cache
    }

    /// Number of objects currently reconciled.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Cache mutations applied so far (seeds + deltas, or list rebuild
    /// inserts under [`Informer::sync_by_list`]).
    pub fn events_applied(&self) -> u64 {
        self.events_applied
    }

    /// Full re-lists performed so far.
    pub fn relists(&self) -> u64 {
        self.relists
    }

    /// The current resume cursor, once a watch succeeded.
    pub fn cursor(&self) -> Option<u64> {
        self.cursor
    }

    /// One watch-driven reconcile tick. Returns the number of requests
    /// issued (1 normally; 2 when a compacted journal forced a `Gone` →
    /// re-list recovery).
    pub fn sync<H: RequestHandler>(&mut self, handler: &H) -> u64 {
        let request = ApiRequest::watch(&self.user, self.kind, &self.namespace, self.cursor);
        let response = handler.handle(&request);
        if response.status == ResponseStatus::Gone {
            // The journal compacted past our cursor: the one consistent
            // recovery is a fresh initial watch (list + new cursor).
            self.cursor = None;
            self.cache.clear();
            return 1 + self.sync(handler);
        }
        if self.cursor.is_none() {
            self.relists += 1;
        }
        let Some(body) = &response.body else {
            return 1;
        };
        let Some((events, cursor)) = body.watch_events() else {
            return 1;
        };
        for event in events {
            self.apply(event);
        }
        self.cursor = Some(cursor);
        1
    }

    /// One poll-list reconcile tick: list the collection and rebuild the
    /// cache from the returned items (keys parsed out of each tree —
    /// exactly the per-tick work the watch plane avoids). Returns the
    /// number of requests issued (always 1).
    pub fn sync_by_list<H: RequestHandler>(&mut self, handler: &H) -> u64 {
        let request = ApiRequest::list(&self.user, self.kind, &self.namespace);
        let response = handler.handle(&request);
        self.relists += 1;
        let Some(body) = &response.body else {
            return 1;
        };
        let Some(items) = body.items() else {
            return 1;
        };
        self.cache.clear();
        for item in items {
            let metadata = item.get("metadata");
            let name = metadata
                .and_then(|m| m.get("name"))
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_owned();
            let namespace = metadata
                .and_then(|m| m.get("namespace"))
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_owned();
            self.cache.insert((namespace, name), Arc::clone(item));
            self.events_applied += 1;
        }
        1
    }

    /// Apply one delivered event to the cache. Added/Modified upsert (so
    /// the overlap between an initial listing and the first delta batch is
    /// absorbed), Deleted removes, bookmarks only carry the cursor.
    fn apply(&mut self, event: &WatchEvent) {
        match event.kind {
            WatchEventKind::Added | WatchEventKind::Modified => {
                if let Some(object) = &event.object {
                    self.cache.insert(
                        (event.namespace.clone(), event.name.clone()),
                        Arc::clone(object),
                    );
                    self.events_applied += 1;
                }
            }
            WatchEventKind::Deleted => {
                self.cache
                    .remove(&(event.namespace.clone(), event.name.clone()));
                self.events_applied += 1;
            }
            WatchEventKind::Bookmark => {}
        }
    }
}

/// Bounded, jittered admission for full re-lists — the herd hardening for
/// the watch plane's recovery path.
///
/// A compaction storm (or a burst of slow-consumer evictions) can hand a
/// whole fleet of informers a `410 Gone` in the same instant; if each one
/// immediately issues a full re-list, the server absorbs `herd × list` in
/// one spike — the thundering herd the jitter-and-serialize discipline
/// exists to prevent. Every re-list first sleeps a **deterministic
/// per-informer jitter** (hash of its token, so runs are reproducible) to
/// spread the herd in time, then acquires one of `max_concurrent` permits;
/// excess re-listers block until a permit frees. The permit is held across
/// the whole list+resubscribe, so at no point do more than `max_concurrent`
/// full re-lists run concurrently.
#[derive(Debug)]
pub struct RelistGate {
    max_concurrent: usize,
    active: Mutex<usize>,
    freed: Condvar,
    jitter_unit: Duration,
    jitter_slots: u64,
    /// Highest number of simultaneously admitted re-lists observed.
    peak: AtomicUsize,
    /// Total re-lists admitted through the gate.
    admitted: AtomicU64,
}

impl RelistGate {
    /// A gate admitting at most `max_concurrent` simultaneous re-lists,
    /// with jitter disabled (pure serialization).
    pub fn new(max_concurrent: usize) -> Self {
        RelistGate {
            max_concurrent: max_concurrent.max(1),
            active: Mutex::new(0),
            freed: Condvar::new(),
            jitter_unit: Duration::ZERO,
            jitter_slots: 1,
            peak: AtomicUsize::new(0),
            admitted: AtomicU64::new(0),
        }
    }

    /// Spread admissions over `slots` jitter buckets of `unit` each: an
    /// informer with token `t` sleeps `(hash(t) % slots) × unit` before
    /// competing for a permit. Deterministic per token, so a replayed run
    /// jitters identically.
    pub fn with_jitter(mut self, unit: Duration, slots: u64) -> Self {
        self.jitter_unit = unit;
        self.jitter_slots = slots.max(1);
        self
    }

    /// The configured concurrency bound.
    pub fn max_concurrent(&self) -> usize {
        self.max_concurrent
    }

    /// The jitter delay `token` would incur.
    pub fn jitter_for(&self, token: u64) -> Duration {
        if self.jitter_unit.is_zero() {
            return Duration::ZERO;
        }
        let mut hasher = DefaultHasher::new();
        token.hash(&mut hasher);
        self.jitter_unit * ((hasher.finish() % self.jitter_slots) as u32)
    }

    /// Highest number of simultaneously admitted re-lists observed so far
    /// (never exceeds [`RelistGate::max_concurrent`] by construction).
    pub fn peak_admitted(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Total re-lists admitted so far.
    pub fn admissions(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Jitter, then block until a permit is free. The permit is released
    /// when the returned guard drops — hold it across the whole re-list.
    pub fn admit(&self, token: u64) -> RelistPermit<'_> {
        let jitter = self.jitter_for(token);
        if !jitter.is_zero() {
            std::thread::sleep(jitter);
        }
        let mut active = self
            .active
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        while *active >= self.max_concurrent {
            active = self
                .freed
                .wait(active)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        *active += 1;
        self.peak.fetch_max(*active, Ordering::Relaxed);
        self.admitted.fetch_add(1, Ordering::Relaxed);
        RelistPermit { gate: self }
    }
}

/// An admitted re-list slot; dropping it frees the permit.
#[derive(Debug)]
pub struct RelistPermit<'a> {
    gate: &'a RelistGate,
}

impl Drop for RelistPermit<'_> {
    fn drop(&mut self) {
        let mut active = self
            .gate
            .active
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *active = active.saturating_sub(1);
        self.gate.freed.notify_one();
    }
}

/// A push-mode informer: the same local-cache contract as [`Informer`], but
/// instead of polling watch deltas it holds a [`WatchSubscriber`] whose
/// bounded queue the store fills on publication — an idle informer costs the
/// server **nothing** between writes. Recovery is symmetric with the pull
/// informer: a slow-consumer eviction or compaction `Gone` clears the cache
/// and re-attaches through an optional [`RelistGate`], so a storm that
/// `Gone`s a fleet cannot stampede the server with simultaneous re-lists.
#[derive(Debug)]
pub struct PushInformer {
    user: String,
    kind: ResourceKind,
    namespace: String,
    cache: BTreeMap<(String, String), Arc<Value>>,
    subscription: Option<WatchSubscriber>,
    gate: Option<Arc<RelistGate>>,
    /// Stable identity for gate jitter (defaults to 0; fleets assign
    /// distinct tokens).
    token: u64,
    events_applied: u64,
    relists: u64,
    evictions: u64,
}

impl PushInformer {
    /// A push informer over `kind` in `namespace` (all namespaces when
    /// empty), authenticated as `user`.
    pub fn new(user: &str, kind: ResourceKind, namespace: &str) -> Self {
        PushInformer {
            user: user.to_owned(),
            kind,
            namespace: namespace.to_owned(),
            cache: BTreeMap::new(),
            subscription: None,
            gate: None,
            token: 0,
            events_applied: 0,
            relists: 0,
            evictions: 0,
        }
    }

    /// Route this informer's re-lists (initial attach and every recovery)
    /// through `gate`, jittered by `token`.
    pub fn with_gate(mut self, gate: Arc<RelistGate>, token: u64) -> Self {
        self.gate = Some(gate);
        self.token = token;
        self
    }

    /// The reconciled objects, in key order.
    pub fn cache(&self) -> &BTreeMap<(String, String), Arc<Value>> {
        &self.cache
    }

    /// Number of objects currently reconciled.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Cache mutations applied so far (initial seeds + pushed deltas).
    pub fn events_applied(&self) -> u64 {
        self.events_applied
    }

    /// Full re-lists performed so far (initial attach + recoveries).
    pub fn relists(&self) -> u64 {
        self.relists
    }

    /// Slow-consumer evictions survived so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Whether a live subscription is attached.
    pub fn is_attached(&self) -> bool {
        self.subscription.is_some()
    }

    /// The live subscription, for dispatcher registration.
    pub fn subscription(&self) -> Option<&WatchSubscriber> {
        self.subscription.as_ref()
    }

    /// Attach (or re-attach) the subscription: one initial-list push watch,
    /// admitted through the gate when one is configured — the permit covers
    /// the whole list+subscribe, so gated fleets cannot stampede. Returns
    /// the number of requests issued (1 per attempt; a compaction racing
    /// the attach forces a retry).
    pub fn attach<H: WatchHub>(&mut self, hub: &H) -> u64 {
        // Clone the gate handle so the permit does not pin a borrow of
        // `self` across the cache mutations below.
        let gate = self.gate.clone();
        let _permit = gate.as_ref().map(|gate| gate.admit(self.token));
        let mut requests = 0;
        loop {
            requests += 1;
            let request = ApiRequest::watch(&self.user, self.kind, &self.namespace, None);
            match hub.subscribe_push(&request) {
                Ok(push) => {
                    self.cache.clear();
                    self.relists += 1;
                    for event in &push.initial {
                        self.apply(event);
                    }
                    self.subscription = Some(push.subscriber);
                    return requests;
                }
                Err(response) if response.status == ResponseStatus::Gone => {
                    // The journal compacted between the cursor read and the
                    // attach; the initial watch is self-healing — try again.
                    continue;
                }
                Err(_) => return requests,
            }
        }
    }

    /// One push reconcile tick: block up to `timeout` for delivered events
    /// and fold them into the cache. An eviction (`Gone`) clears the cache
    /// and re-attaches through the gate — the push plane's equivalent of
    /// the pull informer's compaction recovery. Returns the number of
    /// requests issued (0 when events arrived over the live subscription —
    /// push delivery is not a request).
    pub fn pump<H: WatchHub>(&mut self, hub: &H, timeout: Duration) -> u64 {
        let Some(subscription) = &self.subscription else {
            return self.attach(hub);
        };
        match subscription.recv_timeout(timeout) {
            Ok(events) => {
                for event in &events {
                    self.apply(event);
                }
                0
            }
            Err(_gone) => {
                self.evictions += 1;
                self.subscription = None;
                self.cache.clear();
                self.attach(hub)
            }
        }
    }

    /// Drain whatever is queued right now without blocking, applying it to
    /// the cache; `Gone` recovery as in [`PushInformer::pump`]. Returns the
    /// number of requests issued.
    pub fn pump_now<H: WatchHub>(&mut self, hub: &H) -> u64 {
        self.pump(hub, Duration::ZERO)
    }

    fn apply(&mut self, event: &WatchEvent) {
        match event.kind {
            WatchEventKind::Added | WatchEventKind::Modified => {
                if let Some(object) = &event.object {
                    self.cache.insert(
                        (event.namespace.clone(), event.name.clone()),
                        Arc::clone(object),
                    );
                    self.events_applied += 1;
                }
            }
            WatchEventKind::Deleted => {
                self.cache
                    .remove(&(event.namespace.clone(), event.name.clone()));
                self.events_applied += 1;
            }
            WatchEventKind::Bookmark => {}
        }
    }
}

/// Measurements of one [`InformerDriver::run`].
#[derive(Debug, Clone)]
pub struct ReconcileReport {
    /// Reconcile strategy that produced the numbers.
    pub strategy: ReconcileStrategy,
    /// Number of replay threads.
    pub threads: usize,
    /// Requests issued across all threads (background churn + reconcile
    /// ticks, including `Gone` recoveries).
    pub total_requests: u64,
    /// Reconcile ticks performed across all threads.
    pub reconcile_ticks: u64,
    /// Cache mutations applied across all threads.
    pub events_applied: u64,
    /// Full re-lists performed across all threads.
    pub relists: u64,
    /// Objects reconciled per informer at the end of the run, summed.
    pub cached_objects: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl ReconcileReport {
    /// Sustained requests per second over the run.
    pub fn requests_per_sec(&self) -> f64 {
        self.total_requests as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Sustained cache mutations per second over the run.
    pub fn events_per_sec(&self) -> f64 {
        self.events_applied as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Replays a [`MixRatio`] where the `watch` slots are informer reconcile
/// ticks: each thread owns one informer per watched collection and
/// interleaves background churn (create/get/list, from a deterministic
/// pool) with reconciles, so the two strategies face identical write
/// traffic and differ only in how caches stay fresh.
///
/// The driver can **scale** the collections: with a scale of `n`, every
/// chart object is replicated `n` times under suffixed names (`web`,
/// `web-1`, `web-2`, …), modeling a populated cluster where a watched
/// collection holds tens of objects — the regime where re-listing per
/// reconcile tick actually hurts and the watch plane pays off.
#[derive(Debug, Clone)]
pub struct InformerDriver {
    /// The create/get/list stream replayed between reconciles, in cycle
    /// order.
    background: Vec<ApiRequest>,
    /// One create per distinct (scaled) object, for seeding.
    seeds: Vec<ApiRequest>,
    targets: Vec<(String, ResourceKind, String)>,
    mix: MixRatio,
}

impl InformerDriver {
    /// A driver over the operators' objects under `mix` (which must include
    /// at least one `watch` slot — otherwise there is nothing to
    /// reconcile), at scale 1: collections hold exactly the chart objects.
    pub fn new(operators: &[Operator], mix: MixRatio) -> Self {
        Self::with_scale(operators, mix, 1)
    }

    /// [`InformerDriver::new`] with every chart object replicated `scale`
    /// times under suffixed names.
    pub fn with_scale(operators: &[Operator], mix: MixRatio, scale: usize) -> Self {
        assert!(mix.watch > 0, "the informer driver reconciles watch slots");
        // The same pool builder the mixed throughput pools use, so both
        // strategies face the identical deterministic background churn —
        // just without the watch slots, which become reconcile ticks here.
        let pools = OperatorPools::gather(operators, scale);
        let background = pools.interleave(MixRatio { watch: 0, ..mix });
        assert!(
            !background.is_empty(),
            "the mix must include background traffic"
        );
        InformerDriver {
            background,
            seeds: pools.creates,
            targets: pools.targets,
            mix,
        }
    }

    /// The background (create/get/list) stream replayed between reconciles.
    pub fn background_pool(&self) -> &[ApiRequest] {
        &self.background
    }

    /// The watched collections: (user, kind, namespace).
    pub fn targets(&self) -> &[(String, ResourceKind, String)] {
        &self.targets
    }

    /// Apply every distinct (scaled) object once so reconciles and reads
    /// hit populated collections — admission, audit and the watch journal
    /// all run; this is a warm server, not a backdoor into the store.
    pub fn seed<H: RequestHandler>(&self, handler: &H) {
        for request in &self.seeds {
            handler.handle(request);
        }
    }

    /// Replay `cycles_per_thread` mix cycles from each of `threads`
    /// threads: per cycle, the background slots issue the next pool
    /// requests and every `watch` slot runs one reconcile tick on the
    /// thread's informers (round-robin across targets), under `strategy`.
    pub fn run<H>(
        &self,
        handler: &H,
        threads: usize,
        cycles_per_thread: usize,
        strategy: ReconcileStrategy,
    ) -> ReconcileReport
    where
        H: RequestHandler + Sync,
    {
        assert!(threads > 0, "at least one replay thread is required");
        let pool = &self.background;
        let background_per_cycle = self.mix.create + self.mix.get + self.mix.list;
        let started = Instant::now();
        let per_thread: Vec<(u64, u64, u64, u64, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|thread| {
                    scope.spawn(move || {
                        let mut informers: Vec<Informer> = self
                            .targets
                            .iter()
                            .map(|(user, kind, namespace)| Informer::new(user, *kind, namespace))
                            .collect();
                        let mut requests = 0u64;
                        let mut ticks = 0u64;
                        // Rotated offsets so threads spread over the pool
                        // and the watched collections.
                        let mut cursor = thread * pool.len() / threads.max(1);
                        let mut target = thread % informers.len().max(1);
                        for _ in 0..cycles_per_thread {
                            for _ in 0..background_per_cycle {
                                handler.handle(&pool[cursor % pool.len()]);
                                cursor += 1;
                                requests += 1;
                            }
                            for _ in 0..self.mix.watch {
                                let index = target % informers.len();
                                let informer = &mut informers[index];
                                requests += match strategy {
                                    ReconcileStrategy::PollList => informer.sync_by_list(handler),
                                    ReconcileStrategy::WatchDelta => informer.sync(handler),
                                };
                                ticks += 1;
                                target += 1;
                            }
                        }
                        let events: u64 = informers.iter().map(Informer::events_applied).sum();
                        let relists: u64 = informers.iter().map(Informer::relists).sum();
                        let cached: u64 = informers.iter().map(|i| i.cache_len() as u64).sum();
                        (requests, ticks, events, relists, cached)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("reconcile thread panicked"))
                .collect()
        });
        let elapsed = started.elapsed();
        let mut report = ReconcileReport {
            strategy,
            threads,
            total_requests: 0,
            reconcile_ticks: 0,
            events_applied: 0,
            relists: 0,
            cached_objects: 0,
            elapsed,
        };
        for (requests, ticks, events, relists, cached) in per_thread {
            report.total_requests += requests;
            report.reconcile_ticks += ticks;
            report.events_applied += events;
            report.relists += relists;
            report.cached_objects += cached;
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use k8s_apiserver::{ApiServer, ObjectStore};
    use k8s_model::K8sObject;

    fn pod(name: &str) -> K8sObject {
        K8sObject::from_yaml(&format!(
            "apiVersion: v1\nkind: Pod\nmetadata:\n  name: {name}\n  namespace: default\nspec:\n  containers:\n    - name: c\n      image: nginx\n"
        ))
        .unwrap()
    }

    #[test]
    fn informers_seed_then_apply_deltas() {
        let server = ApiServer::new();
        server.handle(&ApiRequest::create("admin", &pod("a")));
        let mut informer = Informer::new("admin", ResourceKind::Pod, "default");
        assert_eq!(informer.sync(&server), 1);
        assert_eq!(informer.cache_len(), 1);
        assert_eq!(informer.relists(), 1);
        // Deltas: one create, one delete — applied incrementally, no relist.
        server.handle(&ApiRequest::create("admin", &pod("b")));
        server.handle(&ApiRequest::delete(
            "admin",
            ResourceKind::Pod,
            "default",
            "a",
        ));
        assert_eq!(informer.sync(&server), 1);
        assert_eq!(informer.cache_len(), 1);
        assert!(informer
            .cache()
            .contains_key(&("default".to_owned(), "b".to_owned())));
        assert_eq!(informer.relists(), 1, "delta syncs must not re-list");
        // The cached tree is the stored tree — zero-copy to the client.
        let stored = server
            .store()
            .get(ResourceKind::Pod, "default", "b")
            .unwrap();
        let cached = &informer.cache()[&("default".to_owned(), "b".to_owned())];
        assert!(Arc::ptr_eq(cached, stored.object.shared_body()));
    }

    #[test]
    fn informers_recover_from_compacted_journals() {
        let server = ApiServer::with_store(ObjectStore::with_journal_capacity(2));
        server.handle(&ApiRequest::create("admin", &pod("a")));
        let mut informer = Informer::new("admin", ResourceKind::Pod, "default");
        informer.sync(&server);
        assert_eq!(informer.cache_len(), 1);
        // Enough churn to compact the informer's cursor away.
        for name in ["b", "c", "d", "e"] {
            server.handle(&ApiRequest::create("admin", &pod(name)));
        }
        // Gone → one extra request for the recovery re-list, cache complete.
        assert_eq!(informer.sync(&server), 2);
        assert_eq!(informer.cache_len(), 5);
        assert_eq!(informer.relists(), 2);
        // And the informer streams deltas again afterwards.
        server.handle(&ApiRequest::delete(
            "admin",
            ResourceKind::Pod,
            "default",
            "a",
        ));
        assert_eq!(informer.sync(&server), 1);
        assert_eq!(informer.cache_len(), 4);
    }

    #[test]
    fn poll_list_reconciles_to_the_same_cache() {
        let server = ApiServer::new();
        for name in ["a", "b"] {
            server.handle(&ApiRequest::create("admin", &pod(name)));
        }
        let mut watcher = Informer::new("admin", ResourceKind::Pod, "default");
        let mut poller = Informer::new("admin", ResourceKind::Pod, "default");
        watcher.sync(&server);
        poller.sync_by_list(&server);
        assert_eq!(
            watcher.cache().keys().collect::<Vec<_>>(),
            poller.cache().keys().collect::<Vec<_>>()
        );
        server.handle(&ApiRequest::delete(
            "admin",
            ResourceKind::Pod,
            "default",
            "a",
        ));
        watcher.sync(&server);
        poller.sync_by_list(&server);
        assert_eq!(
            watcher.cache().keys().collect::<Vec<_>>(),
            poller.cache().keys().collect::<Vec<_>>()
        );
        assert!(poller.relists() > watcher.relists());
    }

    #[test]
    fn scaled_drivers_populate_scaled_collections() {
        let driver = InformerDriver::with_scale(&[Operator::Nginx], MixRatio::WATCH_HEAVY, 3);
        let server = ApiServer::new().with_admin(&Operator::Nginx.user());
        driver.seed(&server);
        let base = InformerDriver::new(&[Operator::Nginx], MixRatio::WATCH_HEAVY);
        let base_server = ApiServer::new().with_admin(&Operator::Nginx.user());
        base.seed(&base_server);
        assert_eq!(server.store().len(), 3 * base_server.store().len());
        // Same watched collections, three times the objects each.
        assert_eq!(driver.targets(), base.targets());
        let mut informer = Informer::new(
            &Operator::Nginx.user(),
            driver.targets()[0].1,
            &driver.targets()[0].2,
        );
        informer.sync(&server);
        assert_eq!(informer.cache_len() % 3, 0);
        assert!(informer.cache_len() >= 3);
    }

    #[test]
    fn push_informers_attach_then_receive_pushed_deltas() {
        let server = ApiServer::new();
        server.handle(&ApiRequest::create("admin", &pod("a")));
        let mut informer = PushInformer::new("admin", ResourceKind::Pod, "default");
        assert_eq!(informer.attach(&server), 1);
        assert_eq!(informer.cache_len(), 1);
        assert_eq!(informer.relists(), 1);
        // Writes land in the subscriber queue without the informer asking.
        server.handle(&ApiRequest::create("admin", &pod("b")));
        server.handle(&ApiRequest::delete(
            "admin",
            ResourceKind::Pod,
            "default",
            "a",
        ));
        assert_eq!(informer.pump_now(&server), 0, "push delivery is free");
        assert_eq!(informer.cache_len(), 1);
        assert!(informer
            .cache()
            .contains_key(&("default".to_owned(), "b".to_owned())));
        assert_eq!(informer.relists(), 1, "deltas must not re-list");
        // Zero-copy end to end: the cached tree is the stored tree.
        let stored = server
            .store()
            .get(ResourceKind::Pod, "default", "b")
            .unwrap();
        let cached = &informer.cache()[&("default".to_owned(), "b".to_owned())];
        assert!(Arc::ptr_eq(cached, stored.object.shared_body()));
    }

    #[test]
    fn evicted_push_informers_recover_by_relisting_gaplessly() {
        // A queue bound of two and three-object bursts: the informer is
        // evicted while idle, then recovers to the exact store state.
        let server = ApiServer::new().with_watch_queue_capacity(2);
        let mut informer = PushInformer::new("admin", ResourceKind::Pod, "default");
        informer.attach(&server);
        for name in ["a", "b", "c"] {
            server.handle(&ApiRequest::create("admin", &pod(name)));
        }
        assert!(informer.subscription().unwrap().is_evicted());
        let requests = informer.pump_now(&server);
        assert!(requests >= 1, "recovery re-lists");
        assert_eq!(informer.evictions(), 1);
        assert_eq!(informer.relists(), 2);
        assert_eq!(informer.cache_len(), 3);
        // And the new subscription streams again.
        server.handle(&ApiRequest::delete(
            "admin",
            ResourceKind::Pod,
            "default",
            "b",
        ));
        informer.pump_now(&server);
        assert_eq!(informer.cache_len(), 2);
        assert_eq!(informer.evictions(), 1);
    }

    #[test]
    fn the_relist_gate_bounds_concurrency_and_jitters_deterministically() {
        let gate = RelistGate::new(2).with_jitter(Duration::from_millis(1), 4);
        assert_eq!(gate.max_concurrent(), 2);
        assert_eq!(gate.jitter_for(7), gate.jitter_for(7), "deterministic");
        assert!(gate.jitter_for(7) < Duration::from_millis(4));
        let p1 = gate.admit(1);
        let p2 = gate.admit(2);
        assert_eq!(gate.peak_admitted(), 2);
        drop(p1);
        let _p3 = gate.admit(3);
        drop(p2);
        assert_eq!(gate.admissions(), 3);
        assert_eq!(gate.peak_admitted(), 2, "never above the bound");
    }

    #[test]
    fn the_driver_reconciles_both_strategies_to_live_caches() {
        let driver = InformerDriver::new(&[Operator::Nginx], MixRatio::WATCH_HEAVY);
        assert!(!driver.targets().is_empty());
        for strategy in [ReconcileStrategy::PollList, ReconcileStrategy::WatchDelta] {
            let server = ApiServer::new().with_admin(&Operator::Nginx.user());
            driver.seed(&server);
            let report = driver.run(&server, 2, 6, strategy);
            assert_eq!(report.threads, 2);
            assert_eq!(
                report.reconcile_ticks,
                2 * 6 * MixRatio::WATCH_HEAVY.watch as u64
            );
            assert!(report.events_applied > 0, "{strategy:?} applied no events");
            assert!(report.cached_objects > 0);
            assert!(report.requests_per_sec() > 0.0);
            assert!(report.events_per_sec() > 0.0);
        }
    }
}
