//! Crash/replay drivers over the durable persistence plane.
//!
//! A [`RecoveryDriver`] runs the cycle the persistence plane exists for:
//! populate a durable store with an operator's (replicated) chart objects,
//! mutate it, **crash without warning** (drop the store — no checkpoint, no
//! shutdown hook), reopen from checkpoint segments + WAL, and verify the
//! recovered state is byte-identical to what the crash interrupted. The `cold_start`
//! bench and the `persistence_plane` integration tests drive their
//! scenarios through this type, so "what a crash means" is defined once.

use std::io;
use std::sync::Arc;

use k8s_apiserver::persist::{PersistConfig, Persistence, RecoveryReport};
use k8s_apiserver::{ObjectStore, StoreBackend, StoredObject};
use k8s_model::K8sObject;

use crate::driver::DeploymentDriver;
use crate::operator::Operator;

/// Drives populate → crash → replay cycles for one operator's objects.
#[derive(Debug, Clone)]
pub struct RecoveryDriver {
    operator: Operator,
    config: PersistConfig,
}

/// What a [`RecoveryDriver::run_cycle`] found after replay.
#[derive(Debug)]
pub struct ReplayVerdict {
    /// The recovery report of the post-crash open.
    pub report: RecoveryReport,
    /// Objects expected to survive the crash (applies minus deletions).
    pub expected_objects: usize,
    /// Objects actually recovered.
    pub recovered_objects: usize,
    /// Whether every recovered object matched its pre-crash twin —
    /// resource version equal and document tree byte-identical.
    pub byte_identical: bool,
    /// Human-readable descriptions of any mismatches (empty when
    /// `byte_identical`).
    pub mismatches: Vec<String>,
}

impl RecoveryDriver {
    /// A driver persisting `operator`'s objects under `config.dir`.
    pub fn new(operator: Operator, config: PersistConfig) -> Self {
        RecoveryDriver { operator, config }
    }

    /// The persistence config the cycle opens with.
    pub fn config(&self) -> &PersistConfig {
        &self.config
    }

    /// The operator's chart objects replicated `scale` times under suffixed
    /// names (`web`, `web-1`, …) — the same populated-collection model the
    /// throughput and informer drivers use.
    pub fn objects(&self, scale: usize) -> Vec<K8sObject> {
        assert!(scale > 0, "a cycle needs at least one replica");
        let name_path = kf_yaml::Path::parse("metadata.name").expect("static path");
        let driver = DeploymentDriver::new(self.operator);
        let mut out = Vec::new();
        for object in driver.objects() {
            for replica in 0..scale {
                if replica == 0 {
                    out.push(object.clone());
                } else {
                    let mut copy = object.clone();
                    copy.set_field(
                        &name_path,
                        kf_yaml::Value::from(format!("{}-{replica}", object.name()).as_str()),
                    )
                    .expect("chart objects carry a metadata mapping");
                    out.push(copy);
                }
            }
        }
        out
    }

    /// Open the durable store this driver's cycles run against.
    ///
    /// # Errors
    ///
    /// Those of [`Persistence::open`].
    pub fn open(&self) -> io::Result<(ObjectStore, Persistence, RecoveryReport)> {
        Persistence::open(self.config.clone())
    }

    /// One full crash/replay cycle:
    ///
    /// 1. open the persistence directory and apply every (replicated)
    ///    object through the batched write path;
    /// 2. delete every fifth object through the single-delete path, so the
    ///    WAL carries both write shapes;
    /// 3. optionally checkpoint mid-stream (`checkpoint_mid`), so replay
    ///    exercises the snapshot + WAL-suffix combination rather than a
    ///    pure log replay;
    /// 4. **crash** — drop the store with whatever WAL tail the fsync
    ///    policy left;
    /// 5. reopen and compare every recovered object against its pre-crash
    ///    twin: same resource version, byte-identical tree.
    ///
    /// # Errors
    ///
    /// Filesystem errors from either open or the checkpoint.
    pub fn run_cycle(&self, scale: usize, checkpoint_mid: bool) -> io::Result<ReplayVerdict> {
        let expected: Vec<Arc<StoredObject>>;
        {
            let (store, persistence, _) = self.open()?;
            let objects = self.objects(scale);
            let half = objects.len() / 2;
            let (first, second) = objects.split_at(half);
            store.apply_batch(first.to_vec());
            if checkpoint_mid {
                persistence.checkpoint(&store)?;
            }
            store.apply_batch(second.to_vec());
            for object in objects.iter().step_by(5) {
                store.delete(object.kind(), object.namespace(), object.name());
            }
            // Make the tail durable regardless of policy, then crash: the
            // verdict below asserts equality at the last fsync'd revision,
            // which this sync pins to "everything".
            persistence.wal().sync()?;
            expected = store.snapshot_objects();
            // `store` and `persistence` drop here with no checkpoint — the
            // crash. Nothing below may observe in-memory state.
        }
        let (recovered, _persistence, report) = self.open()?;
        let mut mismatches = Vec::new();
        for want in &expected {
            let got = recovered.get(
                want.object.kind(),
                want.object.namespace(),
                want.object.name(),
            );
            match got {
                None => mismatches.push(format!(
                    "{}/{} lost in replay",
                    want.object.namespace(),
                    want.object.name()
                )),
                Some(got) => {
                    if got.resource_version != want.resource_version {
                        mismatches.push(format!(
                            "{}/{} resource version {} != {}",
                            want.object.namespace(),
                            want.object.name(),
                            got.resource_version,
                            want.resource_version
                        ));
                    } else if got.object.body() != want.object.body() {
                        mismatches.push(format!(
                            "{}/{} tree differs after replay",
                            want.object.namespace(),
                            want.object.name()
                        ));
                    }
                }
            }
        }
        let recovered_objects = StoreBackend::len(&recovered);
        if recovered_objects != expected.len() {
            mismatches.push(format!(
                "recovered {} objects, expected {}",
                recovered_objects,
                expected.len()
            ));
        }
        Ok(ReplayVerdict {
            byte_identical: mismatches.is_empty(),
            expected_objects: expected.len(),
            recovered_objects,
            mismatches,
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(label: &str) -> PathBuf {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "kf-recovery-{label}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn crash_replay_cycle_is_byte_identical_from_the_wal_alone() {
        let dir = temp_dir("wal-only");
        let driver = RecoveryDriver::new(Operator::Nginx, PersistConfig::new(&dir));
        let verdict = driver.run_cycle(3, false).expect("cycle");
        assert!(
            verdict.byte_identical,
            "mismatches: {:?}",
            verdict.mismatches
        );
        assert!(verdict.expected_objects > 0);
        assert_eq!(verdict.report.snapshot_objects, 0, "no checkpoint ran");
        assert!(verdict.report.replayed > 0, "state came from the WAL");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_replay_cycle_is_byte_identical_from_snapshot_plus_suffix() {
        let dir = temp_dir("snap-suffix");
        let driver = RecoveryDriver::new(Operator::Postgresql, PersistConfig::new(&dir));
        let verdict = driver.run_cycle(3, true).expect("cycle");
        assert!(
            verdict.byte_identical,
            "mismatches: {:?}",
            verdict.mismatches
        );
        assert!(
            verdict.report.snapshot_objects > 0,
            "the mid-stream checkpoint contributed a snapshot"
        );
        assert!(
            verdict.report.replayed > 0,
            "the post-checkpoint writes replayed from the WAL suffix"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
