//! # kf-workloads — operator charts, deployment drivers and the e2e corpus
//!
//! The paper evaluates KubeFence on five Helm-based operators from Artifact
//! Hub — **Nginx**, **MLflow**, **PostgreSQL**, **RabbitMQ** and
//! **SonarQube** — chosen to cover databases, networking, AI/ML, data
//! streaming and security workloads. This crate ships faithful synthetic
//! charts for the same five operators (same resource kinds, realistic field
//! footprints; see `DESIGN.md` for the substitution argument), plus:
//!
//! * [`OperatorWorkload`] / [`Operator`] — access to each operator's chart and
//!   its rendered deployment manifests;
//! * [`DeploymentDriver`] — the `kubectl apply` driver that issues the
//!   operator's API requests against any [`k8s_apiserver::RequestHandler`]
//!   (used by the RBAC learning phase, the effectiveness experiment and the
//!   overhead benchmark);
//! * [`ChaosDriver`] — the fault-injection workload: seeded fault schedules
//!   driven through a durable server's front door, crash, clean reopen, and
//!   the robustness plane's recovery invariants asserted per run (see
//!   `docs/robustness.md`);
//! * [`RecoveryDriver`] — the crash/replay driver over the durable
//!   persistence plane: populate a WAL-backed store, crash it without a
//!   checkpoint, reopen, and verify byte-identical recovery (used by the
//!   `cold_start` bench and the persistence integration tests);
//! * [`e2e`] — the end-to-end test corpus model behind Figure 5 (6,580 tests
//!   over 12 categories, of which only 29 reach CVE-affected code).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chaos;
pub mod charts;
mod driver;
pub mod e2e;
mod informer;
mod operator;
mod recovery;
mod throughput;

pub use chaos::{ChaosDriver, ChaosOutcome, ChaosReport};
pub use driver::{DeploymentDriver, DeploymentOutcome};
pub use informer::{
    Informer, InformerDriver, PushInformer, ReconcileReport, ReconcileStrategy, RelistGate,
    RelistPermit,
};
pub use operator::{Operator, OperatorWorkload};
pub use recovery::{RecoveryDriver, ReplayVerdict};
pub use throughput::{MixRatio, ThroughputDriver, ThroughputReport};
