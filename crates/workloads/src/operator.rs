//! The five evaluated operators.

use std::fmt;

use serde::{Deserialize, Serialize};

use helm_lite::{render_chart, Chart, RenderedManifest};
use k8s_model::K8sObject;

use crate::charts;

/// The five operators of the paper's evaluation (Section VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Operator {
    /// `bitnami/nginx` — networking services.
    Nginx,
    /// `community-charts/mlflow` — AI/ML applications.
    Mlflow,
    /// `bitnami/postgresql` — databases.
    Postgresql,
    /// `bitnami/rabbitmq` — data streaming.
    Rabbitmq,
    /// `openshift-bootstraps/sonarqube` — security / code quality.
    Sonarqube,
}

impl Operator {
    /// All five operators, in the order of the paper's tables.
    pub const ALL: [Operator; 5] = [
        Operator::Nginx,
        Operator::Mlflow,
        Operator::Postgresql,
        Operator::Rabbitmq,
        Operator::Sonarqube,
    ];

    /// Display name used in tables and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Operator::Nginx => "Nginx",
            Operator::Mlflow => "Mlflow",
            Operator::Postgresql => "PostgreSQL",
            Operator::Rabbitmq => "RabbitMQ",
            Operator::Sonarqube => "SonarQube",
        }
    }

    /// The release name each operator is deployed under.
    pub fn release_name(&self) -> &'static str {
        match self {
            Operator::Nginx => "web",
            Operator::Mlflow => "mlflow",
            Operator::Postgresql => "pg",
            Operator::Rabbitmq => "mq",
            Operator::Sonarqube => "sonar",
        }
    }

    /// The namespace each operator deploys into.
    pub fn namespace(&self) -> &'static str {
        match self {
            Operator::Nginx => "web",
            Operator::Mlflow => "mlops",
            Operator::Postgresql => "data",
            Operator::Rabbitmq => "messaging",
            Operator::Sonarqube => "quality",
        }
    }

    /// The user (service identity) the operator authenticates as.
    pub fn user(&self) -> String {
        format!("operator:{}", self.name().to_lowercase())
    }

    /// The operator's Helm chart.
    pub fn chart(&self) -> Chart {
        match self {
            Operator::Nginx => charts::nginx::chart(),
            Operator::Mlflow => charts::mlflow::chart(),
            Operator::Postgresql => charts::postgresql::chart(),
            Operator::Rabbitmq => charts::rabbitmq::chart(),
            Operator::Sonarqube => charts::sonarqube::chart(),
        }
    }

    /// The full workload (chart + rendered default deployment).
    pub fn workload(&self) -> OperatorWorkload {
        OperatorWorkload::new(*self)
    }
}

impl fmt::Display for Operator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An operator together with its chart and the manifests of its default
/// (attack-free) deployment.
#[derive(Debug, Clone)]
pub struct OperatorWorkload {
    operator: Operator,
    chart: Chart,
}

impl OperatorWorkload {
    /// Build the workload for an operator.
    pub fn new(operator: Operator) -> Self {
        OperatorWorkload {
            operator,
            chart: operator.chart(),
        }
    }

    /// The operator.
    pub fn operator(&self) -> Operator {
        self.operator
    }

    /// The operator's chart.
    pub fn chart(&self) -> &Chart {
        &self.chart
    }

    /// The manifests of the default deployment (rendered with the chart's
    /// default values), i.e. what the operator submits during an attack-free
    /// run.
    ///
    /// # Panics
    ///
    /// Panics if the built-in chart fails to render — that would be a bug in
    /// the chart definitions, caught by the crate's tests.
    pub fn default_manifests(&self) -> Vec<RenderedManifest> {
        render_chart(&self.chart, None, self.operator.release_name())
            .expect("built-in charts must render")
    }

    /// The default deployment as Kubernetes objects.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`OperatorWorkload::default_manifests`].
    pub fn default_objects(&self) -> Vec<K8sObject> {
        self.default_manifests()
            .into_iter()
            .map(|m| {
                K8sObject::from_value(m.document).expect("built-in charts produce valid objects")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use k8s_model::ResourceKind;
    use std::collections::BTreeSet;

    #[test]
    fn all_operators_render_their_default_deployment() {
        for operator in Operator::ALL {
            let objects = operator.workload().default_objects();
            assert!(
                objects.len() >= 4,
                "{operator} deploys only {} objects",
                objects.len()
            );
        }
    }

    #[test]
    fn operator_kind_footprints_match_figure9_structure() {
        let kinds_of = |operator: Operator| -> BTreeSet<ResourceKind> {
            operator
                .workload()
                .default_objects()
                .iter()
                .map(|o| o.kind())
                .collect()
        };
        // Nginx and MLflow never create Pods or Jobs directly.
        for operator in [Operator::Nginx, Operator::Mlflow] {
            let kinds = kinds_of(operator);
            assert!(!kinds.contains(&ResourceKind::Pod));
            assert!(!kinds.contains(&ResourceKind::Job));
            assert!(kinds.contains(&ResourceKind::Deployment));
            assert!(kinds.contains(&ResourceKind::Service));
        }
        // The database and messaging operators are StatefulSet-based.
        for operator in [Operator::Postgresql, Operator::Rabbitmq] {
            let kinds = kinds_of(operator);
            assert!(kinds.contains(&ResourceKind::StatefulSet));
            assert!(!kinds.contains(&ResourceKind::Deployment));
            assert!(kinds.contains(&ResourceKind::Secret));
        }
        // SonarQube touches by far the most endpoints (the paper's widest
        // workload, hence the lowest RBAC reduction in Table I).
        let sonar = kinds_of(Operator::Sonarqube);
        assert!(sonar.len() >= 12, "SonarQube uses {} kinds", sonar.len());
        assert!(sonar.contains(&ResourceKind::ValidatingWebhookConfiguration));
        assert!(sonar.contains(&ResourceKind::ClusterRole));
        for operator in [
            Operator::Nginx,
            Operator::Mlflow,
            Operator::Postgresql,
            Operator::Rabbitmq,
        ] {
            assert!(kinds_of(operator).len() < sonar.len());
        }
    }

    #[test]
    fn all_workloads_use_service_and_service_account() {
        // Figure 9: Service and ServiceAccount are used by every workload.
        for operator in Operator::ALL {
            let kinds: BTreeSet<_> = operator
                .workload()
                .default_objects()
                .iter()
                .map(|o| o.kind())
                .collect();
            assert!(kinds.contains(&ResourceKind::Service), "{operator}");
            assert!(kinds.contains(&ResourceKind::ServiceAccount), "{operator}");
        }
    }

    #[test]
    fn rendered_objects_are_namespaced_consistently() {
        for operator in Operator::ALL {
            for object in operator.workload().default_objects() {
                if object.kind().is_namespaced() {
                    // Charts leave the namespace to the request path; objects
                    // either carry the operator namespace or none at all.
                    assert!(
                        object.namespace().is_empty() || object.namespace() == operator.namespace(),
                        "{operator}: {} has namespace {}",
                        object.name(),
                        object.namespace()
                    );
                }
            }
        }
    }

    #[test]
    fn identities_are_distinct_per_operator() {
        let mut users = BTreeSet::new();
        let mut releases = BTreeSet::new();
        for operator in Operator::ALL {
            users.insert(operator.user());
            releases.insert(operator.release_name());
        }
        assert_eq!(users.len(), 5);
        assert_eq!(releases.len(), 5);
    }
}
