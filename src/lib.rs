//! Root package: hosts the repository-level integration tests (`tests/`) and
//! runnable examples (`examples/`). All functionality lives in the workspace
//! crates under `crates/`.
