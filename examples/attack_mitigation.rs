//! Reproduce the effectiveness experiment interactively (Tables II and III):
//! replay the 15-entry catalog of malicious specifications against every
//! operator, once under the audit2rbac-learned RBAC policy and once under
//! KubeFence, and print the per-operator mitigation counts.
//!
//! ```bash
//! cargo run --example attack_mitigation
//! ```

use k8s_apiserver::ApiServer;
use k8s_rbac::{audit2rbac, Audit2RbacOptions};
use kf_attacks::{catalog, AttackExecutor};
use kf_workloads::{DeploymentDriver, Operator};
use kubefence::{EnforcementProxy, GeneratorConfig, PolicyGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Catalog of malicious specifications (Table II) ==\n");
    println!("{}", kf_attacks::catalog::to_table());
    println!("total entries: {}\n", catalog().len());

    println!("== Mitigated CVEs and misconfigurations (Table III) ==\n");
    println!(
        "{:<12} {:>10} {:>16} {:>14} {:>20}",
        "Workload", "CVEs/RBAC", "CVEs/KubeFence", "Misconf/RBAC", "Misconf/KubeFence"
    );

    for operator in Operator::ALL {
        let executor = AttackExecutor::new(
            &operator.user(),
            operator.namespace(),
            operator.workload().default_objects(),
        );

        // RBAC baseline: learn the least-privilege policy from an attack-free
        // run, then attack.
        let learning = ApiServer::new().with_admin(&operator.user());
        DeploymentDriver::new(operator).deploy(&learning);
        let policy = audit2rbac(
            learning.audit_log().events(),
            &operator.user(),
            &Audit2RbacOptions::default(),
        );
        let rbac_server = ApiServer::new();
        rbac_server.set_rbac_policy(Some(policy));
        let rbac = AttackExecutor::summarize(&executor.execute(&rbac_server));

        // KubeFence: generate the workload validator and attack through the
        // proxy.
        let validator = PolicyGenerator::new(GeneratorConfig::for_release(operator.release_name()))
            .generate(&operator.chart())?;
        let proxy = EnforcementProxy::new(ApiServer::new(), validator);
        let kubefence = AttackExecutor::summarize(&executor.execute(&proxy));

        println!(
            "{:<12} {:>10} {:>16} {:>14} {:>20}",
            operator.name(),
            format!("{}/{}", rbac.cve_mitigated, rbac.cve_attempted),
            format!("{}/{}", kubefence.cve_mitigated, kubefence.cve_attempted),
            format!("{}/{}", rbac.misconfig_mitigated, rbac.misconfig_attempted),
            format!(
                "{}/{}",
                kubefence.misconfig_mitigated, kubefence.misconfig_attempted
            ),
        );
    }
    println!("\n(The paper reports 0/8 and 0/7 for RBAC, 8/8 and 7/7 for KubeFence, for every workload.)");
    Ok(())
}
