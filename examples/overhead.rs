//! Reproduce the runtime-overhead measurement (Table IV): the round-trip time
//! of a full operator deployment with and without the KubeFence proxy, plus
//! the proxy's resource footprint.
//!
//! ```bash
//! cargo run --release --example overhead
//! ```

use std::time::Duration;

use k8s_apiserver::{ApiServer, LatencyModel, RequestHandler};
use kf_workloads::{DeploymentDriver, Operator};
use kubefence::{EnforcementProxy, GeneratorConfig, PolicyGenerator};

const REPETITIONS: usize = 10;

fn deployment_rtt<H: RequestHandler>(
    driver: &DeploymentDriver,
    handler: &H,
    latency: &mut LatencyModel,
    with_proxy: bool,
) -> Duration {
    let mut total = Duration::ZERO;
    for request in driver.requests() {
        let started = std::time::Instant::now();
        let response = handler.handle(&request);
        let processing = started.elapsed();
        assert!(response.is_success(), "{}", response.message);
        total += processing + latency.direct_request(request.payload_size());
        if with_proxy {
            total += latency.proxy_overhead(request.payload_size());
        }
    }
    total
}

fn mean_and_stddev(samples: &[f64]) -> (f64, f64) {
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / samples.len() as f64;
    (mean, var.sqrt())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== RBAC vs KubeFence average request latency (Table IV) ==\n");
    println!(
        "{:<12} {:>16} {:>18} {:>16}",
        "Operator", "RBAC RTT (ms)", "KubeFence RTT (ms)", "Increase"
    );

    for operator in Operator::ALL {
        let driver = DeploymentDriver::new(operator);
        let validator = PolicyGenerator::new(GeneratorConfig::for_release(operator.release_name()))
            .generate(&operator.chart())?;

        let mut baseline_samples = Vec::new();
        let mut kubefence_samples = Vec::new();
        for repetition in 0..REPETITIONS {
            let mut latency = LatencyModel::new(Default::default(), repetition as u64 + 1);
            let server = ApiServer::new().with_admin(&operator.user());
            baseline_samples
                .push(deployment_rtt(&driver, &server, &mut latency, false).as_secs_f64() * 1e3);

            let mut latency = LatencyModel::new(Default::default(), repetition as u64 + 1);
            let proxy = EnforcementProxy::new(
                ApiServer::new().with_admin(&operator.user()),
                validator.clone(),
            );
            kubefence_samples
                .push(deployment_rtt(&driver, &proxy, &mut latency, true).as_secs_f64() * 1e3);
        }
        let (base_mean, base_std) = mean_and_stddev(&baseline_samples);
        let (kf_mean, kf_std) = mean_and_stddev(&kubefence_samples);
        println!(
            "{:<12} {:>10.1}±{:<5.1} {:>12.1}±{:<5.1} {:>7.1} ms ({:.2}%)",
            operator.name(),
            base_mean,
            base_std,
            kf_mean,
            kf_std,
            kf_mean - base_mean,
            100.0 * (kf_mean - base_mean) / base_mean,
        );
    }

    // Resource footprint of the proxy (§VI-E): validator size and validation
    // throughput stand in for the paper's CPU/memory counters.
    let operator = Operator::Sonarqube;
    let validator = PolicyGenerator::new(GeneratorConfig::for_release(operator.release_name()))
        .generate(&operator.chart())?;
    let serialized = validator.to_yaml();
    println!(
        "\nproxy footprint: the {} validator serializes to {:.1} KiB covering {} resource kinds",
        operator.name(),
        serialized.len() as f64 / 1024.0,
        validator.kinds().len()
    );
    Ok(())
}
