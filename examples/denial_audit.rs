//! Denial auditing under the contention-free proxy: what the ring buffer
//! retains, what the atomic statistics count, and how unparsable bodies are
//! accounted.
//!
//! ```sh
//! cargo run --release --example denial_audit
//! ```

use k8s_apiserver::{ApiRequest, ApiServer, RequestHandler};
use k8s_model::{K8sObject, ResourceKind, Verb};
use kf_workloads::Operator;
use kubefence::{EnforcementProxy, GeneratorConfig, PolicyGenerator, ValidatorSet};

fn main() {
    let operator = Operator::Nginx;
    let validator = PolicyGenerator::new(GeneratorConfig::for_release(operator.release_name()))
        .generate(&operator.chart())
        .expect("built-in chart generates a policy");

    // A deliberately tiny ring (8 records) so eviction is visible.
    let proxy = EnforcementProxy::with_denial_capacity(
        ApiServer::new().with_admin(&operator.user()),
        ValidatorSet::single(validator),
        8,
    );

    // 1. Legitimate traffic is forwarded.
    for object in operator.workload().default_objects() {
        let mut request = ApiRequest::create(&operator.user(), &object);
        if object.kind().is_namespaced() {
            request.namespace = operator.namespace().to_owned();
        }
        let response = proxy.handle(&request);
        assert!(response.is_success(), "{}", response.message);
    }

    // 2. A burst of policy violations overflows the ring.
    for i in 0..20 {
        let secret = K8sObject::minimal(ResourceKind::Secret, &format!("stolen-{i}"), "web");
        proxy.handle(&ApiRequest::create("mallory", &secret));
    }

    // 3. An unparsable body is denied, timed and audited too.
    let garbage = ApiRequest {
        user: "mallory".to_owned(),
        verb: Verb::Create,
        kind: ResourceKind::Deployment,
        namespace: "web".to_owned(),
        name: "mystery".to_owned(),
        content_type: None,
        resource_version: None,
        body: kf_yaml::parse("not: a\nkubernetes: object\n")
            .unwrap()
            .into(),
    };
    let response = proxy.handle(&garbage);
    println!(
        "unparsable body -> {:?}: {}\n",
        response.status, response.message
    );

    let stats = proxy.stats();
    println!(
        "stats: {} forwarded, {} denied, {} passthrough, {} µs validating",
        stats.forwarded, stats.denied, stats.passthrough, stats.validation_time_us
    );
    let denials = proxy.denials();
    println!(
        "denial ring: {} retained of {} denied ({} evicted)\n",
        denials.len(),
        stats.denied,
        proxy.dropped_denials()
    );
    println!("newest retained denials:");
    for denial in denials.iter().rev().take(3) {
        println!(
            "  {} {} `{}`: {}",
            denial.user,
            denial.kind,
            denial.object_name,
            denial
                .violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ")
        );
    }
}
