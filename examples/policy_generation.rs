//! Walk through the four policy-generation phases for one operator and print
//! the intermediate artifacts: values schema, variants, rendered manifests
//! and the final validator (Figures 6–8 of the paper).
//!
//! ```bash
//! cargo run --example policy_generation -- mlflow
//! ```

use kf_workloads::Operator;
use kubefence::schema_gen::ValuesSchemaGenerator;
use kubefence::{ConfigurationExplorer, GeneratorConfig, PolicyGenerator};

fn pick_operator() -> Operator {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "mlflow".to_owned());
    Operator::ALL
        .into_iter()
        .find(|o| o.name().eq_ignore_ascii_case(&name))
        .unwrap_or(Operator::Mlflow)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let operator = pick_operator();
    let chart = operator.chart();
    println!("== KubeFence policy generation for the {operator} operator ==");

    // Phase 1: values schema.
    let schema = ValuesSchemaGenerator::default().generate(chart.values());
    println!("\n--- values schema (placeholders, enumerations, locked constants) ---");
    println!("{}", schema.to_yaml());
    println!(
        "enumerative fields: {:?}",
        schema.enums().keys().collect::<Vec<_>>()
    );

    // Phase 2: configuration-space exploration.
    let variants = ConfigurationExplorer::new().variants(&schema);
    println!("\n--- exploration: {} values variants ---", variants.len());

    // Phase 3: manifest rendering.
    let generator = PolicyGenerator::new(GeneratorConfig::for_release(operator.release_name()));
    let manifests = generator.rendered_manifests(&chart)?;
    println!("rendered {} manifests across all variants", manifests.len());

    // Phase 4: validator generation.
    let validator = generator.generate(&chart)?;
    println!("\n--- generated validator ---");
    println!("{}", validator.to_yaml());
    println!(
        "the validator allows {} resource kinds: {:?}",
        validator.kinds().len(),
        validator.kinds()
    );
    Ok(())
}
