//! Quickstart: generate a KubeFence policy for an operator chart, put the
//! enforcement proxy in front of the (simulated) API server, deploy the
//! operator, then watch an attack bounce off.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use k8s_apiserver::{ApiRequest, ApiServer, RequestHandler};
use kf_attacks::catalog;
use kf_workloads::{DeploymentDriver, Operator};
use kubefence::{EnforcementProxy, GeneratorConfig, PolicyGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let operator = Operator::Nginx;
    println!("== KubeFence quickstart: protecting the {operator} operator ==\n");

    // 1. Offline phase: analyze the operator's Helm chart and generate the
    //    workload-specific validator.
    let generator = PolicyGenerator::new(GeneratorConfig::for_release(operator.release_name()));
    let validator = generator.generate(&operator.chart())?;
    println!(
        "generated a validator covering {} resource kinds from {} values variants",
        validator.kinds().len(),
        generator.variant_count(&operator.chart()),
    );

    // 2. Runtime phase: interpose the proxy between clients and the API
    //    server (complete mediation).
    let server = ApiServer::new().with_admin(&operator.user());
    let proxy = EnforcementProxy::new(server, validator);

    // 3. The legitimate deployment sails through.
    let outcomes = DeploymentDriver::new(operator).deploy(&proxy);
    println!(
        "legitimate deployment: {}/{} requests accepted",
        outcomes.iter().filter(|o| o.response.is_success()).count(),
        outcomes.len()
    );

    // 4. An insider with the operator's credentials tries to enable
    //    hostNetwork (CVE-2020-15257, entry E1 of the catalog).
    let exploit = catalog()
        .into_iter()
        .find(|spec| spec.id == "E1")
        .expect("catalog contains E1");
    let deployment = outcomes
        .iter()
        .find(|o| o.kind == k8s_model::ResourceKind::Deployment)
        .expect("nginx deploys a Deployment");
    let base = proxy
        .upstream()
        .store()
        .get(
            deployment.kind,
            operator.namespace(),
            &deployment.object_name,
        )
        .expect("deployment stored")
        .object
        .clone();
    let malicious = exploit
        .inject(&base)
        .expect("deployment carries a pod spec");
    let response = proxy.handle(&ApiRequest::update(&operator.user(), &malicious));

    println!(
        "\nattack E1 (hostNetwork) response: HTTP {}",
        response.status.code()
    );
    println!("  {}", response.message);
    println!("\nproxy statistics: {:?}", proxy.stats());
    assert!(response.is_denied());
    Ok(())
}
