//! Reproduce the attack-surface analysis (Figure 5, Figure 9, Table I):
//! e2e-test coverage of vulnerable code, per-workload API usage, and the
//! surface reduction achievable by RBAC vs KubeFence.
//!
//! ```bash
//! cargo run --example attack_surface
//! ```

use k8s_model::cve::CveDatabase;
use kf_workloads::e2e::E2eCorpus;
use kf_workloads::Operator;
use kubefence::{AttackSurfaceAnalyzer, GeneratorConfig, PolicyGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Motivation (Figure 5): how much of the e2e corpus reaches
    //     CVE-affected code? -------------------------------------------------
    let corpus = E2eCorpus::generate();
    let database = CveDatabase::new();
    println!("== e2e tests reaching vulnerable code (Figure 5) ==\n");
    println!("{}", corpus.to_matrix_text());
    println!(
        "{} of {} tests ({:.2}%) reach code affected by any of the {} CVEs; {} CVEs are reached by none.\n",
        corpus.tests_covering_vulnerable_code().len(),
        corpus.total_tests(),
        100.0 * corpus.tests_covering_vulnerable_code().len() as f64 / corpus.total_tests() as f64,
        database.len(),
        corpus.uncovered_cve_count(&database),
    );

    // --- Evaluation (Figure 9 + Table I): per-workload usage and reduction. --
    let analyzer = AttackSurfaceAnalyzer::new();
    let validators: Vec<_> = Operator::ALL
        .iter()
        .map(|operator| {
            PolicyGenerator::new(GeneratorConfig::for_release(operator.release_name()))
                .generate(&operator.chart())
                .expect("policy generation")
        })
        .collect();
    let report = analyzer.analyze_all(&validators);

    println!("== Percentage of API usage across workloads and endpoints (Figure 9) ==\n");
    println!("{}", report.to_heatmap());
    println!("== Attack surface reduction achievable by KubeFence vs RBAC (Table I) ==\n");
    println!("{}", report.to_table());
    Ok(())
}
